"""Streaming audit: frames arrive, a standing audit keeps top-k current.

The batch workflow compiles a finished scene once and ranks it. A live
labeling (or drive-log ingestion) pipeline doesn't have a finished
scene — sensor frames arrive one at a time, tracks appear and grow, and
the audit ranking should stay current without recompiling the world on
every frame. The serving layer does this in two incremental stages:
each arriving frame becomes scene edits against a
:class:`~repro.serving.SceneSession` (only the touched tracks are
recompiled — delta recompilation), and an
:class:`~repro.api.AuditSpec` *subscribed* to the session as a
standing audit rescores only those same touched tracks, re-heaping its
bounded top-k in O(changed · log k) instead of re-ranking the whole
scene per query. The maintained top-k is byte-identical to a full
rescore — ``StandingAudit.verify()`` proves it at the end.

Run:
    python examples/streaming_audit.py [warmup_frames]
"""

import sys
import time

from repro.api import AuditSpec, FilterSpec
from repro.core import MissingTrackFinder, Scene
from repro.datasets import SYNTHETIC_INTERNAL, build_dataset
from repro.serving import InsertBundle, InsertTrack, SceneSession

warmup_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 10

print("Building synthetic-internal dataset...")
dataset = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=5, n_val_scenes=4)
# Prefer a validation scene where the vendor actually missed objects, so
# the live ranking has true positives to surface.
labeled = max(
    dataset.val_scenes,
    key=lambda ls: len(ls.ledger.missing_track_object_ids(ls.scene_id)),
)
n_missing = len(labeled.ledger.missing_track_object_ids(labeled.scene_id))
print(f"Streaming scene {labeled.scene_id} ({n_missing} vendor-missed objects)")
finder = MissingTrackFinder().fit(dataset.train_scenes)
finder.fixy.warmup_fast_eval()
auditor = labeled.auditor()

full_scene = labeled.scene
last_frame = max(b.frame for t in full_scene.tracks for b in t.bundles)

# ----------------------------------------------------------------------
# The "stream": bundles of the finished scene replayed in frame order.
# Frames < warmup_frames seed the initial session; the rest arrive live.
# ----------------------------------------------------------------------
def bundles_at(frame):
    for track in full_scene.tracks:
        bundle = track.bundle_at(frame)
        if bundle is not None:
            yield track, bundle


initial_tracks = {}
for frame in range(warmup_frames):
    for track, bundle in bundles_at(frame):
        partial = initial_tracks.get(track.track_id)
        if partial is None:
            partial = type(track)(track_id=track.track_id, bundles=[])
            initial_tracks[track.track_id] = partial
        partial.add(bundle)

scene = Scene(
    scene_id=full_scene.scene_id,
    dt=full_scene.dt,
    tracks=list(initial_tracks.values()),
    metadata=full_scene.metadata,
)
session = SceneSession(
    scene, finder.fixy.features, learned=finder.fixy.learned,
    aofs=finder.fixy.aofs,
)
print(
    f"Session opened at frame {warmup_frames}: "
    f"{len(scene.tracks)} tracks, {len(scene.observations)} observations"
)

# The audit is declared once and *subscribed* — from here on the
# session maintains its top-k incrementally on every edit.
audit = session.subscribe(
    AuditSpec(
        kind="tracks",
        top_k=5,
        filters=FilterSpec(has_model=True, has_human=False),
    ),
    audit_id="missing-labels",
)


def report(frame):
    ranked = audit.results()
    print(f"\nframe {frame:>3d}: top suspected missing labels")
    if not ranked:
        print("   (nothing rankable yet)")
    for position, scored in enumerate(ranked, start=1):
        verdict = auditor.audit_missing_track(scored.item)
        mark = "✓" if verdict.is_error else "✗"
        print(
            f"   {mark} #{position} score {scored.score:+.3f}  "
            f"{scored.item.majority_class():<10s} "
            f"{scored.item.n_observations:>3d} obs"
        )


report(warmup_frames - 1)

# ----------------------------------------------------------------------
# Stream the remaining frames through the session.
# ----------------------------------------------------------------------
streamed = 0
edit_time = 0.0
for frame in range(warmup_frames, last_frame + 1):
    frame_rescored = 0
    for track, bundle in bundles_at(frame):
        t0 = time.perf_counter()
        if any(t.track_id == track.track_id for t in scene.tracks):
            session.apply(InsertBundle(track.track_id, bundle))
        else:
            fresh = type(track)(track_id=track.track_id, bundles=[bundle])
            session.apply(InsertTrack(fresh))
        edit_time += time.perf_counter() - t0
        frame_rescored += audit.last_rescored
        streamed += 1
    if frame % 10 == 0 or frame == last_frame:
        print(
            f"\nframe {frame:>3d}: {frame_rescored} of "
            f"{len(scene.tracks)} tracks rescored this frame"
        )
        report(frame)

stats = session.stats
standing = audit.stats
print(
    f"\nStreamed {streamed} bundle arrivals over "
    f"{last_frame + 1 - warmup_frames} frames: "
    f"{stats.edits_applied} edits, {stats.tracks_recompiled} track "
    f"recompiles, {stats.splices} splices, "
    f"{1e3 * edit_time / max(streamed, 1):.2f} ms per edit"
)
print(
    f"Standing audit: {standing.edits_seen} edits seen, "
    f"{standing.tracks_rescored} track rescores "
    f"({standing.tracks_rescored / max(standing.edits_seen, 1):.1f} per "
    f"edit), {1e3 * standing.maintain_s / max(standing.edits_seen, 1):.3f} "
    f"ms maintenance per edit"
)
session.verify()
audit.verify()
print("Final spliced state and standing top-k verified against a full rescore ✓")
