"""Find vendor-missed tracks across a dataset (the Table 3 workload).

Builds the synthetic-Lyft dataset, fits the missing-track finder on the
training split, ranks every validation scene, and prints precision@10
with per-item audit verdicts — the §8.2 experiment at a glance.

Run:
    python examples/find_missing_tracks.py [n_scenes]
"""

import sys

from repro.core import MissingTrackFinder
from repro.datasets import SYNTHETIC_LYFT, build_dataset
from repro.eval import precision_at_k

n_scenes = int(sys.argv[1]) if len(sys.argv) > 1 else 6

print(f"Building synthetic-lyft dataset ({n_scenes} validation scenes)...")
dataset = build_dataset(SYNTHETIC_LYFT, n_val_scenes=n_scenes)

finder = MissingTrackFinder().fit(dataset.train_scenes)

all_hits = []
for labeled_scene in dataset.val_scenes:
    auditor = labeled_scene.auditor()
    missing = labeled_scene.ledger.missing_track_object_ids(labeled_scene.scene_id)
    ranked = finder.rank(labeled_scene.scene, top_k=10)
    hits = [auditor.audit_missing_track(s.item).is_error for s in ranked]
    all_hits.append(hits)

    print(f"\nScene {labeled_scene.scene_id}  "
          f"({len(missing)} objects missed by the vendor)")
    for position, (scored, hit) in enumerate(zip(ranked, hits), start=1):
        track = scored.item
        mark = "✓" if hit else "✗"
        print(
            f"  {mark} #{position:<2d} score {scored.score:+.3f}  "
            f"{track.majority_class():<10s} {track.n_observations:>3d} obs"
        )
    print(f"  precision@10 = {precision_at_k(hits, 10):.0%}")

mean_p10 = sum(precision_at_k(h, 10) for h in all_hits) / len(all_hits)
print(f"\nMean precision@10 over {len(all_hits)} scenes: {mean_p10:.0%}")
print("(Paper, Lyft dataset: 69%)")
