"""LOA on time-series data: find missed event annotations (§10).

The paper conjectures Fixy applies "to other domains with temporal
aspects, such as audio or time series data". This example runs the
unmodified core on annotated time-series recordings: learn event
duration/amplitude distributions from labeled recordings, then rank
model-detected events the human annotator never labeled.

Run:
    python examples/timeseries_labels.py
"""

from repro.core import Fixy
from repro.timeseries import (
    annotate_recording,
    build_event_scene,
    generate_recording,
    timeseries_features,
)

# Offline: learn event feature distributions from well-annotated
# recordings (the organizational resource).
train_scenes = []
for seed in range(6):
    recording = generate_recording(f"train-{seed}", seed=100 + seed)
    labels = annotate_recording(
        recording, seed=200 + seed, human_miss_rate=0.0, ghost_rate_per_minute=0.0
    )
    train_scenes.append(build_event_scene(labels))

fixy = Fixy(timeseries_features(), min_samples=5).fit(train_scenes)

# Online: a new recording annotated by a less careful human, plus an
# event-detection model (which also hallucinates some ghosts).
recording = generate_recording("prod-recording", seed=42)
labels = annotate_recording(
    recording, seed=43, human_miss_rate=0.35, ghost_rate_per_minute=1.0
)
scene = build_event_scene(labels)

print(f"Recording {recording.recording_id}: {len(recording.events)} true events, "
      f"{len(labels.human_missed)} missed by the annotator, "
      f"{len(labels.ghost_events)} model ghosts")

ranked = fixy.rank(
    scene,
    "tracks",
    filt=lambda track: track.has_model and not track.has_human,
    top_k=8,
)
missed_starts = {e.start_s for e in labels.human_missed}
print("\nModel-detected events with no human annotation, most plausible first:")
for position, scored in enumerate(ranked, start=1):
    track = scored.item
    starts = {o.metadata.get("gt_start_s") for o in track.observations}
    verdict = "MISSED ANNOTATION" if starts & missed_starts else "model ghost"
    first = track.observations[0]
    print(
        f"  {position}. score {scored.score:+.3f}  t={first.metadata['event_start_s']:6.1f}s  "
        f"class {track.majority_class():<6s}  -> {verdict}"
    )
