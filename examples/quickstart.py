"""Quickstart: the paper's worked example (§3) end to end.

Finds missing human labels in a scene: associate human labels and model
predictions, specify two features (box volume and velocity), let Fixy
learn their distributions from existing labels, and rank potential
errors.

Run:
    python examples/quickstart.py
"""

from repro.association import TrackBuilder
from repro.core import Fixy, default_features
from repro.datasets import SYNTHETIC_INTERNAL, build_dataset

# ---------------------------------------------------------------------------
# 1. Get data. In production this is your label store; here we synthesize
#    a small internal-style dataset (ground truth + vendor labels +
#    detector predictions).
# ---------------------------------------------------------------------------
dataset = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=4, n_val_scenes=4)
historical_scenes = dataset.train_scenes  # existing labels = the resource
# Audit the freshly-labeled scene where the vendor missed the most objects.
labeled = max(
    dataset.val_scenes,
    key=lambda ls: len(ls.ledger.missing_track_object_ids(ls.scene_id)),
)
new_scene = labeled.scene

# ---------------------------------------------------------------------------
# 2. Associations were already built by TrackBuilder (IoU-based bundles
#    within a frame, box overlap across time). To customize, subclass
#    Bundler exactly as in the paper:
#
#        class TrackBundler(Bundler):
#            def is_associated(self, box1, box2):
#                return compute_iou(box1, box2) > 0.5
#
#    and pass it to TrackBuilder(bundler=TrackBundler()).
# ---------------------------------------------------------------------------
_ = TrackBuilder  # see examples/custom_features.py for a custom bundler

# ---------------------------------------------------------------------------
# 3. Specify features and learn their distributions offline. The default
#    set is Table 2 of the paper: volume, distance, model-only, velocity,
#    count.
# ---------------------------------------------------------------------------
fixy = Fixy(default_features())
fixy.fit(historical_scenes)

# ---------------------------------------------------------------------------
# 4. Rank potential errors online: model-only tracks, most plausible
#    first — a consistent track the vendor never labeled is probably a
#    real object they missed.
# ---------------------------------------------------------------------------
#    The declarative form of the same query — an AuditSpec run through
#    the unified audit API (see examples/audit_backends.py for the spec
#    executing identically on every backend):
from repro.api import Audit, AuditSpec, FilterSpec

spec = AuditSpec(
    kind="tracks",
    filters=FilterSpec(has_model=True, has_human=False),
    top_k=5,
)
result = Audit(spec, fixy=fixy).run(scenes=new_scene)
ranked = result.items
print(
    f"audit ran on backend {result.provenance.backend!r} "
    f"(spec {result.provenance.spec_hash[:12]}, "
    f"model {result.provenance.model_fingerprint[:12]})"
)

print(f"Top potential missing labels in scene {new_scene.scene_id!r}:")
for position, scored in enumerate(ranked, start=1):
    track = scored.item
    print(
        f"  {position}. track {track.track_id}  score {scored.score:+.3f}  "
        f"class {track.majority_class()}  observations {track.n_observations}"
    )

# ---------------------------------------------------------------------------
# 5. (Simulation only) check the answers against the injected-error
#    ledger — the stand-in for the paper's expert auditors.
# ---------------------------------------------------------------------------
auditor = labeled.auditor()
for position, scored in enumerate(ranked, start=1):
    decision = auditor.audit_missing_track(scored.item)
    verdict = "REAL missing label" if decision.is_error else "not an error"
    print(f"  audit #{position}: {verdict} ({decision.reason})")
