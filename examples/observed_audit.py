"""Observability end to end: a traced remote audit, then a metered
standing-audit edit stream.

Part 1 runs one distributed audit against two live TCP workers with
``trace=True``: every layer the request crosses — scene resolution,
per-partition dispatch, each worker's own compile/rank — records a
span, the workers piggyback their spans on the wire responses, and the
coordinator stitches everything into a single trace that lands in the
result's provenance. We print the hottest spans and export the trace
as JSONL (what ``cli audit --trace PATH`` writes).

Part 2 streams edits through a live session with a subscribed standing
audit. The process-wide metrics registry (the same one ``cli serve
--metrics-addr`` exposes over HTTP in Prometheus text format) meters
the maintenance work — tracks rescored, heap refills/demotions,
cumulative maintenance seconds — and we print the counter series it
accumulated.

Run:
    PYTHONPATH=src python examples/observed_audit.py
"""

import json
import tempfile
from pathlib import Path

from repro.api import Audit, AuditSpec, FilterSpec
from repro.datasets import SYNTHETIC_INTERNAL, build_dataset
from repro.obs import get_registry
from repro.serving import InsertBundle, RemoveBundle, SceneSession
from repro.serving.tcp import TcpWorker

# ---------------------------------------------------------------------------
# Part 1 — a traced remote audit over two in-process TCP workers.
# ---------------------------------------------------------------------------
dataset = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=5, n_val_scenes=6)
spec = AuditSpec(
    kind="tracks",
    top_k=10,
    filters=FilterSpec(has_model=True, has_human=False),
)
audit = Audit(spec, train_scenes=dataset.train_scenes)
audit.fixy.warmup_fast_eval()
scenes = [ls.scene for ls in dataset.val_scenes]

workers = [TcpWorker(audit.fixy) for _ in range(2)]
addresses = [w.address for w in workers]
print(f"workers up: {', '.join(addresses)}")

try:
    result = audit.run(
        scenes=scenes, backend="remote", workers=addresses, trace=True
    )
finally:
    for worker in workers:
        worker.stop()
    audit.close()

trace = result.provenance.trace
spans = trace["spans"]
print(
    f"\naudit ranked {len(result.items)} items; trace {trace['trace_id']} "
    f"captured {len(spans)} spans across coordinator + {len(workers)} workers"
)

# The hottest spans — where the request actually spent its time. Worker
# spans carry the dispatching worker's address via their dispatch parent.
by_id = {s["span_id"]: s for s in spans}


def owner(span):
    while span is not None:
        worker = span.get("attrs", {}).get("worker")
        if worker:
            return worker
        span = by_id.get(span.get("parent_id"))
    return "coordinator"


print("\ntop 5 spans by duration:")
for span in sorted(spans, key=lambda s: s["dur_s"], reverse=True)[:5]:
    print(
        f"  {1e3 * span['dur_s']:8.2f} ms  {span['name']:<16s} "
        f"[{owner(span)}]  {span.get('attrs', {})}"
    )

trace_path = Path(tempfile.mkdtemp(prefix="observed_audit_")) / "trace.jsonl"
n_spans = result.dump_trace(trace_path)
first = json.loads(trace_path.read_text().splitlines()[0])
print(f"\nexported {n_spans} spans to {trace_path} (first: {first['name']!r})")

# ---------------------------------------------------------------------------
# Part 2 — a standing-audit edit stream, read through the registry.
# ---------------------------------------------------------------------------
registry = get_registry()
before = registry.summary()

scene = scenes[0]
session = SceneSession(
    scene,
    audit.fixy.features,
    learned=audit.fixy.learned,
    aofs=audit.fixy.aofs,
)
standing = session.subscribe(spec, audit_id="observed")

# Churn each track's last bundle (remove, re-insert): every apply
# touches one track, and the standing audit rescores exactly that
# track — while the final scene stays identical to the original.
n_edits = 0
for track in scene.tracks[:40]:
    last = track.bundles[-1]
    session.apply(RemoveBundle(track.track_id, last.frame))
    session.apply(InsertBundle(track.track_id, last))
    n_edits += 2
assert standing.verify()

after = registry.summary()
print(
    f"\nstanding audit maintained top-{spec.top_k} through {n_edits} edits "
    "(verified against a full rescore); registry deltas:"
)
for name in sorted(after):
    delta = after[name] - before.get(name, 0.0)
    if delta > 0 and name.startswith(("repro_standing", "repro_session")):
        print(f"  {name:<44s} +{delta:g}")

# The same numbers, as a scrape would see them (`cli serve
# --metrics-addr HOST:PORT` serves exactly this text over HTTP).
exposition = registry.render()
standing_lines = [
    line
    for line in exposition.splitlines()
    if line.startswith("repro_standing")
]
print("\nexposition excerpt (Prometheus text format 0.0.4):")
for line in standing_lines[:6]:
    print(f"  {line}")
