"""One AuditSpec, two worker processes, one byte-identical answer.

The distributed path end to end: save a fitted model, launch two real
``repro.cli serve --listen`` worker processes on it, then run the same
declarative audit through the ``inline`` backend (this process) and the
``remote`` backend (scenes partitioned across the two workers; the
``hello`` handshake negotiates the protocol v2 binary framed wire, so
scene payloads ship as packed NumPy buffers addressed by content hash
— a repeat audit of the same scenes ships ids only). The rankings come
back byte-identical — the remote backend is a deployment decision, not
a results decision — and the result's provenance says which worker
ranked which partition, over which wire, and how fast.

Run:
    PYTHONPATH=src python examples/remote_audit.py
"""

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.api import Audit, AuditSpec, FilterSpec
from repro.datasets import SYNTHETIC_INTERNAL, build_dataset

# ---------------------------------------------------------------------------
# 1. Offline prep: fit once, persist the model (with its density grids).
#    Every worker must serve the *same* model — registration enforces it
#    by fingerprint before any scene ships.
# ---------------------------------------------------------------------------
dataset = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=4, n_val_scenes=6)
spec = AuditSpec(
    kind="tracks",
    filters=FilterSpec(has_model=True, has_human=False),  # missing labels
    top_k=10,
)
audit = Audit(spec, train_scenes=dataset.train_scenes)
scenes = [ls.scene for ls in dataset.val_scenes]

workdir = Path(tempfile.mkdtemp(prefix="remote_audit_"))
model_path = workdir / "model.json"
audit.fixy.learned.save(model_path, include_grids=True)
print(f"model saved: {model_path} "
      f"(fingerprint {audit.fixy.learned.fingerprint()[:12]})")

# ---------------------------------------------------------------------------
# 2. Launch two workers: each is `repro.cli serve --listen` on a free
#    port, announcing its bound address on stderr.
# ---------------------------------------------------------------------------
def launch_worker() -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--model", str(model_path), "--listen", "127.0.0.1:0", "--strict"],
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    for line in proc.stderr:
        found = re.search(r"listening on (\S+)", line)
        if found:
            proc.address = found.group(1)
            return proc
    raise RuntimeError("worker never announced its address")


workers = [launch_worker(), launch_worker()]
addresses = [w.address for w in workers]
print(f"workers up: {', '.join(addresses)}\n")

try:
    # -----------------------------------------------------------------------
    # 3. Same spec, two execution strategies. `with_backend` keeps the
    #    whole declaration — including the worker list — pure data.
    # -----------------------------------------------------------------------
    local = audit.run(scenes=scenes)  # inline reference
    remote = audit.run(
        scenes=scenes, backend="remote", workers=addresses, timeout=120.0
    )

    assert [s.to_dict(spec.kind) for s in remote.items] == [
        s.to_dict(spec.kind) for s in local.items
    ], "remote ranking diverged from inline!"

    print(f"top {len(local.items)} candidates (identical on both backends):")
    for position, (mine, theirs) in enumerate(
        zip(local.items, remote.items), start=1
    ):
        assert mine.score == theirs.score  # bit-for-bit
        print(
            f"  #{position:<2d} score {mine.score:+.3f}  "
            f"{mine.scene_id}/{mine.track_id}"
        )

    # -----------------------------------------------------------------------
    # 4. Provenance: who did what, and how fast.
    # -----------------------------------------------------------------------
    print(
        f"\ninline: {1e3 * local.provenance.timings['rank_s']:7.1f} ms  "
        f"(backend {local.provenance.backend!r})"
    )
    print(
        f"remote: {1e3 * remote.provenance.timings['rank_s']:7.1f} ms  "
        f"(backend {remote.provenance.backend!r}), per worker:"
    )
    for report in remote.provenance.workers:
        print(
            f"  {report['worker']}: partition {report['partition']} "
            f"({report['n_scenes']} scenes) in "
            f"{1e3 * report['rank_s']:7.1f} ms, "
            f"{report['attempts']} attempt(s), wire {report['wire']}, "
            f"{report['bytes_sent']}B shipped"
        )

    # A second audit of the same scenes rides the worker scene caches:
    # only content hashes cross the wire.
    warm = audit.run(
        scenes=scenes, backend="remote", workers=addresses, timeout=120.0
    )
    assert [s.score for s in warm.items] == [s.score for s in remote.items]
    cold_bytes = sum(r["bytes_sent"] for r in remote.provenance.workers)
    warm_bytes = sum(r["bytes_sent"] for r in warm.provenance.workers)
    hits = sum(r["scene_cache_hits"] for r in warm.provenance.workers)
    print(
        f"\nsecond audit of the same scenes: {warm_bytes}B on the wire "
        f"(first: {cold_bytes}B), {hits}/{len(scenes)} worker cache hits "
        "— ids shipped, not bodies"
    )
finally:
    audit.close()
    for worker in workers:
        worker.terminate()
print("\nworkers stopped")
