"""Extending LOA: a custom bundler, feature, and AOF.

Everything a user writes to adapt Fixy to a new fleet fits in a few
lines, per the paper's claim ("each feature required fewer than 6 lines
of code"): override ``Bundler.is_associated`` for association, subclass a
feature base class for π entries, and pick/compose AOFs per application.

Run:
    python examples/custom_features.py
"""

from repro.association import Bundler, TrackBuilder
from repro.core import (
    Fixy,
    InvertAOF,
    ObservationFeature,
    TransitionFeature,
    VolumeFeature,
    VelocityFeature,
    CountFeature,
)
from repro.datasets import SYNTHETIC_INTERNAL, build_dataset
from repro.geometry import compute_iou


# --------------------------------------------------------------------------
# The paper's worked-example bundler, verbatim (§3).
# --------------------------------------------------------------------------
class TrackBundler(Bundler):
    def is_associated(self, box1, box2):
        return compute_iou(box1, box2) > 0.5


# --------------------------------------------------------------------------
# A custom observation feature: footprint aspect ratio. Cars are ~2.4:1,
# pedestrians ~1:1 — a box whose aspect ratio is atypical *for its class*
# is suspicious. Class-conditional KDE, exactly like volume.
# --------------------------------------------------------------------------
class AspectRatioFeature(ObservationFeature):
    name = "aspect_ratio"
    class_conditional = True

    def compute(self, obs, context):
        return obs.box.length / obs.box.width


# --------------------------------------------------------------------------
# A custom transition feature: absolute heading change between frames.
# Real vehicles turn smoothly; boxes that spin are labeling/model errors.
# --------------------------------------------------------------------------
class HeadingChangeFeature(TransitionFeature):
    name = "heading_change"

    def compute(self, transition, context):
        before, after = transition
        from repro.geometry import wrap_angle

        return abs(
            wrap_angle(
                after.representative().box.yaw - before.representative().box.yaw
            )
        )


features = [
    VolumeFeature(),
    VelocityFeature(),
    CountFeature(),
    AspectRatioFeature(),
    HeadingChangeFeature(),
]

# Invert every learned feature: we are hunting *implausible* tracks.
aofs = {f.name: InvertAOF() for f in features if f.learnable}

dataset = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=4, n_val_scenes=1)
fixy = Fixy(features, aofs=aofs).fit(dataset.train_scenes)

labeled_scene = dataset.val_scenes[0]
# Re-associate with the custom bundler to show the full custom pipeline.
builder = TrackBuilder(bundler=TrackBundler())
scene = builder.build_scene(
    labeled_scene.scene_id + "-custom",
    labeled_scene.world.dt,
    labeled_scene.human_observations + labeled_scene.model_observations,
)
scene.metadata["ego_poses"] = list(labeled_scene.world.ego_poses)

print("Most implausible tracks under the custom feature set:")
for position, scored in enumerate(fixy.rank(scene, "tracks", top_k=8), start=1):
    track = scored.item
    print(
        f"  {position}. {track.track_id}  score {scored.score:+.3f}  "
        f"{track.majority_class()}  sources {sorted(track.sources)}"
    )
