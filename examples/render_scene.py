"""Render a bird's-eye-view ASCII snapshot of a scene (Figures 1 and 8).

The paper's Figures 1 and 8 show LIDAR frames with vendor labels and
missing labels highlighted. This example renders the same information in
the terminal via :mod:`repro.viz`: ground truth with vendor-missed
objects as ``X`` (Figure 1/8), then the associated LOA scene by source.

Run:
    python examples/render_scene.py [frame]
"""

import sys

from repro.datasets import SYNTHETIC_LYFT, build_dataset
from repro.viz import render_tracks, render_world_frame

FRAME = int(sys.argv[1]) if len(sys.argv) > 1 else 30

dataset = build_dataset(SYNTHETIC_LYFT, n_train_scenes=1, n_val_scenes=1)
labeled_scene = dataset.val_scenes[0]
world = labeled_scene.world
missing_ids = labeled_scene.ledger.missing_track_object_ids(world.scene_id)

print(render_world_frame(world, FRAME, missing_ids=missing_ids))
print()
print(render_tracks(labeled_scene.scene, FRAME))

ego = world.ego_poses[FRAME]
missed = [world.object_by_id(i) for i in missing_ids]
print(f"\n{len(missed)} objects missed by the vendor in this scene:")
for obj in missed:
    box = obj.box_at(FRAME)
    where = (
        f"{box.distance_to([ego.x, ego.y]):5.1f} m away" if box else "not in frame"
    )
    print(f"  {obj.object_id}: {obj.object_class.value:<10s} {where}")
