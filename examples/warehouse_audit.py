"""Out-of-core audits from a persistent scene warehouse.

The scene warehouse (repro.warehouse) is a disk-backed, content-
addressed corpus store: scenes live as packed blobs keyed by
fingerprint, metadata lives in indexed SQLite columns, and compiled
factor columns persist in a sidecar keyed by (scene, model) so a warm
audit skips compilation entirely. This example runs the whole loop:

1. generate a corpus and ingest it (tagged) into a warehouse;
2. declare an audit whose scene source is the warehouse plus a
   ScenePredicate — pruning happens as an index scan, no blob is read
   for scenes the predicate rejects;
3. run it inline, cold then warm: the corpus streams through a fixed
   resident-scene budget, and the warm pass restores compiled columns
   from the sidecar instead of recompiling;
4. run the same spec on the remote backend against two real
   ``repro.cli serve`` workers — one sharing the warehouse path (it is
   fed fingerprints only, no scene bodies on the wire), one not (it is
   fed blobs chunk by chunk) — and check byte-identity.

Run:
    PYTHONPATH=src python examples/warehouse_audit.py
"""

import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.api import Audit, AuditSpec, SceneSource
from repro.datagen import SceneConfig, SceneGenerator
from repro.datasets import SYNTHETIC_INTERNAL, build_dataset, build_labeled_scene
from repro.warehouse import ScenePredicate, SceneWarehouse

workdir = Path(tempfile.mkdtemp(prefix="warehouse_audit_"))
db = workdir / "corpus.db"

# ---------------------------------------------------------------------------
# 1. A corpus on disk. Scenes are packed once (the same bit-identical
#    format the v2 wire protocol ships) and indexed by metadata; tags
#    are free-form user labels.
# ---------------------------------------------------------------------------
def corpus_scene(index: int, n_objects: int):
    config = SceneConfig(n_objects_range=(n_objects, n_objects))
    world = SceneGenerator(config).generate(f"corpus-{index:03d}", seed=index)
    return build_labeled_scene(
        world, SYNTHETIC_INTERNAL.vendor, SYNTHETIC_INTERNAL.detector, seed=1
    ).scene


with SceneWarehouse(db) as warehouse:
    for i in range(12):
        dense = i % 3 == 0  # every third scene is a busy one
        warehouse.ingest(
            corpus_scene(i, n_objects=18 if dense else 8),
            tags=("dense", "nightly") if dense else ("nightly",),
        )
    stats = warehouse.stats()
print(
    f"warehouse {db.name}: {stats['scenes']} scenes, "
    f"{stats['blob_bytes'] / 1e6:.2f} MB of packed blobs"
)

# ---------------------------------------------------------------------------
# 2. The audit: scenes come from the warehouse, pruned by a predicate
#    that compiles to an indexed SQL plan (never a blob read), streamed
#    through a 4-scene resident budget.
# ---------------------------------------------------------------------------
predicate = ScenePredicate.all_of(
    ScenePredicate.tag("dense"),
    ScenePredicate.range("n_tracks", low=10),
)
spec = AuditSpec(
    kind="tracks",
    top_k=10,
    scenes=SceneSource(warehouse=str(db), predicate=predicate, batch=4),
)
print(f"predicate: {predicate.to_dict()}")

dataset = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=4, n_val_scenes=1)
audit = Audit(spec, train_scenes=dataset.train_scenes)
audit.fixy.warmup_fast_eval()
model_path = workdir / "model.json"
audit.fixy.learned.save(model_path, include_grids=True)

# ---------------------------------------------------------------------------
# 3. Inline, cold then warm. The provenance `stream` section is the
#    out-of-core story: corpus vs selected vs pruned, the peak number
#    of scenes ever resident, and cold-vs-sidecar compile counts.
# ---------------------------------------------------------------------------
t0 = time.perf_counter()
cold = audit.run()
cold_s = time.perf_counter() - t0
t0 = time.perf_counter()
warm = audit.run()
warm_s = time.perf_counter() - t0

stream = cold.provenance.stream
print(
    f"\npruning: {stream['selected_scenes']} of {stream['corpus_scenes']} "
    f"scenes selected ({stream['pruned_scenes']} pruned by index, "
    f"no blob read)"
)
print(
    f"residency: peak {stream['peak_resident_scenes']} scenes in memory "
    f"(budget {stream['batch']})"
)
print(
    f"cold: {1e3 * cold_s:6.1f} ms ({stream['compile_cold']} scenes "
    f"compiled, sidecars written)"
)
warm_stream = warm.provenance.stream
print(
    f"warm: {1e3 * warm_s:6.1f} ms ({warm_stream['compile_warm']} sidecar "
    f"restores, {warm_stream['compile_cold']} recompiles) — "
    f"{cold_s / warm_s:.1f}x faster"
)
assert [s.score for s in warm.items] == [s.score for s in cold.items]

# ---------------------------------------------------------------------------
# 4. The same spec, distributed. The worker launched with --warehouse
#    resolves fingerprints against its own copy of the store — the
#    coordinator ships it hashes only. The plain worker gets bodies
#    streamed chunk by chunk; neither way does the coordinator ever
#    hold the selection in memory.
# ---------------------------------------------------------------------------
def launch_worker(*extra: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--model", str(model_path), "--listen", "127.0.0.1:0", *extra],
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    for line in proc.stderr:
        found = re.search(r"listening on (\S+)", line)
        if found:
            proc.address = found.group(1)
            return proc
    raise RuntimeError("worker never announced its address")


workers = [launch_worker("--warehouse", str(db)), launch_worker()]
addresses = [w.address for w in workers]
print(f"\nworkers up: {addresses[0]} (shares warehouse), {addresses[1]}")

try:
    remote = audit.run(
        backend="remote", workers=addresses, timeout=120.0
    )
    assert [s.to_dict(spec.kind) for s in remote.items] == [
        s.to_dict(spec.kind) for s in cold.items
    ], "remote ranking diverged from inline!"
    stream = remote.provenance.stream
    print(
        f"remote: {stream['selected_scenes']} scenes across "
        f"{len(remote.provenance.workers)} workers "
        f"({stream['warehouse_workers']} warehouse-sharing), "
        f"coordinator resident scenes: {stream['peak_resident_scenes']}"
    )
    for report in remote.provenance.workers:
        print(
            f"  {report['worker']}: {report['n_scenes']} scenes, "
            f"{report['bytes_sent']}B shipped, "
            f"{report['scene_cache_hits']} fetched locally"
        )
    print("\nbyte-identical: inline cold == inline warm == remote")
finally:
    audit.close()
    for worker in workers:
        worker.terminate()
print("workers stopped")
