"""One declarative AuditSpec, four execution backends, one answer.

The unified audit API (repro.api) separates *what* to audit from *how*
to run it. This example declares a single missing-label audit as an
AuditSpec, round-trips it through JSON (it is pure data — ship it, log
it, diff it), then executes it on every registered backend and shows
the rankings are byte-identical, with provenance telling the strategies
apart. Finally the same spec goes through the versioned wire protocol
via the in-repo client — the exact path a remote front end would take.

Run:
    python examples/audit_backends.py
"""

from repro.api import (
    Audit,
    AuditClient,
    AuditSpec,
    FilterSpec,
    available_backends,
)
from repro.datasets import SYNTHETIC_INTERNAL, build_dataset

# ---------------------------------------------------------------------------
# 1. Declare the audit. No engine objects, no callables — data only.
# ---------------------------------------------------------------------------
spec = AuditSpec(
    kind="tracks",
    filters=FilterSpec(has_model=True, has_human=False),  # missing labels
    top_k=10,
    backend="inline",
)
wire = spec.to_json(indent=2)
assert AuditSpec.from_json(wire) == spec  # JSON round-trip, exactly
print("AuditSpec (JSON wire form):")
print(wire)
print(f"spec hash: {spec.spec_hash()}\n")

# ---------------------------------------------------------------------------
# 2. Bind it: validate once, fit the engine, warm the density grids.
# ---------------------------------------------------------------------------
dataset = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=4, n_val_scenes=4)
audit = Audit(spec, train_scenes=dataset.train_scenes)
scenes = [ls.scene for ls in dataset.val_scenes]

# ---------------------------------------------------------------------------
# 3. Execute on every backend. Same spec, same scenes, same ranking —
#    the backend is a deployment choice, not a results choice.
# ---------------------------------------------------------------------------
reference = None
for backend in available_backends():
    result = audit.run(scenes=scenes, backend=backend)
    signature = [(s.track_id, s.score) for s in result.items]
    if reference is None:
        reference = signature
    assert signature == reference, f"{backend} diverged from inline!"
    timing = 1e3 * result.provenance.timings["rank_s"]
    print(
        f"{backend:<10s} {len(result.items):2d} items in {timing:7.1f} ms  "
        f"(model {result.provenance.model_fingerprint[:12]})"
    )
print("rankings byte-identical across backends\n")
audit.close()  # releases the sharded backend's process pool

# ---------------------------------------------------------------------------
# 4. The same spec over the versioned client/service protocol — what a
#    remote worker front end will speak (protocol v1, structured errors).
# ---------------------------------------------------------------------------
client = AuditClient.local(audit.fixy)
remote_result = client.audit(spec, scenes=scenes)
assert [i.to_dict() for i in remote_result.items] == [
    i.to_dict(spec.kind) for i in audit.run(scenes=scenes).items
]
print(
    f"protocol audit: {len(remote_result.items)} items via backend "
    f"{remote_result.provenance.backend!r}, spec "
    f"{remote_result.provenance.spec_hash[:12]} — matches in-process"
)

top = remote_result.items[0]
print(
    f"top candidate: {top.track_id} (score {top.score:+.3f}, "
    f"{top.summary['n_observations']} observations)"
)
