"""Audit ML model predictions without human labels (the §8.4 workload).

Runs the ad-hoc assertions (appear / flicker / multibox) first, then asks
Fixy for *novel* errors the assertions cannot see — inconsistent-but-
smooth ghost tracks, confidently-wrong classifications, gross
localization drifts — and compares against uncertainty sampling.

Run:
    python examples/audit_model_predictions.py
"""

from repro.association import TrackBuilder
from repro.baselines import (
    AppearAssertion,
    FlickerAssertion,
    MultiboxAssertion,
    run_assertions,
    uncertainty_sample_tracks,
)
from repro.core import ModelErrorFinder
from repro.datasets import SYNTHETIC_LYFT, build_dataset
from repro.eval import precision_at_k

dataset = build_dataset(SYNTHETIC_LYFT, n_val_scenes=3)
finder = ModelErrorFinder().fit(dataset.train_scenes)
builder = TrackBuilder()

for labeled_scene in dataset.val_scenes:
    # §8.4 assumes no human labels: associate the detector output alone.
    scene = builder.build_scene(
        labeled_scene.scene_id + "-model",
        labeled_scene.world.dt,
        list(labeled_scene.model_observations),
    )
    scene.metadata["ego_poses"] = list(labeled_scene.world.ego_poses)
    auditor = labeled_scene.auditor()

    flagged = run_assertions(
        [AppearAssertion(), FlickerAssertion(), MultiboxAssertion()], scene
    )
    excluded = set()
    for flag in flagged:
        excluded.update(flag.track_id.split("+"))
    print(f"\nScene {labeled_scene.scene_id}: ad-hoc assertions flagged "
          f"{len(excluded)} tracks; searching for novel errors...")

    ranked = finder.rank(scene, top_k=10,
                         exclude=lambda t: t.track_id in excluded)
    hits = []
    for position, scored in enumerate(ranked, start=1):
        decision = auditor.audit_model_error(scored.item)
        hits.append(decision.is_error)
        confs = [o.confidence for o in scored.item.observations if o.confidence]
        top_conf = max(confs) if confs else 0.0
        mark = "✓" if decision.is_error else "✗"
        print(f"  {mark} #{position:<2d} score {scored.score:+.3f}  "
              f"max conf {top_conf:.2f}  {decision.reason}")

    sampled = [u for u in uncertainty_sample_tracks(scene)
               if u.track_id not in excluded][:10]
    unc_hits = [auditor.audit_model_error(u.item).is_error for u in sampled]
    print(f"  Fixy precision@10:        {precision_at_k(hits, 10):.0%}")
    print(f"  uncertainty precision@10: {precision_at_k(unc_hits, 10):.0%}")
    high = [i for i, (h, s) in enumerate(zip(hits, ranked), start=1)
            if h and any((o.confidence or 0) >= 0.9 for o in s.item.observations)]
    if high:
        print(f"  errors found at >= 0.90 confidence (ranks): {high}")
