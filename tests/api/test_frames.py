"""Protocol v2 binary wire: frame codec round-trips and failure modes,
packed-scene encoding, the worker scene cache, and the framed TCP
transport end-to-end (content-addressed audits, the ``need`` refill)."""

import io
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AuditClient, AuditSpec, frames, protocol
from repro.core.model import Scene
from repro.geometry import Pose2D
from repro.serving import StreamingService
from repro.serving.tcp import TcpWorker

from tests.api.test_backends import random_scenes
from tests.serving.conftest import model_scene


def round_trip(header, blobs=()):
    buffer = io.BytesIO(frames.encode_frame(header, blobs))
    return frames.read_frame(buffer)


class TestFrameCodec:
    def test_header_only_round_trip(self):
        header = {"v": 2, "op": "audit", "scene_hashes": ["a" * 40]}
        decoded, blobs = round_trip(header)
        assert decoded == header
        assert blobs == []

    def test_header_plus_blobs_round_trip(self):
        payloads = [b"", b"\x00\x01\x02", b"x" * 70_000]
        decoded, blobs = round_trip({"op": "audit"}, payloads)
        assert decoded == {"op": "audit"}
        assert blobs == payloads

    def test_magic_is_not_ascii(self):
        """The first byte can never open a JSON line — the property the
        TCP listener's wire auto-detection rests on."""
        assert frames.MAGIC[0] >= 0x80

    def test_truncated_frame_is_stream_closed(self):
        data = frames.encode_frame({"op": "stats"}, [b"abcdef"])
        for cut in (1, 5, len(data) - 1):
            with pytest.raises(protocol.StreamClosedError):
                frames.read_frame(io.BytesIO(data[:cut]))

    def test_eof_at_boundary(self):
        assert frames.read_frame(io.BytesIO(b""), allow_eof=True) is None
        with pytest.raises(protocol.StreamClosedError):
            frames.read_frame(io.BytesIO(b""))

    def test_bad_magic_is_frame_decode_error(self):
        with pytest.raises(protocol.FrameDecodeError) as exc:
            frames.read_frame(io.BytesIO(b'{"v": 1, "op": "stats"}\n'))
        assert exc.value.code == "frame_malformed"

    def test_oversized_header_refused_before_read(self):
        prelude = struct.pack(
            "<4sIH", frames.MAGIC, frames.MAX_HEADER_BYTES + 1, 0
        )
        with pytest.raises(protocol.FrameTooLargeError) as exc:
            frames.read_frame(io.BytesIO(prelude))
        assert exc.value.code == "frame_too_large"

    def test_oversized_blob_refused_before_read(self):
        prelude = struct.pack("<4sIH", frames.MAGIC, 2, 1) + struct.pack(
            "<Q", frames.MAX_BLOB_BYTES + 1
        )
        with pytest.raises(protocol.FrameTooLargeError):
            frames.read_frame(io.BytesIO(prelude))

    def test_too_many_blobs_refused(self):
        prelude = struct.pack(
            "<4sIH", frames.MAGIC, 2, frames.MAX_BLOBS + 1
        )
        with pytest.raises(protocol.FrameTooLargeError):
            frames.read_frame(io.BytesIO(prelude))

    def test_non_object_header_is_decode_error(self):
        body = b"[1,2,3]"
        data = struct.pack("<4sIH", frames.MAGIC, len(body), 0) + body
        with pytest.raises(protocol.FrameDecodeError):
            frames.read_frame(io.BytesIO(data))

    def test_encode_refuses_oversized(self):
        with pytest.raises(protocol.FrameTooLargeError):
            frames.encode_frame({}, [b""] * (frames.MAX_BLOBS + 1))


class TestPackedScenes:
    def assert_identical(self, scene):
        packed = frames.pack_scene(scene)
        restored = frames.unpack_scene(packed)
        assert restored.to_dict() == scene.to_dict()
        # Content addressing is deterministic.
        assert frames.scene_fingerprint(packed) == frames.scene_fingerprint(
            frames.pack_scene(scene)
        )

    def test_round_trip_bit_identical(self):
        self.assert_identical(model_scene("pk", n_tracks=4))

    def test_round_trip_empty_scene(self):
        self.assert_identical(Scene(scene_id="empty", dt=0.1, tracks=[]))

    def test_round_trip_ego_poses_and_metadata(self):
        scene = model_scene("ego", n_tracks=2)
        scene.metadata["ego_poses"] = [Pose2D(1.0, 2.0, 0.5)]
        scene.metadata["note"] = {"nested": [1, 2.5, "three"]}
        self.assert_identical(scene)

    def test_round_trip_none_confidence(self):
        scene = model_scene("conf", n_tracks=2)
        assert any(o.confidence is None for o in scene.observations) or any(
            o.confidence is not None for o in scene.observations
        )
        self.assert_identical(scene)

    def test_pack_accepts_dict_without_mutating_it(self):
        scene = model_scene("dict", n_tracks=2)
        payload = scene.to_dict()
        import copy

        before = copy.deepcopy(payload)
        packed = frames.pack_scene(payload)
        assert payload == before  # destructive extraction hit a copy
        assert frames.unpack_scene(packed).to_dict() == scene.to_dict()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_round_trip_property_randomized(self, seed):
        for scene in random_scenes(seed=seed, n_scenes=2):
            self.assert_identical(scene)

    def test_fingerprint_tracks_content(self):
        a = frames.pack_scene(model_scene("fp", n_tracks=3))
        b = frames.pack_scene(model_scene("fp", n_tracks=4))
        assert frames.scene_fingerprint(a) != frames.scene_fingerprint(b)

    def test_unpack_garbage_is_decode_error(self):
        for junk in (b"", b"\x00" * 3, b"\xff" * 64):
            with pytest.raises(protocol.FrameDecodeError):
                frames.unpack_scene(junk)

    def test_unpack_row_count_mismatch_is_decode_error(self):
        packed = frames.pack_scene(model_scene("rows", n_tracks=2))
        extra = packed + np.zeros(len(frames.OBS_COLUMNS)).tobytes()
        with pytest.raises(protocol.FrameDecodeError):
            frames.unpack_scene(extra)


class TestSceneCache:
    def blob(self, name, n_tracks=2):
        return frames.pack_scene(model_scene(name, n_tracks=n_tracks))

    def test_hit_miss_accounting(self):
        cache = frames.SceneCache(maxsize=4)
        fingerprint, scene = cache.ingest(self.blob("a"))
        assert cache.get(fingerprint) is scene  # decoded once, reused
        assert cache.get("0" * 40) is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["decodes"] == 1
        assert stats["size"] == 1

    def test_reingest_is_idempotent(self):
        cache = frames.SceneCache(maxsize=4)
        blob = self.blob("b")
        first, scene1 = cache.ingest(blob)
        second, scene2 = cache.ingest(blob)
        assert first == second and scene1 is scene2
        stats = cache.stats()
        assert stats["decodes"] == 1  # decoded once
        assert stats["hits"] == 1  # the resent body was a cache hit
        assert stats["misses"] == 0  # every lookup was served

    def test_lru_eviction(self):
        cache = frames.SceneCache(maxsize=2)
        fp_a, _ = cache.ingest(self.blob("ev-a"))
        fp_b, _ = cache.ingest(self.blob("ev-b"))
        assert cache.get(fp_a) is not None  # touch a: b becomes LRU
        fp_c, _ = cache.ingest(self.blob("ev-c"))
        assert cache.stats()["evictions"] == 1
        assert cache.get(fp_b) is None  # evicted
        assert cache.get(fp_a) is not None
        assert cache.get(fp_c) is not None


class TestFramedTransport:
    """The v2 wire end-to-end over real TCP: same answers as line-JSON,
    content-addressed audits, and the need/refill flow."""

    def test_framed_ops_match_json_ops(self, api_fixy, tcp_workers):
        address = tcp_workers[0]
        with AuditClient.connect(address) as json_client, AuditClient.connect(
            address, wire="frames"
        ) as framed_client:
            assert framed_client.version == 2
            json_hello = json_client.hello()
            framed_hello = framed_client.hello()
            assert framed_hello == json_hello
            assert "frames" in framed_hello["wire_formats"]
            assert framed_client.health()["status"] == "ok"

    def test_framed_audit_with_scene_bodies(self, api_fixy, tcp_workers):
        spec = AuditSpec(kind="tracks", top_k=5)
        scenes = [model_scene(f"fr-{i}", n_tracks=3) for i in range(2)]
        with AuditClient.connect(tcp_workers[0], wire="frames") as client:
            result = client.audit(spec, scenes=scenes)
        assert result.items
        from repro.api import Audit

        with Audit(spec, fixy=api_fixy) as audit:
            inline = audit.run(scenes=scenes)
        assert [i.to_dict() for i in result.items] == [
            i.to_dict(spec.kind) for i in inline.items
        ]

    def test_content_addressed_need_then_refill(self, api_fixy):
        """ids-first: an unknown hash is answered with need, the refill
        carries only that body, and the re-ask is all hits."""
        worker = TcpWorker(api_fixy)
        try:
            spec = AuditSpec(kind="tracks", top_k=5).to_dict()
            packed = frames.pack_scene(model_scene("need", n_tracks=3))
            fingerprint = frames.scene_fingerprint(packed)
            with AuditClient.connect(worker.address, wire="frames") as client:
                client.send_request(
                    "audit", spec=spec, scene_hashes=[fingerprint]
                )
                first = client.recv_response()
                assert first["need"] == [fingerprint]
                client.send_request(
                    "audit",
                    blobs=(packed,),
                    spec=spec,
                    scene_hashes=[fingerprint],
                )
                refilled = client.recv_response()
                assert refilled["scene_cache"] == {"hits": 0, "misses": 1}
                assert refilled["result"]["items"]
                client.send_request(
                    "audit", spec=spec, scene_hashes=[fingerprint]
                )
                warm = client.recv_response()
                assert warm["scene_cache"] == {"hits": 1, "misses": 0}
                assert warm["result"]["items"] == refilled["result"]["items"]
        finally:
            worker.stop()

    def test_cache_smaller_than_request_still_completes(self, api_fixy):
        """Bodies shipped with a request are usable even when the LRU
        cannot hold them all — no need-loop."""
        worker = TcpWorker(api_fixy, scene_cache=1)
        try:
            spec = AuditSpec(kind="tracks", top_k=8)
            scenes = [model_scene(f"small-{i}", n_tracks=2) for i in range(3)]
            with AuditClient.connect(worker.address, wire="frames") as client:
                packed = [frames.pack_scene(s) for s in scenes]
                client.send_request(
                    "audit",
                    blobs=tuple(packed),
                    spec=spec.to_dict(),
                    scene_hashes=[
                        frames.scene_fingerprint(p) for p in packed
                    ],
                )
                response = client.recv_response()
            assert "result" in response
            assert response["scene_cache"]["misses"] == 3
        finally:
            worker.stop()

    def test_pipelined_requests_answered_in_order(self, api_fixy, tcp_workers):
        with AuditClient.connect(tcp_workers[0], wire="frames") as client:
            client.send_request("stats")
            client.send_request("hello")
            client.send_request("health")
            stats = client.recv_response()
            hello = client.recv_response()
            health = client.recv_response()
        assert "live_sessions" in stats
        assert hello["protocol_version"] == protocol.PROTOCOL_VERSION
        assert health["status"] == "ok"

    def test_malformed_frame_gets_error_then_close(self, api_fixy):
        """Garbage after the magic byte: one structured error frame,
        then the server hangs up (the stream cannot re-sync)."""
        import socket as socket_mod

        worker = TcpWorker(api_fixy)
        try:
            host, port = worker.address.rsplit(":", 1)
            with socket_mod.create_connection((host, int(port)), timeout=10) as sock:
                sock.sendall(frames.MAGIC[:1] + b"\xff" * 16)
                reader = sock.makefile("rb")
                header, blobs = frames.read_frame(reader)
                assert header["ok"] is False
                assert header["error"]["code"] in (
                    "frame_malformed", "frame_too_large",
                )
                assert reader.read(1) == b""  # connection closed
        finally:
            worker.stop()

    def test_v1_only_service_ignores_frame_magic(self, api_fixy):
        """A worker emulating the pre-frames build treats a frame as a
        garbage JSON line — the old behavior, proving the magic is only
        ever interpreted by servers that advertise frames."""
        worker = TcpWorker(
            api_fixy, protocol_version=1, accept_legacy=False
        )
        try:
            # A frame contains no newline, so the v1 line loop just
            # waits for more bytes — the short deadline turns that
            # into a typed timeout (a real coordinator never gets
            # here: it checks hello's wire_formats first).
            with AuditClient.connect(
                worker.address, wire="frames", timeout=1.0
            ) as client:
                with pytest.raises(protocol.TransportError):
                    client.hello()
        finally:
            worker.stop()

    def test_line_json_clients_unaffected_on_same_port(
        self, api_fixy, tcp_workers
    ):
        """One listener, both wires: a framed conversation on one
        connection never disturbs line-JSON on another."""
        with AuditClient.connect(
            tcp_workers[0], wire="frames"
        ) as framed, AuditClient.connect(tcp_workers[0]) as plain:
            assert framed.hello() == plain.hello()
