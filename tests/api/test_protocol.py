"""Versioned wire protocol: negotiation, structured errors, the client,
transport hardening (EOF / garbage / timeout), worker registration ops,
and the legacy (v0) deprecation shim."""

import io
import json
import socket
import threading

import pytest

from repro.api import AuditClient, AuditSpec, FilterSpec
from repro.api import protocol
from repro.serving import InsertObservation, StreamingService

from tests.core.conftest import make_obs
from tests.serving.conftest import model_scene


@pytest.fixture
def service(api_fixy):
    return StreamingService(api_fixy, max_sessions=4)


@pytest.fixture
def strict_service(api_fixy):
    return StreamingService(api_fixy, max_sessions=4, accept_legacy=False)


class TestVersionNegotiation:
    def test_v1_round_trip_carries_version(self, service):
        response = service.handle(
            protocol.make_request("open", scene=model_scene("v1").to_dict())
        )
        assert response["ok"] is True
        assert response["v"] == protocol.PROTOCOL_VERSION

    def test_unknown_version_rejected_round_trip(self, service):
        for bad in (99, "two", None):
            response = service.handle(
                {"v": bad, "op": "stats"}
            )
            assert response["ok"] is False
            assert response["v"] == protocol.PROTOCOL_VERSION
            assert response["error"]["code"] == "unsupported_version"
            assert response["error"]["details"]["supported"] == list(
                protocol.SUPPORTED_VERSIONS
            )

    def test_v1_request_answered_in_v1(self, service):
        """A v2 build answers a v1 peer in the v1 dialect — the
        mixed-version pool precondition."""
        response = service.handle({"v": 1, "op": "stats"})
        assert response["ok"] is True
        assert response["v"] == 1
        error = service.handle({"v": 1, "op": "warp"})
        assert error["ok"] is False and error["v"] == 1

    def test_v1_only_service_rejects_v2(self, api_fixy):
        """protocol_version=1 emulates a pre-frames worker."""
        old = StreamingService(api_fixy, protocol_version=1)
        assert not old.supports_frames
        assert old.handle({"v": 1, "op": "stats"})["ok"] is True
        rejected = old.handle({"v": 2, "op": "stats"})
        assert rejected["ok"] is False
        assert rejected["error"]["code"] == "unsupported_version"
        assert rejected["error"]["details"]["supported"] == [1]
        assert old.handle(protocol.make_request("hello", version=1))[
            "wire_formats"
        ] == ["json"]

    def test_legacy_request_works_with_deprecation_warning(self, service):
        scene = model_scene("legacy", n_tracks=2)
        with pytest.warns(DeprecationWarning, match="version-less"):
            opened = service.handle({"op": "open", "scene": scene.to_dict()})
        # v0 dialect: no version field, plain fields, ok flag.
        assert opened["ok"] is True
        assert "v" not in opened
        assert opened["session_id"] == "legacy"
        with pytest.warns(DeprecationWarning):
            ranked = service.handle(
                {"op": "rank", "session_id": "legacy", "top_k": 1}
            )
        assert ranked["ok"] and len(ranked["results"]) == 1

    def test_legacy_errors_stay_strings(self, service):
        with pytest.warns(DeprecationWarning):
            response = service.handle({"op": "warp"})
        assert response["ok"] is False
        assert isinstance(response["error"], str)
        assert "unknown op" in response["error"]

    def test_strict_service_rejects_versionless(self, strict_service):
        response = strict_service.handle({"op": "stats"})
        assert response["ok"] is False
        assert response["error"]["code"] == "unsupported_version"


class TestStructuredErrors:
    def test_unknown_rank_kind_code(self, service):
        service.handle(
            protocol.make_request("open", scene=model_scene("k").to_dict())
        )
        response = service.handle(
            protocol.make_request("rank", session_id="k", kind="galaxies")
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "unknown_rank_kind"
        assert response["error"]["details"]["valid_kinds"] == [
            "tracks", "bundles", "observations",
        ]

    def test_unknown_session_code(self, service):
        response = service.handle(
            protocol.make_request("rank", session_id="ghost")
        )
        assert response["error"]["code"] == "unknown_session"

    def test_missing_field_is_bad_request(self, service):
        response = service.handle(protocol.make_request("open"))
        assert response["error"]["code"] == "bad_request"
        assert "scene" in response["error"]["message"]

    def test_unknown_op_code(self, service):
        response = service.handle(protocol.make_request("warp"))
        assert response["error"]["code"] == "unknown_op"

    def test_invalid_spec_code(self, service):
        response = service.handle(
            protocol.make_request(
                "audit",
                spec={"kind": "tracks", "nope": 1},
                scenes=[model_scene("s").to_dict()],
            )
        )
        assert response["error"]["code"] == "invalid_spec"

    def test_every_response_is_json_safe(self, service):
        for request in (
            protocol.make_request("stats"),
            protocol.make_request("rank", session_id="ghost"),
            {"v": 99, "op": "stats"},
        ):
            json.dumps(service.handle(request))


class TestClient:
    def test_full_session_lifecycle(self, service):
        client = AuditClient.local(service=service)
        scene = model_scene("cl", n_tracks=3)
        session_id = client.open_session(scene)
        assert session_id == "cl"
        edited = client.edit(
            session_id,
            InsertObservation("cl-t0", make_obs(9, 1.0, source="model", conf=0.9)),
        )
        assert edited["changed"] == ["cl-t0"] and edited["version"] == 1
        results = client.rank(session_id, kind="tracks", top_k=2)
        assert len(results) == 2 and results[0]["kind"] == "track"
        assert client.stats()["live_sessions"] == 1
        assert client.close_session(session_id) is True
        assert client.close_session(session_id) is False

    def test_typed_errors_raise_protocol_error(self, service):
        client = AuditClient.local(service=service)
        client.open_session(model_scene("err"))
        with pytest.raises(protocol.ProtocolError) as exc:
            client.rank("err", kind="galaxies")
        assert exc.value.code == "unknown_rank_kind"
        with pytest.raises(protocol.ProtocolError) as exc:
            client.rank("ghost")
        assert exc.value.code == "unknown_session"

    def test_audit_over_shipped_scenes_matches_inline(self, service, api_fixy):
        from repro.api import Audit

        client = AuditClient.local(service=service)
        spec = AuditSpec(
            kind="tracks",
            top_k=3,
            filters=FilterSpec(has_model=True, has_human=False),
        )
        scenes = [model_scene(f"au-{i}", n_tracks=3) for i in range(2)]
        remote = client.audit(spec, scenes=scenes)
        local = Audit(spec, fixy=api_fixy).run(scenes=scenes)
        assert [i.to_dict() for i in remote.items] == [
            i.to_dict(spec.kind) for i in local.items
        ]
        assert remote.provenance.spec_hash == spec.spec_hash()

    def test_audit_over_live_session(self, service):
        client = AuditClient.local(service=service)
        client.open_session(model_scene("live", n_tracks=4))
        result = client.audit(
            AuditSpec(kind="tracks", top_k=2), session_id="live"
        )
        assert len(result.items) == 2
        assert result.provenance.backend == "session"

    def test_hello_and_health_ops(self, service, api_fixy):
        client = AuditClient.local(service=service)
        hello = client.hello()
        assert hello["protocol_version"] == protocol.PROTOCOL_VERSION
        assert hello["model_fingerprint"] == api_fixy.learned.fingerprint()
        assert hello["capacity"] == 1
        assert set(hello["ops"]) >= {"audit", "hello", "health", "rank"}
        assert hello["features"]  # advertised feature names
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        assert health["requests_handled"] >= 1
        assert "live_sessions" in health

    def test_over_streams_transport(self, api_fixy):
        """The client speaks the line-JSON framing `cli serve` uses,
        against a real serve() loop over OS pipes."""
        import os

        service = StreamingService(api_fixy, max_sessions=2)
        c2s_read, c2s_write = os.pipe()
        s2c_read, s2c_write = os.pipe()
        server_in = os.fdopen(c2s_read, "r")
        server_out = os.fdopen(s2c_write, "w")
        client_writer = os.fdopen(c2s_write, "w")
        client_reader = os.fdopen(s2c_read, "r")
        server = threading.Thread(
            target=service.serve, args=(server_in, server_out), daemon=True
        )
        server.start()
        try:
            client = AuditClient.over_streams(
                writer=client_writer, reader=client_reader
            )
            assert client.open_session(model_scene("stream", n_tracks=2)) == (
                "stream"
            )
            assert len(client.rank("stream", top_k=1)) == 1
            assert client.stats()["live_sessions"] == 1
        finally:
            client_writer.close()  # EOF ends the serve loop
            server.join(timeout=10)
            server_in.close()
            server_out.close()
            client_reader.close()
        assert not server.is_alive()


def stream_client(response_text: str) -> AuditClient:
    """A client whose 'server' is a canned byte stream."""
    return AuditClient.over_streams(
        writer=io.StringIO(), reader=io.StringIO(response_text)
    )


class TestTransportHardening:
    """EOF, garbage, and timeout are typed ProtocolError subclasses —
    never a raw json/OSError escaping to the caller."""

    def test_eof_mid_response_is_stream_closed(self):
        client = stream_client("")  # server died before answering
        with pytest.raises(protocol.StreamClosedError) as exc:
            client.stats()
        assert exc.value.code == "worker_unavailable"
        assert isinstance(exc.value, protocol.ProtocolError)

    def test_garbage_line_is_malformed_response(self):
        for bad in ('{"ok": true, "v":', "not json at all", "[1, 2, 3]"):
            client = stream_client(bad + "\n")
            with pytest.raises(protocol.MalformedResponseError) as exc:
                client.stats()
            assert exc.value.code == "bad_json"

    def test_closed_stream_write_is_stream_closed(self):
        writer = io.StringIO()
        writer.close()
        client = AuditClient.over_streams(writer=writer, reader=io.StringIO())
        with pytest.raises(protocol.StreamClosedError):
            client.stats()

    def test_request_timeout_over_real_socket(self):
        """A silent server trips the per-request deadline with a typed
        RequestTimeoutError, and the deadline is per request."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            client = AuditClient.connect(
                "127.0.0.1:%d" % listener.getsockname()[1], timeout=0.2
            )
            conn, _ = listener.accept()  # connected, but never respond
            with pytest.raises(protocol.RequestTimeoutError) as exc:
                client.stats()
            assert exc.value.code == "request_timeout"
            assert "stats" in exc.value.message
            client.close()
            conn.close()
        finally:
            listener.close()

    def test_connect_refused_is_stream_closed(self):
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        with pytest.raises(protocol.StreamClosedError):
            AuditClient.connect(f"127.0.0.1:{port}", connect_timeout=0.5)

    def test_transport_errors_pickle_round_trip(self):
        import pickle

        for err in (
            protocol.StreamClosedError("gone", details={"worker": "h:1"}),
            protocol.MalformedResponseError("junk"),
            protocol.RequestTimeoutError("slow"),
        ):
            clone = pickle.loads(pickle.dumps(err))
            assert type(clone) is type(err)
            assert clone.code == err.code
            assert clone.message == err.message
            assert clone.details == err.details

    def test_parse_address_forms(self):
        from repro.api.client import parse_address

        assert parse_address("localhost:7500") == ("localhost", 7500)
        assert parse_address(("10.0.0.1", 80)) == ("10.0.0.1", 80)
        for bad in ("no-port", ":7500", "host:notanumber"):
            with pytest.raises(ValueError):
                parse_address(bad)
