"""The Audit façade: engine binding, provenance, typed results."""

import json

import pytest

from repro.api import (
    Audit,
    AuditError,
    AuditProvenance,
    AuditResult,
    AuditSpec,
    FilterSpec,
    SceneSource,
    run_audit,
)
from repro.core import Fixy, default_features
from repro.core.scoring import ScoredItem

from tests.serving.conftest import build_training_scenes, model_scene


class TestBinding:
    def test_requires_a_model_source(self):
        with pytest.raises(AuditError, match="no model source"):
            Audit(AuditSpec(kind="tracks"))

    def test_binds_existing_engine(self, api_fixy):
        audit = Audit(AuditSpec(kind="tracks"), fixy=api_fixy)
        assert audit.fixy is api_fixy

    def test_fits_on_train_scenes(self):
        audit = Audit(
            AuditSpec(kind="tracks"), train_scenes=build_training_scenes()
        )
        assert audit.fixy.is_fitted

    def test_loads_model_path(self, api_fixy, tmp_path):
        path = tmp_path / "model.json"
        api_fixy.learned.save(path)
        audit = Audit(AuditSpec(kind="tracks", model_path=str(path)))
        assert audit.fixy.is_fitted
        assert (
            audit.fixy.learned.fingerprint() == api_fixy.learned.fingerprint()
        )
        # Same model → same ranking as the original engine.
        scene = model_scene("load", n_tracks=3)
        assert [
            s.to_dict("tracks") for s in audit.run(scenes=scene).items
        ] == [
            s.to_dict("tracks")
            for s in Audit(AuditSpec(kind="tracks"), fixy=api_fixy)
            .run(scenes=scene)
            .items
        ]

    def test_fits_profile_training_split_from_scene_source(self):
        spec = AuditSpec(
            kind="tracks",
            top_k=3,
            scenes=SceneSource(profile="internal", n_train=2, n_val=1),
        )
        result = Audit(spec).run()  # scenes resolved from the spec
        assert len(result.items) == 3
        assert result.provenance.n_scenes == 1
        assert "resolve_scenes_s" in result.provenance.timings

    def test_invalid_spec_rejected_at_bind(self, api_fixy):
        from repro.api import SpecValidationError

        with pytest.raises(SpecValidationError):
            Audit(AuditSpec(kind="tracks", top_k=-1), fixy=api_fixy)


class TestRun:
    def test_no_scenes_anywhere_is_an_error(self, api_fixy):
        with pytest.raises(AuditError, match="no scenes"):
            Audit(AuditSpec(kind="tracks"), fixy=api_fixy).run()

    def test_single_scene_accepted(self, api_fixy):
        result = Audit(AuditSpec(kind="tracks"), fixy=api_fixy).run(
            scenes=model_scene("one", n_tracks=2)
        )
        assert result.provenance.n_scenes == 1
        assert len(result.items) == 2

    def test_provenance_fields(self, api_fixy):
        spec = AuditSpec(kind="tracks", top_k=2)
        result = Audit(spec, fixy=api_fixy).run(scenes=model_scene("prov"))
        prov = result.provenance
        assert prov.backend == "inline"
        assert prov.spec_hash == spec.spec_hash()
        assert prov.model_fingerprint == api_fixy.learned.fingerprint()
        assert prov.api_version == 1
        assert prov.timings["rank_s"] <= prov.timings["total_s"]

    def test_run_audit_one_shot(self):
        result = run_audit(
            AuditSpec(
                kind="tracks",
                filters=FilterSpec(has_model=True),
                top_k=4,
            ),
            scenes=model_scene("oneshot", n_tracks=5),
            train_scenes=build_training_scenes(),
        )
        assert len(result.items) == 4

    def test_filters_applied(self, api_fixy):
        spec = AuditSpec(
            kind="tracks", filters=FilterSpec(has_human=True)
        )
        result = Audit(spec, fixy=api_fixy).run(
            scenes=model_scene("filtered", n_tracks=3)  # all model-only
        )
        assert result.items == []


class TestResult:
    def test_sequence_protocol(self, api_fixy):
        result = Audit(AuditSpec(kind="tracks"), fixy=api_fixy).run(
            scenes=model_scene("seq", n_tracks=3)
        )
        assert len(result) == 3
        assert list(result)[0] is result[0]
        assert isinstance(result[0], ScoredItem)

    def test_json_round_trip(self, api_fixy):
        spec = AuditSpec(kind="observations", top_k=5)
        result = Audit(spec, fixy=api_fixy).run(scenes=model_scene("rt"))
        clone = AuditResult.from_json(result.to_json())
        assert clone.spec == spec
        assert clone.provenance == result.provenance
        # Round-tripped items keep every wire field, bit-for-bit.
        assert [i.to_dict() for i in clone.items] == [
            i.to_dict(spec.kind) for i in result.items
        ]
        # Items lose the live object but keep the summary.
        assert clone.items[0].item is None
        assert clone.items[0].summary["obs_id"]
        assert clone.items[0].kind == "observation"
        # The whole payload is plain JSON.
        json.dumps(result.to_dict())

    def test_provenance_round_trip(self):
        prov = AuditProvenance(
            backend="sharded",
            spec_hash="abc",
            model_fingerprint=None,
            n_scenes=3,
            api_version=1,
            timings={"rank_s": 0.5},
            backend_options={"n_workers": 2},
        )
        assert AuditProvenance.from_dict(prov.to_dict()) == prov


class TestEngineFacade:
    def test_fixy_audit_convenience(self):
        fixy = Fixy(default_features()).fit(build_training_scenes())
        result = fixy.audit(
            AuditSpec(kind="tracks", top_k=2),
            scenes=model_scene("facade", n_tracks=3),
            backend="session",
        )
        assert result.provenance.backend == "session"
        assert len(result.items) == 2
