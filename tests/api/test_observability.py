"""End-to-end observability: stitched traces across the remote
backend's worker pool, the ``metrics`` protocol op (and its v1
rejection), the HTTP exposition endpoint, and the provenance
round-trip of the merged trace."""

import json

import pytest

from repro.api import Audit, AuditResult, AuditSpec, protocol
from repro.api.client import AuditClient
from repro.obs import get_registry, serve_metrics
from repro.serving import StreamingService
from repro.serving.tcp import TcpWorker

from tests.serving.conftest import model_scene


def spans_by_name(trace_dict):
    out = {}
    for span in trace_dict["spans"]:
        out.setdefault(span["name"], []).append(span)
    return out


class TestStitchedTrace:
    def test_remote_audit_yields_one_stitched_trace(
        self, api_fixy, tcp_workers
    ):
        """Acceptance: one remote audit over two live workers lands a
        single trace in provenance — coordinator spans plus both
        workers' spans, parented under their dispatch spans."""
        spec = AuditSpec(kind="tracks", top_k=5)
        scenes = [model_scene(f"tr-{i}", n_tracks=3) for i in range(4)]
        with Audit(spec, fixy=api_fixy) as audit:
            result = audit.run(
                scenes=scenes,
                backend="remote",
                workers=list(tcp_workers),
                trace=True,
            )
        trace = result.provenance.trace
        assert trace is not None
        assert all(s["trace_id"] == trace["trace_id"] for s in trace["spans"])

        named = spans_by_name(trace)
        # Workers run a nested inline audit, so "audit" appears three
        # times; the coordinator's is the only root.
        (root,) = [
            s for s in named["audit"] if s.get("parent_id") is None
        ]
        assert root["attrs"]["backend"] == "remote"
        (rank,) = [
            s for s in named["rank"]
            if s.get("parent_id") == root["span_id"]
        ]
        dispatches = named["pool.dispatch"]
        assert len(dispatches) == 2
        assert {d["attrs"]["worker"] for d in dispatches} == set(tcp_workers)
        assert all(d["parent_id"] == rank["span_id"] for d in dispatches)
        # Each worker's root span hangs off the dispatch that hit it.
        worker_roots = named["worker.audit"]
        assert len(worker_roots) == 2
        assert {w["parent_id"] for w in worker_roots} == {
            d["span_id"] for d in dispatches
        }
        # Worker-side compile spans made the trip too, transitively
        # parented under the worker roots.
        by_id = {s["span_id"]: s for s in trace["spans"]}

        def ancestors(span):
            while span.get("parent_id"):
                span = by_id[span["parent_id"]]
                yield span["name"]

        for compile_span in named["compile"]:
            assert "worker.audit" in ancestors(compile_span)
        # Durations and starts are recorded for every span.
        assert all(s["dur_s"] >= 0 and s["start_s"] > 0 for s in trace["spans"])

    def test_untraced_run_attaches_nothing(self, api_fixy, tcp_workers):
        spec = AuditSpec(kind="tracks", top_k=3)
        with Audit(spec, fixy=api_fixy) as audit:
            result = audit.run(
                scenes=[model_scene("untr", n_tracks=2)],
                backend="remote",
                workers=list(tcp_workers),
            )
        assert result.provenance.trace is None
        with pytest.raises(ValueError):
            result.dump_trace("/dev/null")

    def test_trace_round_trips_through_provenance(self, api_fixy, tmp_path):
        spec = AuditSpec(kind="tracks", top_k=3)
        result = Audit(spec, fixy=api_fixy).run(
            scenes=[model_scene("rt", n_tracks=2)], trace=True
        )
        restored = AuditResult.from_dict(result.to_dict())
        assert restored.provenance.trace == result.provenance.trace

        path = tmp_path / "trace.jsonl"
        n_spans = restored.dump_trace(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == n_spans == len(result.provenance.trace["spans"])
        names = {json.loads(line)["name"] for line in lines}
        assert {"audit", "rank", "compile"} <= names


class _DyingService(StreamingService):
    """Drops the connection on the first ``audit`` (see test_pool)."""

    def __init__(self, fixy, **kw):
        super().__init__(fixy, **kw)
        self.audits_seen = 0

    def handle(self, request):
        if request.get("op") == "audit":
            self.audits_seen += 1
            raise SystemExit("simulated worker death")
        return super().handle(request)


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestTraceSurvivesRequeue:
    def test_requeued_partition_traced_twice(self, api_fixy):
        """A worker dying mid-audit leaves both attempts in the trace:
        the failed dispatch (error attr) and the successful retry."""
        dying = _DyingService(api_fixy)
        with TcpWorker(service=dying) as bad, TcpWorker(api_fixy) as good:
            spec = AuditSpec(kind="tracks", top_k=4)
            scenes = [model_scene(f"rqt-{i}", n_tracks=2) for i in range(4)]
            with Audit(spec, fixy=api_fixy) as audit:
                result = audit.run(
                    scenes=scenes,
                    backend="remote",
                    workers=[bad.address, good.address],
                    trace=True,
                )
        assert dying.audits_seen == 1
        named = spans_by_name(result.provenance.trace)
        dispatches = named["pool.dispatch"]
        assert len(dispatches) == 3  # 2 partitions + 1 retry
        requeued = [
            d for d in dispatches if d["attrs"]["worker"] == bad.address
        ]
        (failed,) = requeued
        assert failed["attrs"]["attempt"] == 1
        assert "error" in failed["attrs"]
        # The dead worker's partition shows up again on the survivor.
        partition = failed["attrs"]["partition"]
        retries = [
            d
            for d in dispatches
            if d["attrs"]["partition"] == partition
            and d["attrs"]["worker"] == good.address
        ]
        assert any(d["attrs"]["attempt"] == 2 for d in retries)


class TestMetricsOp:
    def test_hello_advertises_metrics(self, api_fixy):
        client = AuditClient.local(fixy=api_fixy)
        assert "metrics" in client.hello()["ops"]

    def test_snapshot_and_text(self, api_fixy):
        client = AuditClient.local(fixy=api_fixy)
        client.hello()
        payload = client.metrics(text=True)
        snapshot = payload["metrics"]
        assert "repro_service_requests_total" in snapshot
        assert snapshot["repro_service_requests_total"]["type"] == "counter"
        text = payload["text"]
        assert "# TYPE repro_service_requests_total counter" in text
        # text omitted unless asked for
        assert "text" not in client.metrics()

    def test_counters_advance_across_requests(self, api_fixy, tcp_workers):
        with AuditClient.connect(tcp_workers[0]) as client:

            def audit_count():
                series = client.metrics()["metrics"][
                    "repro_service_requests_total"
                ]["series"]
                return sum(
                    s["value"]
                    for s in series
                    if s["labels"].get("op") == "audit"
                )

            before = audit_count()
            spec = AuditSpec(kind="tracks", top_k=2)
            client.audit(spec, scenes=[model_scene("mc", n_tracks=2)])
            client.audit(spec, scenes=[model_scene("mc2", n_tracks=2)])
            assert audit_count() == before + 2

    def test_v1_client_rejected_with_typed_code(self, tcp_workers):
        """A v1 connection asking for metrics gets the additive-op
        contract's clean rejection, not a crash or a silent empty."""
        with AuditClient.connect(tcp_workers[0], version=1) as client:
            client.hello()  # the v1 path itself still works
            with pytest.raises(protocol.ProtocolError) as exc:
                client.metrics()
            assert exc.value.code == protocol.UNSUPPORTED_VERSION

    def test_health_carries_metrics_summary(self, api_fixy):
        client = AuditClient.local(fixy=api_fixy)
        client.hello()
        health = client.health()
        summary = health["metrics"]
        assert isinstance(summary, dict)
        # Counter totals only — scalars a dashboard can diff cheaply.
        assert all(isinstance(v, (int, float)) for v in summary.values())
        assert summary.get("repro_service_requests_total", 0) >= 1


class TestMetricsHttp:
    def test_scrape_parses_and_reflects_work(self, api_fixy):
        import urllib.request

        Audit(AuditSpec(kind="tracks", top_k=2), fixy=api_fixy).run(
            scenes=[model_scene("scrape", n_tracks=2)]
        )
        server = serve_metrics(port=0)
        try:
            host, port = server.address
            body = (
                urllib.request.urlopen(f"http://{host}:{port}/metrics")
                .read()
                .decode("utf-8")
            )
        finally:
            server.stop()
        assert "# TYPE repro_compile_scenes_total counter" in body
        # Every sample line is `name[{labels}] value`.
        for line in body.splitlines():
            if not line or line.startswith("#"):
                continue
            _, value = line.rsplit(" ", 1)
            float(value)

    def test_serves_live_registry_not_a_copy(self, api_fixy):
        import urllib.request

        server = serve_metrics(port=0)
        try:
            host, port = server.address
            url = f"http://{host}:{port}/metrics"

            def scrape_total():
                body = urllib.request.urlopen(url).read().decode("utf-8")
                for line in body.splitlines():
                    if line.startswith("repro_compile_scenes_total "):
                        return float(line.rsplit(" ", 1)[1])
                return 0.0

            before = scrape_total()
            Audit(AuditSpec(kind="tracks", top_k=2), fixy=api_fixy).run(
                scenes=[model_scene("live-scrape", n_tracks=2)]
            )
            assert scrape_total() == before + 1
        finally:
            server.stop()
