"""Distributed execution: worker registration (hello/health), scene
partitioning, the remote backend, and mid-audit failure requeue."""

import socket

import pytest

from repro.api import (
    Audit,
    AuditResult,
    AuditSpec,
    FilterSpec,
    SpecValidationError,
    WorkerEndpoint,
    WorkerPool,
    get_backend,
    protocol,
)
from repro.api.pool import partition_scenes
from repro.serving import StreamingService
from repro.serving.tcp import TcpWorker

from tests.serving.conftest import model_scene


def dead_address() -> str:
    """An address nothing listens on (bound, then immediately closed)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return "127.0.0.1:%d" % sock.getsockname()[1]


def signature(items, kind="tracks"):
    return [s.to_dict(kind) for s in items]


class TestRegistration:
    def test_hello_registers_version_fingerprint_capacity(
        self, api_fixy, tcp_workers
    ):
        pool = WorkerPool(tcp_workers)
        infos = pool.connect()
        assert len(infos) == 2
        expected = api_fixy.learned.fingerprint()
        for endpoint, info in zip(pool.endpoints, infos):
            assert endpoint.healthy
            # Registration hellos at the v1 baseline, and the worker
            # mirrors that (so PR-4 coordinators keep accepting it);
            # its real ceiling is the additive max field.
            assert info["protocol_version"] == 1
            assert info["max_protocol_version"] == protocol.PROTOCOL_VERSION
            assert endpoint.protocol_version == protocol.PROTOCOL_VERSION
            assert info["model_fingerprint"] == expected
            assert info["capacity"] == 1
            assert "audit" in info["ops"] and "health" in info["ops"]

    def test_model_mismatch_is_fatal(self, tcp_workers):
        pool = WorkerPool(tcp_workers)
        with pytest.raises(protocol.ProtocolError) as exc:
            pool.connect(expected_fingerprint="0000deadbeef0000")
        assert exc.value.code == "model_mismatch"
        assert exc.value.details["worker"] in tcp_workers

    def test_unreachable_worker_skipped_not_fatal(self, tcp_workers):
        pool = WorkerPool([dead_address(), tcp_workers[0]])
        infos = pool.connect()
        assert len(infos) == 1
        assert [e.address for e in pool.healthy_workers()] == [tcp_workers[0]]
        assert pool.endpoints[0].last_error

    def test_all_unreachable_raises_worker_unavailable(self):
        pool = WorkerPool([dead_address(), dead_address()])
        with pytest.raises(protocol.ProtocolError) as exc:
            pool.connect()
        assert exc.value.code == "worker_unavailable"

    def test_health_probe(self, tcp_workers):
        pool = WorkerPool(tcp_workers)
        pool.connect()
        reports = pool.health()
        for address in tcp_workers:
            report = reports[address]
            assert report["status"] == "ok"
            assert report["uptime_s"] >= 0
            assert report["requests_handled"] >= 1  # at least the hello

    def test_health_marks_dead_worker(self, tcp_workers):
        pool = WorkerPool([tcp_workers[0], dead_address()])
        pool.connect()
        reports = pool.health()
        assert reports[tcp_workers[0]]["status"] == "ok"
        assert reports[pool.endpoints[1].address] is None
        assert not pool.endpoints[1].healthy

    def test_wedged_worker_skipped_by_probe_timeout(self, tcp_workers):
        """A listener that accepts but never answers cannot hang
        registration: the bounded probe deadline skips it."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        wedged = "127.0.0.1:%d" % listener.getsockname()[1]
        try:
            pool = WorkerPool([wedged, tcp_workers[0]], probe_timeout=0.3)
            infos = pool.connect()
            assert len(infos) == 1
            assert [e.address for e in pool.healthy_workers()] == [
                tcp_workers[0]
            ]
            assert "no response" in pool.endpoints[0].last_error
        finally:
            listener.close()

    def test_capacity_weighting_from_hello(self, api_fixy):
        with TcpWorker(api_fixy, capacity=3) as worker:
            pool = WorkerPool([worker.address])
            pool.connect()
            assert pool.endpoints[0].capacity == 3


class TestPartitioning:
    def test_contiguous_cover_in_order(self):
        scenes = list(range(10))
        workers = [WorkerEndpoint("h:1"), WorkerEndpoint("h:2")]
        parts = partition_scenes(scenes, workers)
        assert [chunk for _, chunk in parts] == [scenes[:5], scenes[5:]]

    def test_capacity_weighted(self):
        scenes = list(range(9))
        heavy = WorkerEndpoint("h:1")
        heavy.info = {"capacity": 2}
        parts = partition_scenes(scenes, [heavy, WorkerEndpoint("h:2")])
        assert [len(chunk) for _, chunk in parts] == [6, 3]
        # Still contiguous and in order.
        assert [s for _, chunk in parts for s in chunk] == scenes

    def test_more_workers_than_scenes_drops_empty_chunks(self):
        workers = [WorkerEndpoint(f"h:{i}") for i in range(4)]
        parts = partition_scenes([1], workers)
        assert len(parts) == 1 and parts[0][1] == [1]

    def test_no_workers_raises(self):
        with pytest.raises(protocol.ProtocolError) as exc:
            partition_scenes([1, 2], [])
        assert exc.value.code == "worker_unavailable"


class TestRemoteBackend:
    def test_requires_workers_option(self):
        with pytest.raises(SpecValidationError, match="rejected options"):
            get_backend("remote")

    def test_default_dispatch_timeout_is_finite(self):
        """Silent worker death must eventually trip the deadline and
        requeue — waiting forever is opt-in, not the default."""
        backend = get_backend("remote", workers=["h:1"])
        assert backend.timeout == type(backend).DEFAULT_TIMEOUT
        assert backend.timeout is not None and backend.timeout > 0

    def test_spec_with_backend_remote_round_trips(self, tcp_workers):
        spec = AuditSpec(kind="tracks", top_k=5).with_backend(
            "remote", workers=list(tcp_workers), timeout=30.0
        )
        restored = AuditSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.backend_options["workers"] == list(tcp_workers)

    def test_provenance_worker_attribution(self, api_fixy, tcp_workers):
        spec = AuditSpec(kind="tracks", top_k=10)
        scenes = [model_scene(f"attr-{i}", n_tracks=3) for i in range(4)]
        with Audit(spec, fixy=api_fixy) as audit:
            result = audit.run(
                scenes=scenes, backend="remote", workers=list(tcp_workers)
            )
        reports = result.provenance.workers
        assert reports is not None and len(reports) == 2
        assert {r["worker"] for r in reports} == set(tcp_workers)
        assert sum(r["n_scenes"] for r in reports) == len(scenes)
        assert all(r["rank_s"] >= 0 and r["attempts"] == 1 for r in reports)
        # Attribution survives the JSON round-trip.
        restored = AuditResult.from_json(result.to_json())
        assert restored.provenance.workers == reports
        # Local backends have no worker attribution.
        with Audit(spec, fixy=api_fixy) as audit:
            assert audit.run(scenes=scenes).provenance.workers is None

    def test_remote_matches_inline_with_filter(self, api_fixy, tcp_workers):
        spec = AuditSpec(
            kind="tracks",
            top_k=6,
            filters=FilterSpec(has_model=True, has_human=False),
        )
        scenes = [model_scene(f"filt-{i}", n_tracks=4) for i in range(3)]
        with Audit(spec, fixy=api_fixy) as audit:
            inline = audit.run(scenes=scenes)
            remote = audit.run(
                scenes=scenes, backend="remote", workers=list(tcp_workers)
            )
        assert signature(remote.items) == signature(inline.items)

    def test_model_mismatch_via_audit(self, tcp_workers):
        """A coordinator fitted on different data must refuse the pool."""
        from repro.core import Fixy, default_features
        from tests.core.conftest import moving_track, scene_of

        other = Fixy(default_features()).fit(
            [
                scene_of(
                    [
                        moving_track(
                            f"other-{i}", n_frames=10, speed=1.0,
                            start_x=5.0 * i, jitter=0.05, seed=50 + i,
                        )
                        for i in range(6)
                    ],
                    scene_id="other-train",
                )
            ]
        )
        other.warmup_fast_eval()
        spec = AuditSpec(kind="tracks")
        with Audit(spec, fixy=other) as audit:
            with pytest.raises(protocol.ProtocolError) as exc:
                audit.run(
                    scenes=[model_scene("mm")],
                    backend="remote",
                    workers=list(tcp_workers),
                )
        assert exc.value.code == "model_mismatch"

    def test_no_workers_reachable_via_audit(self, api_fixy):
        spec = AuditSpec(kind="tracks")
        with Audit(spec, fixy=api_fixy) as audit:
            with pytest.raises(protocol.ProtocolError) as exc:
                audit.run(
                    scenes=[model_scene("nw")],
                    backend="remote",
                    workers=[dead_address()],
                )
        assert exc.value.code == "worker_unavailable"


class TestWireNegotiation:
    def test_register_records_wire_and_version(self, tcp_workers):
        pool = WorkerPool(tcp_workers)
        pool.connect()
        for endpoint in pool.endpoints:
            assert endpoint.protocol_version == protocol.PROTOCOL_VERSION
            assert endpoint.supports_frames

    def test_v1_worker_negotiates_down(self, api_fixy, mixed_workers):
        pool = WorkerPool(mixed_workers)
        pool.connect()
        old, new = pool.endpoints
        assert old.protocol_version == 1 and not old.supports_frames
        assert new.protocol_version == 2 and new.supports_frames

    def test_mixed_pool_audit_matches_inline(self, api_fixy, mixed_workers):
        """Acceptance: a v1-only worker (the pre-frames serve) still
        completes an audit against a v2 coordinator via hello
        negotiation — in the same pool as a framed worker — and the
        merged ranking stays byte-identical to inline."""
        spec = AuditSpec(kind="tracks", top_k=10)
        scenes = [model_scene(f"mix-{i}", n_tracks=3) for i in range(4)]
        with Audit(spec, fixy=api_fixy) as audit:
            inline = audit.run(scenes=scenes)
            mixed = audit.run(
                scenes=scenes, backend="remote", workers=list(mixed_workers)
            )
        assert signature(mixed.items) == signature(inline.items)
        wires = {r["worker"]: r["wire"] for r in mixed.provenance.workers}
        assert wires == {mixed_workers[0]: "v1", mixed_workers[1]: "v2"}

    def test_wire_v1_forces_line_json_everywhere(self, api_fixy, tcp_workers):
        spec = AuditSpec(kind="tracks", top_k=5)
        scenes = [model_scene(f"f1-{i}", n_tracks=3) for i in range(2)]
        with Audit(spec, fixy=api_fixy) as audit:
            result = audit.run(
                scenes=scenes,
                backend="remote",
                workers=list(tcp_workers),
                wire="v1",
            )
        assert {r["wire"] for r in result.provenance.workers} == {"v1"}

    def test_wire_v2_rejects_v1_only_worker(self, api_fixy, mixed_workers):
        pool = WorkerPool([mixed_workers[0]], wire="v2")
        with pytest.raises(protocol.ProtocolError) as exc:
            pool.connect()
        assert exc.value.code == "unsupported_version"
        assert "framed wire" in exc.value.message

    def test_bad_wire_option_is_spec_error(self):
        from repro.api import SpecValidationError, get_backend

        with pytest.raises(SpecValidationError, match="rejected options"):
            get_backend("remote", workers=["h:1"], wire="carrier-pigeon")


class TestContentAddressedDispatch:
    def test_warm_audit_ships_ids_only(self, api_fixy, tcp_workers):
        """Acceptance: the second audit of the same scenes ships only
        ids — bytes on the wire collapse and every scene is a worker
        cache hit, recorded in provenance."""
        spec = AuditSpec(kind="tracks", top_k=10)
        scenes = [model_scene(f"warm-{i}", n_tracks=3) for i in range(4)]
        with Audit(spec, fixy=api_fixy) as audit:
            cold = audit.run(
                scenes=scenes, backend="remote", workers=list(tcp_workers)
            )
            warm = audit.run(
                scenes=scenes, backend="remote", workers=list(tcp_workers)
            )
        assert signature(warm.items) == signature(cold.items)
        cold_bytes = sum(r["bytes_sent"] for r in cold.provenance.workers)
        warm_bytes = sum(r["bytes_sent"] for r in warm.provenance.workers)
        assert warm_bytes < cold_bytes / 5
        assert sum(
            r["scene_cache_misses"] for r in cold.provenance.workers
        ) == len(scenes)
        assert sum(
            r["scene_cache_hits"] for r in warm.provenance.workers
        ) == len(scenes)
        assert sum(
            r["scene_cache_misses"] for r in warm.provenance.workers
        ) == 0

    def test_warm_audit_survives_worker_cache_smaller_than_chunk(
        self, api_fixy
    ):
        """Regression: a warm ids-only audit against a worker whose LRU
        is smaller than one chunk must refill and complete (resending
        the whole chunk's bodies), not ping-pong need replies into
        unknown_scene_hash."""
        worker = TcpWorker(api_fixy, scene_cache=4)
        try:
            spec = AuditSpec(kind="tracks", top_k=10)
            scenes = [model_scene(f"lru-{i}", n_tracks=2) for i in range(8)]
            backend = get_backend(
                "remote", workers=[worker.address], chunk_scenes=8
            )
            try:
                cold = backend.run(api_fixy, spec, scenes, None)
                warm = backend.run(api_fixy, spec, scenes, None)
                third = backend.run(api_fixy, spec, scenes, None)
            finally:
                backend.close()
            assert signature(warm) == signature(cold)
            assert signature(third) == signature(cold)
        finally:
            worker.stop()

    def test_requeue_and_second_audit_reuse_encoded_payloads(
        self, api_fixy, tcp_workers, monkeypatch
    ):
        """The coordinator encodes each scene once per pool, ever —
        requeues and repeat audits reuse the cached bytes instead of
        re-running Scene.to_dict + pack."""
        from repro.api import frames as frames_mod
        from repro.api import pool as pool_mod

        packs = []
        real_pack = frames_mod.pack_scene

        def counting_pack(scene):
            packs.append(scene)
            return real_pack(scene)

        monkeypatch.setattr(pool_mod.frames, "pack_scene", counting_pack)
        spec = AuditSpec(kind="tracks", top_k=5)
        scenes = [model_scene(f"pc-{i}", n_tracks=3) for i in range(4)]
        backend = get_backend("remote", workers=list(tcp_workers))
        try:
            first = backend.run(api_fixy, spec, scenes, None)
            assert len(packs) == len(scenes)
            second = backend.run(api_fixy, spec, scenes, None)
            assert len(packs) == len(scenes)  # no re-encode
            assert signature(second) == signature(first)
        finally:
            backend.close()

    def test_chunked_pipelined_dispatch_matches_single_chunk(
        self, api_fixy, tcp_workers
    ):
        """chunk_scenes=1 + pipelining produces the same bytes as one
        request per partition (the merge is chunk-order stable)."""
        spec = AuditSpec(kind="tracks", top_k=6)
        scenes = [model_scene(f"ch-{i}", n_tracks=3) for i in range(5)]
        with Audit(spec, fixy=api_fixy) as audit:
            whole = audit.run(
                scenes=scenes,
                backend="remote",
                workers=list(tcp_workers),
                chunk_scenes=0,
            )
            chunked = audit.run(
                scenes=scenes,
                backend="remote",
                workers=list(tcp_workers),
                chunk_scenes=1,
                pipeline=3,
            )
            inline = audit.run(scenes=scenes)
        assert signature(chunked.items) == signature(whole.items)
        assert signature(chunked.items) == signature(inline.items)
        by_worker = {
            r["worker"]: r["n_chunks"] for r in chunked.provenance.workers
        }
        assert sorted(by_worker.values()) == [2, 3]  # 5 scenes, 2 workers


class TestPersistentConnections:
    def test_stale_cached_connection_retried_not_fatal(
        self, api_fixy, tcp_workers
    ):
        """Regression: a worker restart (or NAT idle-kill) between
        audits leaves the pool a dead cached connection. The next
        audit must retry that worker on a fresh connection — not
        retire it and raise worker_unavailable from a single-worker
        pool."""
        spec = AuditSpec(kind="tracks", top_k=5)
        scenes = [model_scene(f"st-{i}", n_tracks=3) for i in range(3)]
        backend = get_backend("remote", workers=[tcp_workers[0]])
        try:
            cold = backend.run(api_fixy, spec, scenes, None)
            endpoint = backend._pool.endpoints[0]
            # Kill the cached socket out from under the pool — what a
            # worker restart looks like from the coordinator.
            assert endpoint._cached_client is not None
            endpoint._cached_client.close()
            again = backend.run(api_fixy, spec, scenes, None)
            assert signature(again) == signature(cold)
            assert endpoint.healthy  # never retired
            report = backend.provenance_extras()["workers"][0]
            assert report["attempts"] == 2  # stale send + fresh retry
        finally:
            backend.close()


class TestReprobe:
    def test_reprobe_readmits_restarted_worker(self, api_fixy, tcp_workers):
        """Elasticity: a retired endpoint whose worker answers hello
        again (matching fingerprint) rejoins at the next dispatch —
        no pool rebuild."""
        pool = WorkerPool(tcp_workers)
        pool.connect(expected_fingerprint=api_fixy.learned.fingerprint())
        pool.endpoints[0].mark_failed("simulated death")
        assert len(pool.healthy_workers()) == 1
        readmitted = pool.reprobe()
        assert readmitted == [tcp_workers[0]]
        assert len(pool.healthy_workers()) == 2

    def test_reprobe_skips_still_dead_worker(self, tcp_workers):
        pool = WorkerPool([dead_address(), tcp_workers[0]])
        pool.connect()
        assert pool.reprobe() == []
        assert [e.address for e in pool.healthy_workers()] == [tcp_workers[0]]
        assert pool.endpoints[0].last_error

    def test_reprobe_rejects_wrong_model(self, api_fixy, tcp_workers):
        """A worker that comes back serving a different model stays
        retired — re-admission must not break the one-model contract."""
        pool = WorkerPool(tcp_workers)
        pool.connect(expected_fingerprint=api_fixy.learned.fingerprint())
        endpoint = pool.endpoints[0]
        endpoint.mark_failed("simulated death")
        pool._expected_fingerprint = "0000deadbeef0000"  # pool now expects another model
        assert pool.reprobe() == []
        assert not endpoint.healthy
        assert "model" in endpoint.last_error

    def test_audit_reprobes_at_dispatch(self, api_fixy, tcp_workers):
        """An endpoint retired mid-life is healed by the next audit()
        without touching the pool."""
        spec = AuditSpec(kind="tracks", top_k=5)
        scenes = [model_scene(f"rp-{i}", n_tracks=3) for i in range(4)]
        backend = get_backend("remote", workers=list(tcp_workers))
        try:
            backend.run(api_fixy, spec, scenes, None)
            backend._pool.endpoints[0].mark_failed("simulated death")
            backend.run(api_fixy, spec, scenes, None)
            reports = backend.provenance_extras()["workers"]
            assert {r["worker"] for r in reports} == set(tcp_workers)
        finally:
            backend.close()


class TestCapacityElasticity:
    def test_refresh_capacity_folds_health_into_weighting(self, api_fixy):
        """A worker whose advertised capacity grows between audits gets
        a proportionally bigger partition after the next health probe."""
        with TcpWorker(api_fixy) as a, TcpWorker(api_fixy) as b:
            pool = WorkerPool([a.address, b.address], capacity_refresh=0.0)
            pool.connect()
            assert [e.capacity for e in pool.endpoints] == [1, 1]
            a.service.capacity = 3  # worker gains headroom live
            assert pool.refresh_capacity() == [a.address]
            assert [e.capacity for e in pool.endpoints] == [3, 1]
            parts = partition_scenes(list(range(8)), pool.healthy_workers())
            assert [len(chunk) for _, chunk in parts] == [6, 2]

    def test_refresh_capacity_respects_interval(self, api_fixy):
        """Within the refresh window the registration-time capacity is
        trusted — no health probe per audit."""
        with TcpWorker(api_fixy) as worker:
            pool = WorkerPool([worker.address], capacity_refresh=3600.0)
            pool.connect()
            worker.service.capacity = 5
            assert pool.refresh_capacity() == []  # checked at register
            assert pool.endpoints[0].capacity == 1

    def test_audit_rebalances_when_capacity_changes(self, api_fixy):
        """Acceptance: the remote backend re-weights partitions across
        audits as a worker's advertised capacity changes."""
        with TcpWorker(api_fixy) as a, TcpWorker(api_fixy) as b:
            spec = AuditSpec(kind="tracks", top_k=10)
            scenes = [model_scene(f"cap-{i}", n_tracks=2) for i in range(8)]
            backend = get_backend(
                "remote",
                workers=[a.address, b.address],
                capacity_refresh=0.0,
            )
            try:
                first = backend.run(api_fixy, spec, scenes, None)
                split = {
                    r["worker"]: r["n_scenes"]
                    for r in backend.provenance_extras()["workers"]
                }
                assert split == {a.address: 4, b.address: 4}
                b.service.capacity = 3
                second = backend.run(api_fixy, spec, scenes, None)
                split = {
                    r["worker"]: r["n_scenes"]
                    for r in backend.provenance_extras()["workers"]
                }
                assert split == {a.address: 2, b.address: 6}
                assert signature(second) == signature(first)
            finally:
                backend.close()


class _DyingService(StreamingService):
    """Accepts hello/health but drops the connection on the first
    ``audit`` — a worker that dies mid-audit, as the client sees it."""

    def __init__(self, fixy, **kw):
        super().__init__(fixy, **kw)
        self.audits_seen = 0

    def handle(self, request):
        if request.get("op") == "audit":
            self.audits_seen += 1
            # SystemExit skips every except-Exception layer (service,
            # socketserver) and threads swallow it silently: the
            # connection just drops, exactly like a killed process.
            raise SystemExit("simulated worker death")
        return super().handle(request)


@pytest.mark.filterwarnings(
    # The simulated death intentionally kills handler threads.
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestRequeue:
    def test_partition_requeued_off_dead_worker(self, api_fixy):
        """Acceptance: an audit over 2 workers survives one dying
        mid-audit; the partition is requeued and the merged ranking is
        byte-identical to inline."""
        dying = _DyingService(api_fixy)
        with TcpWorker(service=dying) as bad, TcpWorker(api_fixy) as good:
            spec = AuditSpec(kind="tracks", top_k=8)
            scenes = [model_scene(f"rq-{i}", n_tracks=3) for i in range(4)]
            with Audit(spec, fixy=api_fixy) as audit:
                inline = audit.run(scenes=scenes)
                remote = audit.run(
                    scenes=scenes,
                    backend="remote",
                    workers=[bad.address, good.address],
                )
            assert dying.audits_seen == 1  # the doomed dispatch happened
            assert signature(remote.items) == signature(inline.items)
            reports = remote.provenance.workers
            assert {r["worker"] for r in reports} == {good.address}
            assert sum(r["n_scenes"] for r in reports) == len(scenes)
            # The requeued partition records its extra attempt.
            assert sorted(r["attempts"] for r in reports) == [1, 2]

    def test_all_workers_dead_mid_audit_raises(self, api_fixy):
        with TcpWorker(service=_DyingService(api_fixy)) as only:
            spec = AuditSpec(kind="tracks")
            with Audit(spec, fixy=api_fixy) as audit:
                with pytest.raises(protocol.ProtocolError) as exc:
                    audit.run(
                        scenes=[model_scene("dead")],
                        backend="remote",
                        workers=[only.address],
                    )
            assert exc.value.code == "worker_unavailable"
            assert "partition" in exc.value.message