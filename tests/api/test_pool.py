"""Distributed execution: worker registration (hello/health), scene
partitioning, the remote backend, and mid-audit failure requeue."""

import socket

import pytest

from repro.api import (
    Audit,
    AuditResult,
    AuditSpec,
    FilterSpec,
    SpecValidationError,
    WorkerEndpoint,
    WorkerPool,
    get_backend,
    protocol,
)
from repro.api.pool import partition_scenes
from repro.serving import StreamingService
from repro.serving.tcp import TcpWorker

from tests.serving.conftest import model_scene


def dead_address() -> str:
    """An address nothing listens on (bound, then immediately closed)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return "127.0.0.1:%d" % sock.getsockname()[1]


def signature(items, kind="tracks"):
    return [s.to_dict(kind) for s in items]


class TestRegistration:
    def test_hello_registers_version_fingerprint_capacity(
        self, api_fixy, tcp_workers
    ):
        pool = WorkerPool(tcp_workers)
        infos = pool.connect()
        assert len(infos) == 2
        expected = api_fixy.learned.fingerprint()
        for endpoint, info in zip(pool.endpoints, infos):
            assert endpoint.healthy
            assert info["protocol_version"] == protocol.PROTOCOL_VERSION
            assert info["model_fingerprint"] == expected
            assert info["capacity"] == 1
            assert "audit" in info["ops"] and "health" in info["ops"]

    def test_model_mismatch_is_fatal(self, tcp_workers):
        pool = WorkerPool(tcp_workers)
        with pytest.raises(protocol.ProtocolError) as exc:
            pool.connect(expected_fingerprint="0000deadbeef0000")
        assert exc.value.code == "model_mismatch"
        assert exc.value.details["worker"] in tcp_workers

    def test_unreachable_worker_skipped_not_fatal(self, tcp_workers):
        pool = WorkerPool([dead_address(), tcp_workers[0]])
        infos = pool.connect()
        assert len(infos) == 1
        assert [e.address for e in pool.healthy_workers()] == [tcp_workers[0]]
        assert pool.endpoints[0].last_error

    def test_all_unreachable_raises_worker_unavailable(self):
        pool = WorkerPool([dead_address(), dead_address()])
        with pytest.raises(protocol.ProtocolError) as exc:
            pool.connect()
        assert exc.value.code == "worker_unavailable"

    def test_health_probe(self, tcp_workers):
        pool = WorkerPool(tcp_workers)
        pool.connect()
        reports = pool.health()
        for address in tcp_workers:
            report = reports[address]
            assert report["status"] == "ok"
            assert report["uptime_s"] >= 0
            assert report["requests_handled"] >= 1  # at least the hello

    def test_health_marks_dead_worker(self, tcp_workers):
        pool = WorkerPool([tcp_workers[0], dead_address()])
        pool.connect()
        reports = pool.health()
        assert reports[tcp_workers[0]]["status"] == "ok"
        assert reports[pool.endpoints[1].address] is None
        assert not pool.endpoints[1].healthy

    def test_wedged_worker_skipped_by_probe_timeout(self, tcp_workers):
        """A listener that accepts but never answers cannot hang
        registration: the bounded probe deadline skips it."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        wedged = "127.0.0.1:%d" % listener.getsockname()[1]
        try:
            pool = WorkerPool([wedged, tcp_workers[0]], probe_timeout=0.3)
            infos = pool.connect()
            assert len(infos) == 1
            assert [e.address for e in pool.healthy_workers()] == [
                tcp_workers[0]
            ]
            assert "no response" in pool.endpoints[0].last_error
        finally:
            listener.close()

    def test_capacity_weighting_from_hello(self, api_fixy):
        with TcpWorker(api_fixy, capacity=3) as worker:
            pool = WorkerPool([worker.address])
            pool.connect()
            assert pool.endpoints[0].capacity == 3


class TestPartitioning:
    def test_contiguous_cover_in_order(self):
        scenes = list(range(10))
        workers = [WorkerEndpoint("h:1"), WorkerEndpoint("h:2")]
        parts = partition_scenes(scenes, workers)
        assert [chunk for _, chunk in parts] == [scenes[:5], scenes[5:]]

    def test_capacity_weighted(self):
        scenes = list(range(9))
        heavy = WorkerEndpoint("h:1")
        heavy.info = {"capacity": 2}
        parts = partition_scenes(scenes, [heavy, WorkerEndpoint("h:2")])
        assert [len(chunk) for _, chunk in parts] == [6, 3]
        # Still contiguous and in order.
        assert [s for _, chunk in parts for s in chunk] == scenes

    def test_more_workers_than_scenes_drops_empty_chunks(self):
        workers = [WorkerEndpoint(f"h:{i}") for i in range(4)]
        parts = partition_scenes([1], workers)
        assert len(parts) == 1 and parts[0][1] == [1]

    def test_no_workers_raises(self):
        with pytest.raises(protocol.ProtocolError) as exc:
            partition_scenes([1, 2], [])
        assert exc.value.code == "worker_unavailable"


class TestRemoteBackend:
    def test_requires_workers_option(self):
        with pytest.raises(SpecValidationError, match="rejected options"):
            get_backend("remote")

    def test_default_dispatch_timeout_is_finite(self):
        """Silent worker death must eventually trip the deadline and
        requeue — waiting forever is opt-in, not the default."""
        backend = get_backend("remote", workers=["h:1"])
        assert backend.timeout == type(backend).DEFAULT_TIMEOUT
        assert backend.timeout is not None and backend.timeout > 0

    def test_spec_with_backend_remote_round_trips(self, tcp_workers):
        spec = AuditSpec(kind="tracks", top_k=5).with_backend(
            "remote", workers=list(tcp_workers), timeout=30.0
        )
        restored = AuditSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.backend_options["workers"] == list(tcp_workers)

    def test_provenance_worker_attribution(self, api_fixy, tcp_workers):
        spec = AuditSpec(kind="tracks", top_k=10)
        scenes = [model_scene(f"attr-{i}", n_tracks=3) for i in range(4)]
        with Audit(spec, fixy=api_fixy) as audit:
            result = audit.run(
                scenes=scenes, backend="remote", workers=list(tcp_workers)
            )
        reports = result.provenance.workers
        assert reports is not None and len(reports) == 2
        assert {r["worker"] for r in reports} == set(tcp_workers)
        assert sum(r["n_scenes"] for r in reports) == len(scenes)
        assert all(r["rank_s"] >= 0 and r["attempts"] == 1 for r in reports)
        # Attribution survives the JSON round-trip.
        restored = AuditResult.from_json(result.to_json())
        assert restored.provenance.workers == reports
        # Local backends have no worker attribution.
        with Audit(spec, fixy=api_fixy) as audit:
            assert audit.run(scenes=scenes).provenance.workers is None

    def test_remote_matches_inline_with_filter(self, api_fixy, tcp_workers):
        spec = AuditSpec(
            kind="tracks",
            top_k=6,
            filters=FilterSpec(has_model=True, has_human=False),
        )
        scenes = [model_scene(f"filt-{i}", n_tracks=4) for i in range(3)]
        with Audit(spec, fixy=api_fixy) as audit:
            inline = audit.run(scenes=scenes)
            remote = audit.run(
                scenes=scenes, backend="remote", workers=list(tcp_workers)
            )
        assert signature(remote.items) == signature(inline.items)

    def test_model_mismatch_via_audit(self, tcp_workers):
        """A coordinator fitted on different data must refuse the pool."""
        from repro.core import Fixy, default_features
        from tests.core.conftest import moving_track, scene_of

        other = Fixy(default_features()).fit(
            [
                scene_of(
                    [
                        moving_track(
                            f"other-{i}", n_frames=10, speed=1.0,
                            start_x=5.0 * i, jitter=0.05, seed=50 + i,
                        )
                        for i in range(6)
                    ],
                    scene_id="other-train",
                )
            ]
        )
        other.warmup_fast_eval()
        spec = AuditSpec(kind="tracks")
        with Audit(spec, fixy=other) as audit:
            with pytest.raises(protocol.ProtocolError) as exc:
                audit.run(
                    scenes=[model_scene("mm")],
                    backend="remote",
                    workers=list(tcp_workers),
                )
        assert exc.value.code == "model_mismatch"

    def test_no_workers_reachable_via_audit(self, api_fixy):
        spec = AuditSpec(kind="tracks")
        with Audit(spec, fixy=api_fixy) as audit:
            with pytest.raises(protocol.ProtocolError) as exc:
                audit.run(
                    scenes=[model_scene("nw")],
                    backend="remote",
                    workers=[dead_address()],
                )
        assert exc.value.code == "worker_unavailable"


class _DyingService(StreamingService):
    """Accepts hello/health but drops the connection on the first
    ``audit`` — a worker that dies mid-audit, as the client sees it."""

    def __init__(self, fixy, **kw):
        super().__init__(fixy, **kw)
        self.audits_seen = 0

    def handle(self, request):
        if request.get("op") == "audit":
            self.audits_seen += 1
            # SystemExit skips every except-Exception layer (service,
            # socketserver) and threads swallow it silently: the
            # connection just drops, exactly like a killed process.
            raise SystemExit("simulated worker death")
        return super().handle(request)


@pytest.mark.filterwarnings(
    # The simulated death intentionally kills handler threads.
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestRequeue:
    def test_partition_requeued_off_dead_worker(self, api_fixy):
        """Acceptance: an audit over 2 workers survives one dying
        mid-audit; the partition is requeued and the merged ranking is
        byte-identical to inline."""
        dying = _DyingService(api_fixy)
        with TcpWorker(service=dying) as bad, TcpWorker(api_fixy) as good:
            spec = AuditSpec(kind="tracks", top_k=8)
            scenes = [model_scene(f"rq-{i}", n_tracks=3) for i in range(4)]
            with Audit(spec, fixy=api_fixy) as audit:
                inline = audit.run(scenes=scenes)
                remote = audit.run(
                    scenes=scenes,
                    backend="remote",
                    workers=[bad.address, good.address],
                )
            assert dying.audits_seen == 1  # the doomed dispatch happened
            assert signature(remote.items) == signature(inline.items)
            reports = remote.provenance.workers
            assert {r["worker"] for r in reports} == {good.address}
            assert sum(r["n_scenes"] for r in reports) == len(scenes)
            # The requeued partition records its extra attempt.
            assert sorted(r["attempts"] for r in reports) == [1, 2]

    def test_all_workers_dead_mid_audit_raises(self, api_fixy):
        with TcpWorker(service=_DyingService(api_fixy)) as only:
            spec = AuditSpec(kind="tracks")
            with Audit(spec, fixy=api_fixy) as audit:
                with pytest.raises(protocol.ProtocolError) as exc:
                    audit.run(
                        scenes=[model_scene("dead")],
                        backend="remote",
                        workers=[only.address],
                    )
            assert exc.value.code == "worker_unavailable"
            assert "partition" in exc.value.message