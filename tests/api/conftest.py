"""Fixtures for the unified audit API tests: a fitted, warmed engine."""

import pytest

from repro.core import Fixy, default_features

from tests.serving.conftest import build_training_scenes


@pytest.fixture(scope="session")
def api_fixy():
    """A fitted engine with warmed density grids (deterministic across
    backends — the same precondition Audit establishes at bind time)."""
    fixy = Fixy(default_features()).fit(build_training_scenes())
    fixy.warmup_fast_eval()
    return fixy
