"""Fixtures for the unified audit API tests: a fitted, warmed engine
and a pool of live TCP protocol workers built on it."""

import pytest

from repro.core import Fixy, default_features
from repro.serving.tcp import TcpWorker

from tests.serving.conftest import build_training_scenes


@pytest.fixture(scope="session")
def api_fixy():
    """A fitted engine with warmed density grids (deterministic across
    backends — the same precondition Audit establishes at bind time)."""
    fixy = Fixy(default_features()).fit(build_training_scenes())
    fixy.warmup_fast_eval()
    return fixy


@pytest.fixture(scope="session")
def tcp_workers(api_fixy):
    """Two live TCP workers serving the shared engine (the remote
    backend's worker pool), yielded as their ``host:port`` addresses."""
    workers = [TcpWorker(api_fixy) for _ in range(2)]
    yield [w.address for w in workers]
    for worker in workers:
        worker.stop()


@pytest.fixture(scope="session")
def mixed_workers(api_fixy):
    """A mixed-version pool: one v1-only worker (a pre-frames build,
    line-JSON only) and one current v2 worker, same engine — the
    rolling-upgrade scenario the wire negotiation must survive."""
    old = TcpWorker(api_fixy, protocol_version=1)
    new = TcpWorker(api_fixy)
    yield [old.address, new.address]
    old.stop()
    new.stop()
