"""AuditSpec / FilterSpec / SceneSource: validation and JSON round-trips."""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AuditSpec, FilterSpec, SceneSource, SpecValidationError
from repro.core.scoring import UnknownRankKindError

from tests.core.conftest import make_obs, make_track, moving_track


class TestFilterSpec:
    def test_empty_compiles_to_none(self):
        assert FilterSpec().compile("tracks") is None

    def test_track_filter_semantics(self):
        model_track = moving_track("m", n_frames=5, source="model")
        human_track = moving_track("h", n_frames=5, source="human")
        filt = FilterSpec(has_model=True, has_human=False).compile("tracks")
        assert filt(model_track) is True
        assert filt(human_track) is False

    def test_min_observations_and_classes(self):
        short = moving_track("s", n_frames=2, cls="car")
        long = moving_track("l", n_frames=9, cls="truck")
        filt = FilterSpec(min_observations=5).compile("tracks")
        assert not filt(short) and filt(long)
        filt = FilterSpec(classes=("truck",)).compile("tracks")
        assert not filt(short) and filt(long)

    def test_bundle_filter_sees_enclosing_track(self):
        # A model-only bundle inside a track that also has human labels
        # (the §8.3 missing-observation shape).
        track = make_track(
            "t",
            {
                0: [make_obs(0, 0.0, source="human")],
                1: [make_obs(1, 1.0, source="model")],
            },
        )
        filt = FilterSpec(
            has_model=True, has_human=False, track_has_human=True
        ).compile("bundles")
        human_bundle, model_bundle = track.bundles
        assert filt(model_bundle, track) is True
        assert filt(human_bundle, track) is False

    def test_observation_filter(self):
        filt = FilterSpec(has_model=True, classes=("car",)).compile(
            "observations"
        )
        assert filt(make_obs(0, 0.0, source="model")) is True
        assert filt(make_obs(0, 0.0, source="human")) is False
        assert filt(make_obs(0, 0.0, source="model", cls="truck")) is False

    def test_rejects_track_fields_for_observations(self):
        with pytest.raises(SpecValidationError, match="track_has_model"):
            FilterSpec(track_has_model=True).validate("observations")

    def test_rejects_min_observations_for_observations(self):
        with pytest.raises(SpecValidationError, match="min_observations"):
            FilterSpec(min_observations=2).validate("observations")

    def test_rejects_bad_values(self):
        with pytest.raises(SpecValidationError, match="must be a bool"):
            FilterSpec(has_model="yes").validate("tracks")
        with pytest.raises(SpecValidationError, match="positive"):
            FilterSpec(min_observations=0).validate("tracks")
        with pytest.raises(SpecValidationError, match="classes"):
            FilterSpec(classes=()).validate("tracks")

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecValidationError, match="unknown filter fields"):
            FilterSpec.from_dict({"has_model": True, "speed": 3})

    def test_compiled_filter_pickles(self):
        filt = FilterSpec(has_model=True).compile("tracks")
        clone = pickle.loads(pickle.dumps(filt))
        track = moving_track("m", n_frames=3, source="model")
        assert clone(track) == filt(track) is True


class TestSceneSource:
    def test_requires_exactly_one_source(self):
        with pytest.raises(SpecValidationError, match="exactly one"):
            SceneSource().validate()
        with pytest.raises(SpecValidationError, match="exactly one"):
            SceneSource(profile="internal", paths=("x.json",)).validate()

    def test_unknown_profile(self):
        with pytest.raises(SpecValidationError, match="unknown dataset profile"):
            SceneSource(profile="waymo").validate()

    def test_bad_split_and_indices(self):
        with pytest.raises(SpecValidationError, match="split"):
            SceneSource(profile="internal", split="test").validate()
        with pytest.raises(SpecValidationError, match="indices"):
            SceneSource(profile="internal", indices=(-1,)).validate()

    def test_resolves_paths(self, tmp_path):
        scene = moving_track("t", n_frames=3)
        from tests.core.conftest import scene_of

        path = tmp_path / "s.labels.json"
        scene_of([scene], scene_id="saved").save(path)
        source = SceneSource(paths=(str(path),))
        resolved = source.resolve()
        assert [s.scene_id for s in resolved] == ["saved"]

    def test_paths_source_has_no_training_split(self):
        source = SceneSource(paths=("x.json",))
        with pytest.raises(SpecValidationError, match="training split"):
            source.resolve_training_scenes()

    def test_indices_apply_to_paths_too(self, tmp_path):
        from tests.core.conftest import scene_of

        paths = []
        for i in range(3):
            path = tmp_path / f"s{i}.labels.json"
            scene_of(
                [moving_track(f"p{i}", n_frames=3)], scene_id=f"p{i}"
            ).save(path)
            paths.append(str(path))
        resolved = SceneSource(paths=tuple(paths), indices=(2, 0)).resolve()
        assert [s.scene_id for s in resolved] == ["p2", "p0"]
        with pytest.raises(SpecValidationError, match="out of range"):
            SceneSource(paths=tuple(paths), indices=(5,)).resolve()

    def test_profile_sizing_rejected_with_paths(self):
        with pytest.raises(SpecValidationError, match="n_train"):
            SceneSource(paths=("x.json",), n_train=2).validate()

    def test_resolves_profile_split_and_indices(self):
        source = SceneSource(
            profile="internal", n_train=1, n_val=2, indices=(1,)
        )
        resolved = source.resolve()
        assert len(resolved) == 1
        assert source.resolve_training_scenes()  # non-empty train split
        with pytest.raises(SpecValidationError, match="out of range"):
            SceneSource(
                profile="internal", n_train=1, n_val=2, indices=(9,)
            ).resolve()


class TestAuditSpec:
    def test_kind_canonicalized(self):
        assert AuditSpec(kind="track").kind == "tracks"

    def test_bad_kind_is_typed(self):
        with pytest.raises(UnknownRankKindError, match="unknown rank kind"):
            AuditSpec(kind="galaxies")

    def test_validate_catches_everything(self):
        with pytest.raises(SpecValidationError, match="top_k"):
            AuditSpec(top_k=0).validate()
        with pytest.raises(SpecValidationError, match="feature set"):
            AuditSpec(features="everything").validate()
        with pytest.raises(SpecValidationError, match="spec version"):
            AuditSpec(version=99).validate()
        from repro.api import UnknownBackendError

        with pytest.raises(UnknownBackendError, match="unknown backend"):
            AuditSpec(backend="quantum").validate()

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(SpecValidationError, match="unknown spec fields"):
            AuditSpec.from_dict({"kind": "tracks", "speed": 11})

    def test_from_json_rejects_garbage(self):
        with pytest.raises(SpecValidationError, match="not valid JSON"):
            AuditSpec.from_json("{nope")
        with pytest.raises(SpecValidationError, match="must be an object"):
            AuditSpec.from_json("[1, 2]")

    def test_with_backend_copy(self):
        spec = AuditSpec(top_k=3)
        sharded = spec.with_backend("sharded", n_workers=4)
        assert sharded.backend == "sharded"
        assert sharded.backend_options == {"n_workers": 4}
        assert spec.backend == "inline"  # original untouched
        assert sharded.top_k == 3

    def test_hash_is_stable_and_sensitive(self):
        a = AuditSpec(kind="tracks", top_k=5)
        b = AuditSpec(kind="track", top_k=5)  # canonicalizes to the same
        c = AuditSpec(kind="tracks", top_k=6)
        assert a.spec_hash() == b.spec_hash()
        assert a.spec_hash() != c.spec_hash()

    # Property: every representable spec survives the JSON wire intact.
    @settings(max_examples=50, deadline=None)
    @given(
        kind=st.sampled_from(["tracks", "bundles", "observations"]),
        top_k=st.one_of(st.none(), st.integers(min_value=1, max_value=100)),
        has_model=st.one_of(st.none(), st.booleans()),
        has_human=st.one_of(st.none(), st.booleans()),
        min_obs=st.one_of(st.none(), st.integers(min_value=1, max_value=20)),
        classes=st.one_of(
            st.none(),
            st.lists(
                st.sampled_from(["car", "truck", "pedestrian"]),
                min_size=1,
                max_size=3,
                unique=True,
            ),
        ),
        features=st.sampled_from(["default", "model_error"]),
        backend=st.sampled_from(["inline", "threaded", "sharded", "session"]),
    )
    def test_spec_json_round_trip_property(
        self, kind, top_k, has_model, has_human, min_obs, classes, features, backend
    ):
        if kind == "observations":
            min_obs = None
        filters = FilterSpec(
            has_model=has_model,
            has_human=has_human,
            min_observations=min_obs,
            classes=tuple(classes) if classes else None,
        )
        spec = AuditSpec(
            kind=kind,
            top_k=top_k,
            filters=None if filters.is_empty else filters,
            features=features,
            backend=backend,
        ).validate()
        wire = spec.to_json()
        clone = AuditSpec.from_json(wire)
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()
        # The wire form is plain JSON — no objects leak through.
        assert json.loads(wire) == spec.to_dict()
