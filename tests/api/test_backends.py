"""Backend equivalence: one spec, every backend, byte-identical rankings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Audit,
    AuditSpec,
    ExecutionBackend,
    FilterSpec,
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
)
from repro.api.backends import _BACKENDS

from tests.core.conftest import make_obs, make_track, scene_of

ALL_BACKENDS = ("inline", "threaded", "sharded", "session", "remote")


def backend_options(backend: str, workers) -> dict:
    """Per-run options: the remote backend needs the live worker pool."""
    return {"workers": list(workers)} if backend == "remote" else {}


def random_scenes(seed: int, n_scenes: int):
    """Randomized scenes: mixed sources, classes, track sizes."""
    rng = np.random.default_rng(seed)
    scenes = []
    for s in range(n_scenes):
        tracks = []
        for t in range(int(rng.integers(2, 6))):
            n_frames = int(rng.integers(3, 10))
            source = "model" if rng.random() < 0.7 else "human"
            cls = "car" if rng.random() < 0.7 else "truck"
            speed = float(rng.uniform(1.0, 3.0))
            start_x = float(rng.uniform(-20.0, 20.0))
            frames = {}
            for f in range(n_frames):
                length = float(4.5 * np.exp(rng.normal(0.0, 0.05)))
                frames[f] = [
                    make_obs(
                        f,
                        start_x + speed * 0.2 * f,
                        y=float(3.0 * t),
                        source=source,
                        cls=cls,
                        l=length,
                        conf=0.8 if source == "model" else None,
                    )
                ]
            tracks.append(make_track(f"seed{seed}-s{s}-t{t}", frames))
        scenes.append(scene_of(tracks, scene_id=f"rand-{seed}-{s}"))
    return scenes


def signature(result):
    """The byte-exact comparable form of a ranking (scores compared as
    floats with ==, i.e. bit-for-bit)."""
    return [item.to_dict(result.spec.kind) for item in result.items]


class TestBackendEquivalence:
    @pytest.mark.parametrize("kind", ["tracks", "bundles", "observations"])
    def test_all_backends_identical_per_kind(self, api_fixy, tcp_workers, kind):
        spec = AuditSpec(kind=kind, top_k=20)
        scenes = random_scenes(seed=7, n_scenes=2)
        reference = None
        with Audit(spec, fixy=api_fixy) as audit:
            for backend in ALL_BACKENDS:
                result = audit.run(
                    scenes=scenes,
                    backend=backend,
                    **backend_options(backend, tcp_workers),
                )
                assert result.provenance.backend == backend
                if reference is None:
                    reference = signature(result)
                    assert reference, "audit returned nothing to compare"
                else:
                    assert signature(result) == reference, backend

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_scenes=st.integers(min_value=1, max_value=3),
        kind=st.sampled_from(["tracks", "bundles", "observations"]),
        top_k=st.one_of(st.none(), st.integers(min_value=1, max_value=15)),
        filtered=st.booleans(),
    )
    def test_equivalence_property(
        self, api_fixy, tcp_workers, seed, n_scenes, kind, top_k, filtered
    ):
        """inline/threaded/sharded/session/remote return byte-identical
        rankings for the same AuditSpec on randomized scenes (remote
        runs over 2 real TCP workers)."""
        spec = AuditSpec(
            kind=kind,
            top_k=top_k,
            filters=(
                FilterSpec(has_model=True, has_human=False) if filtered else None
            ),
        )
        scenes = random_scenes(seed=seed, n_scenes=n_scenes)
        with Audit(spec, fixy=api_fixy) as audit:
            results = {
                backend: audit.run(
                    scenes=scenes,
                    backend=backend,
                    **backend_options(backend, tcp_workers),
                )
                for backend in ALL_BACKENDS
            }
        reference = signature(results["inline"])
        for backend in ALL_BACKENDS[1:]:
            assert signature(results[backend]) == reference, backend
        if top_k is not None:
            assert len(reference) <= top_k

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_scenes=st.integers(min_value=1, max_value=3),
        kind=st.sampled_from(["tracks", "bundles", "observations"]),
        top_k=st.one_of(st.none(), st.integers(min_value=1, max_value=15)),
        chunk_scenes=st.sampled_from([0, 1, 2]),
    )
    def test_wire_format_equivalence_property(
        self,
        api_fixy,
        tcp_workers,
        mixed_workers,
        seed,
        n_scenes,
        kind,
        top_k,
        chunk_scenes,
    ):
        """The v2 framed wire (content-addressed, chunk-pipelined), the
        v1 line-JSON wire, and a mixed v1+v2 pool all return rankings
        byte-identical to inline for the same AuditSpec on randomized
        scenes — wire format is a transport choice, not a results
        choice."""
        spec = AuditSpec(kind=kind, top_k=top_k)
        scenes = random_scenes(seed=seed, n_scenes=n_scenes)
        with Audit(spec, fixy=api_fixy) as audit:
            reference = signature(audit.run(scenes=scenes))
            variants = {
                "v2": audit.run(
                    scenes=scenes,
                    backend="remote",
                    workers=list(tcp_workers),
                    wire="v2",
                    chunk_scenes=chunk_scenes,
                ),
                "v2-warm": audit.run(
                    scenes=scenes,
                    backend="remote",
                    workers=list(tcp_workers),
                    wire="v2",
                    chunk_scenes=chunk_scenes,
                ),
                "v1": audit.run(
                    scenes=scenes,
                    backend="remote",
                    workers=list(tcp_workers),
                    wire="v1",
                    chunk_scenes=chunk_scenes,
                ),
                "mixed": audit.run(
                    scenes=scenes,
                    backend="remote",
                    workers=list(mixed_workers),
                    chunk_scenes=chunk_scenes,
                ),
            }
        for label, result in variants.items():
            assert signature(result) == reference, label
        # The warm framed run resolved every scene from the worker
        # cache (the ids-only fast path really ran).
        warm = variants["v2-warm"].provenance.workers
        assert sum(r["scene_cache_misses"] for r in warm) == 0
        assert sum(r["scene_cache_hits"] for r in warm) == len(scenes)

    def test_spec_hash_constant_across_backends(self, api_fixy, tcp_workers):
        spec = AuditSpec(kind="tracks", top_k=5)
        scenes = random_scenes(seed=3, n_scenes=1)
        with Audit(spec, fixy=api_fixy) as audit:
            hashes = {
                audit.run(
                    scenes=scenes,
                    backend=b,
                    **backend_options(b, tcp_workers),
                ).provenance.spec_hash
                for b in ALL_BACKENDS
            }
        assert hashes == {spec.spec_hash()}

    def test_executor_reused_across_runs_and_released_on_close(self, api_fixy):
        spec = AuditSpec(
            kind="tracks", backend="sharded", backend_options={"n_workers": 1}
        )
        scenes = random_scenes(seed=9, n_scenes=1)
        audit = Audit(spec, fixy=api_fixy)
        first = audit.run(scenes=scenes)
        executor = audit._executors[("sharded", (("n_workers", 1),))]
        assert executor._ranker is not None  # pool is live between runs
        second = audit.run(scenes=scenes)
        assert audit._executors[("sharded", (("n_workers", 1),))] is executor
        assert signature(first) == signature(second)
        audit.close()
        assert audit._executors == {}
        assert executor._ranker is None  # pool shut down
        # close() is idempotent and the audit still runs afterwards.
        audit.close()
        assert signature(audit.run(scenes=scenes)) == signature(first)
        audit.close()

    def test_bad_backend_options_raise_spec_error(self, api_fixy):
        from repro.api import SpecValidationError

        with pytest.raises(SpecValidationError, match="rejected options"):
            get_backend("inline", n_workers=2)


class TestRegistry:
    def test_five_builtin_backends(self):
        assert set(ALL_BACKENDS) <= set(available_backends())

    def test_unknown_backend_is_typed_and_lists_valid(self):
        with pytest.raises(UnknownBackendError, match="unknown backend") as exc:
            get_backend("quantum")
        assert set(ALL_BACKENDS) <= set(exc.value.valid)

    def test_register_backend_extends_registry(self, api_fixy):
        @register_backend("loopback")
        class LoopbackBackend(ExecutionBackend):
            def run(self, fixy, spec, scenes, filt):
                return get_backend("inline").run(fixy, spec, scenes, filt)

        try:
            assert "loopback" in available_backends()
            spec = AuditSpec(kind="tracks", top_k=3, backend="loopback")
            scenes = random_scenes(seed=1, n_scenes=1)
            result = Audit(spec, fixy=api_fixy).run(scenes=scenes)
            assert result.provenance.backend == "loopback"
            assert signature(result) == signature(
                Audit(spec, fixy=api_fixy).run(scenes=scenes, backend="inline")
            )
        finally:
            _BACKENDS.pop("loopback", None)

    def test_backend_is_context_manager(self, api_fixy):
        spec = AuditSpec(kind="tracks")
        scenes = random_scenes(seed=2, n_scenes=1)
        with get_backend("sharded", n_workers=1) as backend:
            ranked = backend.run(api_fixy, spec, scenes, None)
        inline = get_backend("inline").run(api_fixy, spec, scenes, None)
        assert [s.to_dict("tracks") for s in ranked] == [
            s.to_dict("tracks") for s in inline
        ]

    def test_threaded_n_jobs_option(self, api_fixy):
        spec = AuditSpec(
            kind="tracks", backend="threaded", backend_options={"n_jobs": 2}
        )
        audit = Audit(spec, fixy=api_fixy)
        scenes = random_scenes(seed=5, n_scenes=3)
        threaded = audit.run(scenes=scenes)  # spec's backend + options
        assert threaded.provenance.backend_options == {"n_jobs": 2}
        # Overriding the backend drops the spec's options (they belong
        # to the spec's declared backend).
        inline = audit.run(scenes=scenes, backend="inline")
        assert inline.provenance.backend_options == {}
        assert signature(threaded) == signature(inline)
