"""Tests for frame bundlers."""

import pytest

from repro.association import CenterDistanceBundler, IoUBundler, TrackBundler
from repro.core.model import SOURCE_HUMAN, SOURCE_MODEL, Observation
from repro.geometry import Box3D


def obs(x=0.0, y=0.0, frame=0, source=SOURCE_MODEL, cls="car"):
    return Observation(
        frame=frame,
        box=Box3D(x=x, y=y, z=0.85, length=4.5, width=1.9, height=1.7),
        object_class=cls,
        source=source,
        confidence=0.9 if source == SOURCE_MODEL else None,
    )


class TestIsAssociated:
    def test_track_bundler_threshold(self):
        bundler = TrackBundler()
        a = Box3D(x=0, y=0, z=0.85, length=4.5, width=1.9, height=1.7)
        assert bundler.is_associated(a, a)
        far = a.translated(3.0, 0.0)
        assert not bundler.is_associated(a, far)

    def test_iou_bundler_validation(self):
        with pytest.raises(ValueError):
            IoUBundler(threshold=1.0)
        with pytest.raises(ValueError):
            IoUBundler(matcher="magic")

    def test_center_distance_bundler(self):
        bundler = CenterDistanceBundler(max_distance=2.0)
        a = Box3D(x=0, y=0, z=0.85, length=4.5, width=1.9, height=1.7)
        assert bundler.is_associated(a, a.translated(1.0, 0.0))
        assert not bundler.is_associated(a, a.translated(3.0, 0.0))
        with pytest.raises(ValueError):
            CenterDistanceBundler(max_distance=0.0)


class TestBundleFrame:
    def test_empty(self):
        assert TrackBundler().bundle_frame([]) == []

    def test_mixed_frames_rejected(self):
        with pytest.raises(ValueError):
            TrackBundler().bundle_frame([obs(frame=0), obs(frame=1)])

    def test_overlapping_cross_source_pair_bundles(self):
        human = obs(source=SOURCE_HUMAN)
        model = obs(x=0.2, source=SOURCE_MODEL)
        bundles = TrackBundler().bundle_frame([human, model])
        assert len(bundles) == 1
        assert bundles[0].sources == {SOURCE_HUMAN, SOURCE_MODEL}

    def test_same_source_never_bundled(self):
        # Two identical model boxes stay separate bundles.
        bundles = TrackBundler().bundle_frame([obs(), obs()])
        assert len(bundles) == 2

    def test_disjoint_boxes_stay_separate(self):
        human = obs(x=0, source=SOURCE_HUMAN)
        model = obs(x=50, source=SOURCE_MODEL)
        bundles = TrackBundler().bundle_frame([human, model])
        assert len(bundles) == 2
        assert all(len(b) == 1 for b in bundles)

    def test_one_to_one_between_sources(self):
        # Two model boxes both overlap one human box; only the better match
        # joins its bundle.
        human = obs(x=0.0, source=SOURCE_HUMAN)
        close = obs(x=0.1, source=SOURCE_MODEL)
        farther = obs(x=0.8, source=SOURCE_MODEL)
        bundles = TrackBundler().bundle_frame([human, close, farther])
        assert len(bundles) == 2
        paired = next(b for b in bundles if len(b) == 2)
        assert close in list(paired)
        assert farther not in list(paired)

    def test_three_sources_merge_transitively(self):
        human = obs(x=0.0, source=SOURCE_HUMAN)
        model = obs(x=0.1, source=SOURCE_MODEL)
        auditor = obs(x=0.05, source="auditor")
        bundles = TrackBundler().bundle_frame([human, model, auditor])
        assert len(bundles) == 1
        assert len(bundles[0]) == 3

    def test_all_observations_preserved(self):
        observations = [
            obs(x=float(i) * 10, source=SOURCE_MODEL) for i in range(3)
        ] + [obs(x=float(i) * 10 + 0.1, source=SOURCE_HUMAN) for i in range(3)]
        bundles = TrackBundler().bundle_frame(observations)
        flat = [o for b in bundles for o in b]
        assert sorted(o.obs_id for o in flat) == sorted(o.obs_id for o in observations)

    def test_hungarian_matcher_works(self):
        bundler = IoUBundler(threshold=0.1, matcher="hungarian")
        human = obs(x=0.0, source=SOURCE_HUMAN)
        model = obs(x=0.3, source=SOURCE_MODEL)
        bundles = bundler.bundle_frame([human, model])
        assert len(bundles) == 1
