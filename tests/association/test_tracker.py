"""Tests for cross-frame track building."""

import pytest

from repro.association import TemporalAffinity, TrackBuilder
from repro.core.model import SOURCE_HUMAN, SOURCE_MODEL, Observation
from repro.datagen import SceneGenerator
from repro.geometry import Box3D
from repro.labelers import DetectorModel, HumanLabeler


def obs(x=0.0, y=0.0, frame=0, source=SOURCE_MODEL, cls="car", conf=0.9):
    return Observation(
        frame=frame,
        box=Box3D(x=x, y=y, z=0.85, length=4.5, width=1.9, height=1.7),
        object_class=cls,
        source=source,
        confidence=conf if source == SOURCE_MODEL else None,
    )


class TestTemporalAffinity:
    def test_overlap_scores_above_one(self):
        aff = TemporalAffinity()
        a = Box3D(x=0, y=0, z=0.85, length=4.5, width=1.9, height=1.7)
        assert aff.score(a, a) > 1.0

    def test_distance_fallback(self):
        aff = TemporalAffinity(max_center_jump=4.0)
        a = Box3D(x=0, y=0, z=0.85, length=2.0, width=1.0, height=1.0)
        b = a.translated(3.0, 0.0)  # no overlap, within jump
        score = aff.score(a, b)
        assert 0.0 < score < 1.0

    def test_too_far_scores_zero(self):
        aff = TemporalAffinity(max_center_jump=4.0)
        a = Box3D(x=0, y=0, z=0.85, length=2.0, width=1.0, height=1.0)
        assert aff.score(a, a.translated(10.0, 0.0)) == 0.0

    def test_overlap_beats_distance(self):
        aff = TemporalAffinity()
        a = Box3D(x=0, y=0, z=0.85, length=4.5, width=1.9, height=1.7)
        overlapping = a.translated(1.0, 0.0)
        nearby = a.translated(3.5, 0.0)
        assert aff.score(a, overlapping) > aff.score(a, nearby)


class TestTrackBuilderBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrackBuilder(max_gap=-1)
        with pytest.raises(ValueError):
            TrackBuilder(matcher="quantum")

    def test_single_object_single_track(self):
        observations = [obs(x=i * 0.5, frame=i) for i in range(5)]
        scene = TrackBuilder().build_scene("s", 0.2, observations)
        assert len(scene) == 1
        assert scene.tracks[0].frames == [0, 1, 2, 3, 4]

    def test_two_far_objects_two_tracks(self):
        observations = [obs(x=i * 0.5, frame=i) for i in range(5)]
        observations += [obs(x=100 + i * 0.5, frame=i) for i in range(5)]
        scene = TrackBuilder().build_scene("s", 0.2, observations)
        assert len(scene) == 2
        assert all(len(t) == 5 for t in scene)

    def test_gap_bridging(self):
        # Missing frame 2; max_gap=2 should bridge it.
        frames = [0, 1, 3, 4]
        observations = [obs(x=f * 0.5, frame=f) for f in frames]
        scene = TrackBuilder(max_gap=2).build_scene("s", 0.2, observations)
        assert len(scene) == 1
        assert scene.tracks[0].frames == frames

    def test_gap_exceeded_splits_track(self):
        frames = [0, 1, 8, 9]
        observations = [obs(x=f * 0.5, frame=f) for f in frames]
        scene = TrackBuilder(max_gap=2).build_scene("s", 0.2, observations)
        assert len(scene) == 2

    def test_cross_source_bundling_within_track(self):
        observations = []
        for f in range(4):
            observations.append(obs(x=f * 0.5, frame=f, source=SOURCE_HUMAN))
            observations.append(obs(x=f * 0.5 + 0.1, frame=f, source=SOURCE_MODEL))
        scene = TrackBuilder().build_scene("s", 0.2, observations)
        assert len(scene) == 1
        track = scene.tracks[0]
        assert all(len(b) == 2 for b in track)
        assert track.has_human and track.has_model

    def test_empty_observations(self):
        scene = TrackBuilder().build_scene("s", 0.2, [])
        assert len(scene) == 0

    def test_scene_metadata_passthrough(self):
        scene = TrackBuilder().build_scene("s", 0.2, [], metadata={"k": 1})
        assert scene.metadata == {"k": 1}
        assert scene.dt == 0.2

    def test_track_ids_unique(self):
        observations = [obs(x=i * 100.0, frame=0) for i in range(5)]
        scene = TrackBuilder().build_scene("s", 0.2, observations)
        ids = [t.track_id for t in scene]
        assert len(set(ids)) == len(ids)


class TestTrackBuilderOnSimulatedData:
    @pytest.fixture(scope="class")
    def built(self):
        world = SceneGenerator().generate("trk", seed=33)
        human_obs, _ = HumanLabeler().label_scene(world, seed=1)
        model_obs, _ = DetectorModel().predict_scene(world, seed=2)
        scene = TrackBuilder().build_scene(
            world.scene_id, world.dt, human_obs + model_obs
        )
        return world, scene

    def test_every_observation_lands_in_exactly_one_track(self, built):
        world, scene = built
        all_ids = [o.obs_id for t in scene for o in t.observations]
        assert len(all_ids) == len(set(all_ids))

    def test_tracks_are_mostly_pure(self, built):
        """Most multi-observation tracks should contain a single ground-truth
        object (association quality check)."""
        world, scene = built
        pure = total = 0
        for track in scene:
            if track.n_observations < 4:
                continue
            gt_ids = [
                o.metadata.get("gt_object_id")
                for o in track.observations
                if o.metadata.get("gt_object_id")
            ]
            if not gt_ids:
                continue
            total += 1
            if len(set(gt_ids)) == 1:
                pure += 1
        assert total > 0
        assert pure / total > 0.9

    def test_objects_not_fragmented(self, built):
        """A long-lived labeled object should map to few tracks."""
        world, scene = built
        from collections import Counter

        by_gt = Counter()
        for track in scene:
            gt_ids = {
                o.metadata.get("gt_object_id")
                for o in track.observations
                if o.metadata.get("gt_object_id")
            }
            for gt in gt_ids:
                by_gt[gt] += 1
        # Objects seen by both sources over many frames should form 1-3
        # tracks, not dozens.
        fragmented = [gt for gt, n in by_gt.items() if n > 4]
        assert len(fragmented) <= max(1, len(by_gt) // 5)
