"""Tests for matching algorithms and union-find."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.association import UnionFind, greedy_match, hungarian_match


class TestGreedyMatch:
    def test_empty(self):
        assert greedy_match(np.zeros((0, 3))) == []
        assert greedy_match(np.zeros((3, 0))) == []

    def test_identity(self):
        assert greedy_match(np.eye(3), threshold=0.5) == [(0, 0), (1, 1), (2, 2)]

    def test_threshold_filters(self):
        mat = np.array([[0.9, 0.0], [0.0, 0.3]])
        assert greedy_match(mat, threshold=0.5) == [(0, 0)]

    def test_greedy_takes_largest_first(self):
        # Greedy pairs (0,1)=0.9 first, forcing (1,0)=0.2.
        mat = np.array([[0.8, 0.9], [0.2, 0.85]])
        assert greedy_match(mat) == [(0, 1), (1, 0)]

    def test_rectangular(self):
        mat = np.array([[0.9, 0.1, 0.2]])
        assert greedy_match(mat, threshold=0.05) == [(0, 0)]

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            greedy_match(np.array([[np.nan]]))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            greedy_match(np.zeros(3))


class TestHungarianMatch:
    def test_optimal_beats_greedy_total(self):
        mat = np.array([[0.8, 0.9], [0.2, 0.85]])
        # Optimal: (0,0)+(1,1) = 1.65 > greedy's 1.1.
        assert hungarian_match(mat) == [(0, 0), (1, 1)]

    def test_threshold_filters(self):
        mat = np.array([[0.9, 0.0], [0.0, 0.3]])
        assert hungarian_match(mat, threshold=0.5) == [(0, 0)]

    def test_empty(self):
        assert hungarian_match(np.zeros((0, 0))) == []


affinities = arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    elements=st.floats(min_value=0.0, max_value=1.0),
)


@settings(max_examples=80, deadline=None)
@given(affinities)
def test_matchings_are_one_to_one(mat):
    for match in (greedy_match, hungarian_match):
        pairs = match(mat, threshold=0.1)
        rows = [i for i, _ in pairs]
        cols = [j for _, j in pairs]
        assert len(rows) == len(set(rows))
        assert len(cols) == len(set(cols))
        for i, j in pairs:
            assert mat[i, j] > 0.1


@settings(max_examples=80, deadline=None)
@given(affinities)
def test_hungarian_total_at_least_greedy(mat):
    greedy_total = sum(mat[i, j] for i, j in greedy_match(mat, threshold=0.0))
    optimal_total = sum(mat[i, j] for i, j in hungarian_match(mat, threshold=0.0))
    # Hungarian maximizes total affinity over *maximum* matchings; with a
    # threshold of 0 both only keep positive entries, so optimal >= greedy
    # up to floating noise.
    assert optimal_total >= greedy_total - 1e-9


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert uf.groups() == [[0], [1], [2], [3]]

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.union(2, 3)
        assert uf.groups() == [[0, 1], [2, 3]]

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.groups()[0] == [0, 1, 2]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_zero_elements(self):
        assert UnionFind(0).groups() == []
