"""Property-based tests of association invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.association import IoUBundler, TrackBuilder
from repro.core.model import Observation
from repro.geometry import Box3D


@st.composite
def observation_batches(draw):
    """A batch of observations over a handful of frames/sources."""
    n = draw(st.integers(min_value=0, max_value=25))
    observations = []
    for i in range(n):
        frame = draw(st.integers(min_value=0, max_value=6))
        source = draw(st.sampled_from(["human", "model"]))
        observations.append(
            Observation(
                frame=frame,
                box=Box3D(
                    x=draw(st.floats(min_value=-40, max_value=40)),
                    y=draw(st.floats(min_value=-40, max_value=40)),
                    z=0.85,
                    length=draw(st.floats(min_value=0.5, max_value=9)),
                    width=draw(st.floats(min_value=0.4, max_value=3)),
                    height=1.7,
                    yaw=draw(st.floats(min_value=-3.1, max_value=3.1)),
                ),
                object_class=draw(st.sampled_from(["car", "truck"])),
                source=source,
                confidence=0.9 if source == "model" else None,
            )
        )
    return observations


@settings(max_examples=60, deadline=None)
@given(observation_batches())
def test_build_scene_partitions_observations(observations):
    """Every observation lands in exactly one track — no loss, no dupes."""
    scene = TrackBuilder().build_scene("prop", 0.2, observations)
    seen = [o.obs_id for t in scene.tracks for o in t.observations]
    assert sorted(seen) == sorted(o.obs_id for o in observations)


@settings(max_examples=60, deadline=None)
@given(observation_batches())
def test_tracks_have_sorted_unique_frames(observations):
    scene = TrackBuilder().build_scene("prop", 0.2, observations)
    for track in scene.tracks:
        frames = track.frames
        assert frames == sorted(frames)
        assert len(frames) == len(set(frames))


@settings(max_examples=60, deadline=None)
@given(observation_batches())
def test_bundles_never_mix_same_source(observations):
    """A bundle holds at most one observation per source."""
    scene = TrackBuilder().build_scene("prop", 0.2, observations)
    for bundle in scene.bundles:
        sources = [o.source for o in bundle.observations]
        assert len(sources) == len(set(sources))


@settings(max_examples=60, deadline=None)
@given(observation_batches())
def test_bundle_frame_grouping(observations):
    """bundle_frame output is a partition of its one-frame input."""
    by_frame = {}
    for obs in observations:
        by_frame.setdefault(obs.frame, []).append(obs)
    bundler = IoUBundler(threshold=0.3)
    for frame, group in by_frame.items():
        bundles = bundler.bundle_frame(group)
        flat = [o.obs_id for b in bundles for o in b.observations]
        assert sorted(flat) == sorted(o.obs_id for o in group)
        assert all(b.frame == frame for b in bundles)
