"""Tests for factor evaluation, evidence scoring, and sum-product."""

import math

import numpy as np
import pytest

from repro.factorgraph import (
    FactorGraph,
    FunctionFactor,
    TableFactor,
    evidence_log_score,
    log_potential,
    log_potentials,
    log_score,
    sum_product,
)


class TestLogPotential:
    def test_positive(self):
        assert log_potential(1.0) == 0.0
        assert log_potential(math.e) == pytest.approx(1.0)

    def test_zero_is_neg_inf(self):
        assert log_potential(0.0) == -math.inf

    def test_floor(self):
        assert log_potential(1e-300) == pytest.approx(math.log(1e-12))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            log_potential(-0.1)


class TestLogPotentials:
    def test_matches_scalar_elementwise(self):
        values = np.array([1.0, math.e, 0.0, 1e-300, 0.5])
        out = log_potentials(values)
        for value, log_value in zip(values, out):
            assert log_value == log_potential(float(value))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            log_potentials(np.array([0.5, -0.1]))


class TestEvidenceLogScore:
    def test_constant_potentials_vectorized(self):
        from repro.core.compile import PotentialFactor

        g = FactorGraph()
        g.add_variable("x")
        g.add_variable("y")
        g.add_factor("fx", ["x"], payload=PotentialFactor(0.5, "fx"))
        g.add_factor("fy", ["y"], payload=PotentialFactor(0.25, "fy"))
        assert evidence_log_score(g) == pytest.approx(
            math.log(0.5) + math.log(0.25)
        )

    def test_zero_constant_gives_neg_inf(self):
        from repro.core.compile import PotentialFactor

        g = FactorGraph()
        g.add_variable("x")
        g.add_factor("f", ["x"], payload=PotentialFactor(0.0, "f"))
        assert evidence_log_score(g) == -math.inf

    def test_mixed_constant_and_function_factors(self):
        from repro.core.compile import PotentialFactor

        g = FactorGraph()
        g.add_variable("x")
        g.add_factor("const", ["x"], payload=PotentialFactor(0.5, "const"))
        g.add_factor(
            "fn", ["x"], payload=FunctionFactor(["x"], lambda x: 0.25)
        )
        with pytest.raises(KeyError):
            # FunctionFactors need an assignment; evidence scoring only
            # covers fully-conditioned (constant) graphs plus factors
            # evaluable with an empty assignment.
            evidence_log_score(g)

    def test_agrees_with_log_score_on_compiled_graph(self):
        from repro.core.compile import PotentialFactor

        g = FactorGraph()
        values = [0.37, 0.39, 0.21]
        for i, value in enumerate(values):
            g.add_variable(f"v{i}")
            g.add_factor(f"f{i}", [f"v{i}"], payload=PotentialFactor(value, f"f{i}"))
        assignment = {f"v{i}": 0 for i in range(len(values))}
        assert evidence_log_score(g) == pytest.approx(log_score(g, assignment))


class TestFunctionFactor:
    def test_evaluate(self):
        f = FunctionFactor(["x", "y"], lambda x, y: x * y, label="prod")
        assert f.evaluate({"x": 2.0, "y": 3.0}) == 6.0

    def test_missing_assignment(self):
        f = FunctionFactor(["x"], lambda x: x)
        with pytest.raises(KeyError):
            f.evaluate({})

    def test_invalid_potential(self):
        f = FunctionFactor(["x"], lambda x: -1.0)
        with pytest.raises(ValueError):
            f.evaluate({"x": 0.0})
        g = FunctionFactor(["x"], lambda x: float("nan"))
        with pytest.raises(ValueError):
            g.evaluate({"x": 0.0})

    def test_needs_variables(self):
        with pytest.raises(ValueError):
            FunctionFactor([], lambda: 1.0)

    def test_log_evaluate(self):
        f = FunctionFactor(["x"], lambda x: 0.5)
        assert f.log_evaluate({"x": 0}) == pytest.approx(math.log(0.5))


class TestTableFactor:
    def test_evaluate(self):
        t = TableFactor(
            ["a", "b"],
            [[0, 1], ["x", "y"]],
            np.array([[0.1, 0.2], [0.3, 0.4]]),
        )
        assert t.evaluate({"a": 1, "b": "y"}) == pytest.approx(0.4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            TableFactor(["a"], [[0, 1]], np.zeros((3,)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TableFactor(["a"], [[0, 1]], np.array([-0.1, 0.5]))

    def test_unknown_value(self):
        t = TableFactor(["a"], [[0, 1]], np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            t.evaluate({"a": 7})

    def test_marginalize_onto(self):
        t = TableFactor(
            ["a", "b"],
            [[0, 1], [0, 1]],
            np.array([[0.1, 0.2], [0.3, 0.4]]),
        )
        np.testing.assert_allclose(t.marginalize_onto("a"), [0.3, 0.7])
        np.testing.assert_allclose(t.marginalize_onto("b"), [0.4, 0.6])
        with pytest.raises(KeyError):
            t.marginalize_onto("zzz")


class TestLogScore:
    def test_sums_log_potentials(self):
        g = FactorGraph()
        g.add_variable("x")
        g.add_variable("y")
        g.add_factor("fx", ["x"], payload=FunctionFactor(["x"], lambda x: 0.5))
        g.add_factor("fy", ["y"], payload=FunctionFactor(["y"], lambda y: 0.25))
        score = log_score(g, {"x": 0, "y": 0})
        assert score == pytest.approx(math.log(0.5) + math.log(0.25))

    def test_zero_factor_gives_neg_inf(self):
        g = FactorGraph()
        g.add_variable("x")
        g.add_factor("f", ["x"], payload=FunctionFactor(["x"], lambda x: 0.0))
        assert log_score(g, {"x": 1}) == -math.inf

    def test_non_factor_payload_rejected(self):
        g = FactorGraph()
        g.add_variable("x")
        g.add_factor("f", ["x"], payload="not a factor")
        with pytest.raises(TypeError):
            log_score(g, {"x": 1})


class TestSumProduct:
    def test_single_variable(self):
        g = FactorGraph()
        g.add_variable("x")
        g.add_factor(
            "prior", ["x"],
            payload=TableFactor(["x"], [[0, 1]], np.array([0.2, 0.8])),
        )
        marginals = sum_product(g)
        np.testing.assert_allclose(marginals["x"], [0.2, 0.8])

    def test_chain_matches_brute_force(self):
        # x - f(x,y) - y with priors on both.
        prior_x = np.array([0.6, 0.4])
        prior_y = np.array([0.3, 0.7])
        pairwise = np.array([[0.9, 0.1], [0.2, 0.8]])

        g = FactorGraph()
        g.add_variable("x")
        g.add_variable("y")
        g.add_factor("px", ["x"], payload=TableFactor(["x"], [[0, 1]], prior_x))
        g.add_factor("py", ["y"], payload=TableFactor(["y"], [[0, 1]], prior_y))
        g.add_factor(
            "pxy", ["x", "y"],
            payload=TableFactor(["x", "y"], [[0, 1], [0, 1]], pairwise),
        )
        marginals = sum_product(g)

        joint = prior_x[:, None] * prior_y[None, :] * pairwise
        joint /= joint.sum()
        np.testing.assert_allclose(marginals["x"], joint.sum(axis=1), atol=1e-12)
        np.testing.assert_allclose(marginals["y"], joint.sum(axis=0), atol=1e-12)

    def test_longer_chain(self):
        rng = np.random.default_rng(0)
        n = 5
        g = FactorGraph()
        tables = []
        for i in range(n):
            g.add_variable(f"x{i}")
        for i in range(n - 1):
            t = rng.uniform(0.1, 1.0, size=(2, 2))
            tables.append(t)
            g.add_factor(
                f"f{i}", [f"x{i}", f"x{i+1}"],
                payload=TableFactor([f"x{i}", f"x{i+1}"], [[0, 1], [0, 1]], t),
            )
        marginals = sum_product(g)

        # Brute force over all 2^n assignments.
        brute = {f"x{i}": np.zeros(2) for i in range(n)}
        total = 0.0
        for mask in range(2**n):
            bits = [(mask >> i) & 1 for i in range(n)]
            weight = 1.0
            for i in range(n - 1):
                weight *= tables[i][bits[i], bits[i + 1]]
            total += weight
            for i in range(n):
                brute[f"x{i}"][bits[i]] += weight
        for i in range(n):
            np.testing.assert_allclose(
                marginals[f"x{i}"], brute[f"x{i}"] / total, atol=1e-10
            )

    def test_cyclic_graph_rejected(self):
        g = FactorGraph()
        g.add_variable("a")
        g.add_variable("b")
        t = np.ones((2, 2))
        g.add_factor("f1", ["a", "b"], payload=TableFactor(["a", "b"], [[0, 1], [0, 1]], t))
        g.add_factor("f2", ["a", "b"], payload=TableFactor(["a", "b"], [[0, 1], [0, 1]], t))
        with pytest.raises(ValueError):
            sum_product(g)

    def test_uncovered_variable_rejected(self):
        g = FactorGraph()
        g.add_variable("a")
        g.add_variable("orphan")
        g.add_factor("f", ["a"], payload=TableFactor(["a"], [[0, 1]], np.ones(2)))
        with pytest.raises(ValueError):
            sum_product(g)

    def test_inconsistent_domains_rejected(self):
        g = FactorGraph()
        g.add_variable("a")
        g.add_factor("f1", ["a"], payload=TableFactor(["a"], [[0, 1]], np.ones(2)))
        g.add_factor("f2", ["a"], payload=TableFactor(["a"], [[0, 1, 2]], np.ones(3)))
        with pytest.raises(ValueError):
            sum_product(g)
