"""Tests for MAP inference (max-product)."""

import numpy as np
import pytest

from repro.factorgraph import FactorGraph, TableFactor, max_product, sum_product


def single_var_graph(potentials):
    g = FactorGraph()
    g.add_variable("x")
    g.add_factor(
        "f", ["x"],
        payload=TableFactor(["x"], [list(range(len(potentials)))],
                            np.asarray(potentials)),
    )
    return g


class TestMaxProduct:
    def test_single_variable(self):
        g = single_var_graph([0.2, 0.7, 0.1])
        assert max_product(g) == {"x": 1}

    def test_chain_map_matches_brute_force(self):
        rng = np.random.default_rng(0)
        n = 4
        g = FactorGraph()
        tables = []
        for i in range(n):
            g.add_variable(f"x{i}")
        for i in range(n - 1):
            t = rng.uniform(0.05, 1.0, size=(2, 2))
            tables.append(t)
            g.add_factor(
                f"f{i}", [f"x{i}", f"x{i+1}"],
                payload=TableFactor([f"x{i}", f"x{i+1}"], [[0, 1], [0, 1]], t),
            )
        assignment = max_product(g)

        best_weight, best_bits = -1.0, None
        for mask in range(2**n):
            bits = [(mask >> i) & 1 for i in range(n)]
            weight = 1.0
            for i in range(n - 1):
                weight *= tables[i][bits[i], bits[i + 1]]
            if weight > best_weight:
                best_weight, best_bits = weight, bits
        assert [assignment[f"x{i}"] for i in range(n)] == best_bits

    def test_map_can_differ_from_marginal_argmax(self):
        """Classic case: per-variable marginal argmaxes need not form the
        joint MAP. Construct one and check max_product gets the joint."""
        # Pairwise potential strongly favors (0,0) OR anything with x=1,
        # arranged so marginals favor x=1 but the single best joint is (0,0).
        table = np.array([[0.5, 0.01], [0.3, 0.3]])
        g = FactorGraph()
        g.add_variable("x")
        g.add_variable("y")
        g.add_factor(
            "f", ["x", "y"],
            payload=TableFactor(["x", "y"], [[0, 1], [0, 1]], table),
        )
        marginals = sum_product(g)
        assert int(np.argmax(marginals["x"])) == 1  # 0.6 vs 0.51 mass
        assert max_product(g) == {"x": 0, "y": 0}   # joint max 0.5

    def test_disconnected_components_independent(self):
        g = FactorGraph()
        g.add_variable("a")
        g.add_variable("b")
        g.add_factor("fa", ["a"],
                     payload=TableFactor(["a"], [[0, 1]], np.array([0.9, 0.1])))
        g.add_factor("fb", ["b"],
                     payload=TableFactor(["b"], [[0, 1]], np.array([0.2, 0.8])))
        assert max_product(g) == {"a": 0, "b": 1}

    def test_zero_everywhere_rejected(self):
        g = single_var_graph([0.0, 0.0])
        with pytest.raises(ValueError, match="positive potential"):
            max_product(g)

    def test_huge_joint_rejected(self):
        g = FactorGraph()
        domain = list(range(200))
        for i in range(4):
            g.add_variable(f"x{i}")
        # Connect all four so the component's joint is 200^4 > cap.
        for i in range(3):
            g.add_factor(
                f"f{i}", [f"x{i}", f"x{i+1}"],
                payload=TableFactor([f"x{i}", f"x{i+1}"], [domain, domain],
                                    np.ones((200, 200))),
            )
        with pytest.raises(ValueError, match="too large"):
            max_product(g)

    def test_consistent_with_loopy_small_graph(self):
        # max_product is exact even with a cycle (brute force).
        g = FactorGraph()
        g.add_variable("a")
        g.add_variable("b")
        t1 = np.array([[0.9, 0.1], [0.1, 0.9]])
        t2 = np.array([[0.2, 0.8], [0.8, 0.2]])
        g.add_factor("f1", ["a", "b"],
                     payload=TableFactor(["a", "b"], [[0, 1], [0, 1]], t1))
        g.add_factor("f2", ["a", "b"],
                     payload=TableFactor(["a", "b"], [[0, 1], [0, 1]], t2))
        assignment = max_product(g)
        joint = t1 * t2
        best = np.unravel_index(np.argmax(joint), joint.shape)
        assert (assignment["a"], assignment["b"]) == best
