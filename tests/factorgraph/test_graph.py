"""Tests for factor graph structure."""

import pytest

from repro.factorgraph import FactorGraph


def chain_graph(n_vars=3):
    """v0 - f01 - v1 - f12 - v2 ... plus a unary factor on v0."""
    g = FactorGraph()
    for i in range(n_vars):
        g.add_variable(f"v{i}")
    g.add_factor("u0", ["v0"])
    for i in range(n_vars - 1):
        g.add_factor(f"f{i}{i+1}", [f"v{i}", f"v{i+1}"])
    return g


class TestConstruction:
    def test_counts(self):
        g = chain_graph(3)
        assert g.n_variables == 3
        assert g.n_factors == 3
        assert g.n_edges == 1 + 2 + 2

    def test_duplicate_variable(self):
        g = FactorGraph()
        g.add_variable("v")
        with pytest.raises(ValueError):
            g.add_variable("v")

    def test_duplicate_factor(self):
        g = FactorGraph()
        g.add_variable("v")
        g.add_factor("f", ["v"])
        with pytest.raises(ValueError):
            g.add_factor("f", ["v"])

    def test_name_collision_across_kinds(self):
        g = FactorGraph()
        g.add_variable("x")
        with pytest.raises(ValueError):
            g.add_factor("x", ["x"])
        g.add_factor("f", ["x"])
        with pytest.raises(ValueError):
            g.add_variable("f")

    def test_factor_requires_known_variables(self):
        g = FactorGraph()
        g.add_variable("v")
        with pytest.raises(KeyError):
            g.add_factor("f", ["v", "missing"])

    def test_factor_requires_nonempty_scope(self):
        g = FactorGraph()
        with pytest.raises(ValueError):
            g.add_factor("f", [])

    def test_factor_rejects_duplicate_scope(self):
        g = FactorGraph()
        g.add_variable("v")
        with pytest.raises(ValueError):
            g.add_factor("f", ["v", "v"])

    def test_payloads(self):
        g = FactorGraph()
        var = g.add_variable("v", payload={"x": 1})
        fac = g.add_factor("f", ["v"], payload="dist")
        assert var.payload == {"x": 1}
        assert fac.payload == "dist"


class TestQueries:
    def test_scope_and_factors_of(self):
        g = chain_graph(3)
        assert [v.name for v in g.factor_scope("f01")] == ["v0", "v1"]
        assert [f.name for f in g.factors_of("v1")] == ["f01", "f12"]

    def test_degree(self):
        g = chain_graph(3)
        assert g.degree("v0") == 2  # u0 and f01
        assert g.degree("v1") == 2
        assert g.degree("f01") == 2
        assert g.degree("u0") == 1

    def test_missing_nodes_raise(self):
        g = chain_graph(2)
        with pytest.raises(KeyError):
            g.variable("zzz")
        with pytest.raises(KeyError):
            g.factor("zzz")
        with pytest.raises(KeyError):
            g.degree("zzz")
        with pytest.raises(KeyError):
            g.factor_scope("zzz")
        with pytest.raises(KeyError):
            g.factors_of("zzz")

    def test_has_checks(self):
        g = chain_graph(2)
        assert g.has_variable("v0")
        assert not g.has_variable("f01")
        assert g.has_factor("f01")
        assert not g.has_factor("v0")


class TestStructure:
    def test_chain_is_tree(self):
        assert chain_graph(4).is_tree()

    def test_cycle_detected(self):
        g = FactorGraph()
        for name in ("a", "b"):
            g.add_variable(name)
        g.add_factor("f1", ["a", "b"])
        g.add_factor("f2", ["a", "b"])  # creates a cycle
        assert not g.is_tree()

    def test_connected_components(self):
        g = FactorGraph()
        for name in ("a", "b", "c"):
            g.add_variable(name)
        g.add_factor("fab", ["a", "b"])
        g.add_factor("uc", ["c"])
        comps = g.connected_components()
        assert len(comps) == 2
        sizes = sorted(len(c) for c in comps)
        assert sizes == [2, 3]

    def test_isolated_variable_component(self):
        g = FactorGraph()
        g.add_variable("lonely")
        assert g.connected_components() == [{"lonely"}]
        assert g.is_tree()

    def test_validate(self):
        chain_graph(5).validate()
