"""Tests for the OBT data model (Table 1)."""

import pytest

from repro.core import (
    SOURCE_HUMAN,
    SOURCE_MODEL,
    Observation,
    ObservationBundle,
    Scene,
    Track,
)
from repro.geometry import Box3D


def box(x=0.0):
    return Box3D(x=x, y=0, z=0.85, length=4.5, width=1.9, height=1.7)


def obs(frame=0, source=SOURCE_MODEL, cls="car", conf=0.9, x=0.0):
    return Observation(
        frame=frame,
        box=box(x),
        object_class=cls,
        source=source,
        confidence=conf if source == SOURCE_MODEL else None,
    )


class TestObservation:
    def test_auto_ids_unique(self):
        assert obs().obs_id != obs().obs_id

    def test_validation(self):
        with pytest.raises(ValueError):
            obs(frame=-1)
        with pytest.raises(ValueError):
            Observation(frame=0, box=box(), object_class="car",
                        source=SOURCE_MODEL, confidence=1.5)

    def test_source_flags(self):
        assert obs(source=SOURCE_MODEL).is_model
        assert obs(source=SOURCE_HUMAN).is_human
        assert not obs(source=SOURCE_HUMAN).is_model

    def test_serialization_roundtrip(self):
        original = obs()
        clone = Observation.from_dict(original.to_dict())
        assert clone.obs_id == original.obs_id
        assert clone.box == original.box
        assert clone.confidence == original.confidence

    def test_metadata_not_compared(self):
        a = obs()
        b = Observation(
            frame=a.frame, box=a.box, object_class=a.object_class,
            source=a.source, confidence=a.confidence, obs_id=a.obs_id,
            metadata={"x": 1},
        )
        assert a == b


class TestObservationBundle:
    def test_frame_consistency_enforced(self):
        with pytest.raises(ValueError):
            ObservationBundle(frame=0, observations=[obs(frame=1)])
        bundle = ObservationBundle(frame=0)
        with pytest.raises(ValueError):
            bundle.add(obs(frame=2))

    def test_sources_and_flags(self):
        bundle = ObservationBundle(
            frame=0, observations=[obs(source=SOURCE_HUMAN), obs(source=SOURCE_MODEL)]
        )
        assert bundle.has_human and bundle.has_model
        assert bundle.sources == {SOURCE_HUMAN, SOURCE_MODEL}
        assert len(bundle.by_source(SOURCE_HUMAN)) == 1

    def test_classes_agree(self):
        agree = ObservationBundle(frame=0, observations=[obs(), obs()])
        assert agree.classes_agree()
        disagree = ObservationBundle(
            frame=0, observations=[obs(cls="car"), obs(cls="truck")]
        )
        assert not disagree.classes_agree()

    def test_representative_prefers_confident_model(self):
        low = obs(conf=0.3)
        high = obs(conf=0.95)
        human = obs(source=SOURCE_HUMAN)
        bundle = ObservationBundle(frame=0, observations=[human, low, high])
        assert bundle.representative() is high

    def test_representative_falls_back_to_first(self):
        human = obs(source=SOURCE_HUMAN)
        bundle = ObservationBundle(frame=0, observations=[human])
        assert bundle.representative() is human

    def test_len_iter(self):
        bundle = ObservationBundle(frame=0, observations=[obs(), obs()])
        assert len(bundle) == 2
        assert len(list(bundle)) == 2


def track_from_frames(frames, source=SOURCE_MODEL, cls="car"):
    bundles = [
        ObservationBundle(frame=f, observations=[obs(frame=f, source=source, cls=cls)])
        for f in frames
    ]
    return Track(track_id="t", bundles=bundles)


class TestTrack:
    def test_bundles_sorted(self):
        track = track_from_frames([3, 1, 2])
        assert track.frames == [1, 2, 3]

    def test_duplicate_frames_rejected(self):
        with pytest.raises(ValueError):
            track_from_frames([1, 1])
        track = track_from_frames([0])
        with pytest.raises(ValueError):
            track.add(ObservationBundle(frame=0, observations=[obs(frame=0)]))

    def test_add_keeps_sorted(self):
        track = track_from_frames([0, 2])
        track.add(ObservationBundle(frame=1, observations=[obs(frame=1)]))
        assert track.frames == [0, 1, 2]

    def test_observations_and_counts(self):
        track = track_from_frames([0, 1, 2])
        assert track.n_observations == 3
        assert len(track.observations) == 3

    def test_transitions(self):
        track = track_from_frames([0, 1, 3])
        transitions = track.transitions()
        assert len(transitions) == 2
        assert transitions[0][0].frame == 0
        assert transitions[1][1].frame == 3

    def test_bundle_at(self):
        track = track_from_frames([0, 5])
        assert track.bundle_at(5).frame == 5
        assert track.bundle_at(3) is None

    def test_majority_class(self):
        bundles = [
            ObservationBundle(frame=0, observations=[obs(frame=0, cls="car")]),
            ObservationBundle(frame=1, observations=[obs(frame=1, cls="car")]),
            ObservationBundle(frame=2, observations=[obs(frame=2, cls="truck")]),
        ]
        assert Track(track_id="t", bundles=bundles).majority_class() == "car"

    def test_majority_class_empty_raises(self):
        track = Track(track_id="t", bundles=[])
        with pytest.raises(ValueError):
            track.majority_class()

    def test_source_flags(self):
        track = track_from_frames([0, 1], source=SOURCE_HUMAN)
        assert track.has_human and not track.has_model


class TestScene:
    def test_dt_validated(self):
        with pytest.raises(ValueError):
            Scene(scene_id="s", dt=0.0)

    def test_track_queries(self):
        track = track_from_frames([0, 1])
        scene = Scene(scene_id="s", dt=0.2, tracks=[track])
        assert scene.track_by_id("t") is track
        with pytest.raises(KeyError):
            scene.track_by_id("zzz")
        assert len(scene.observations) == 2
        assert len(scene.bundles) == 2

    def test_filter_tracks(self):
        human = Track(
            track_id="h",
            bundles=[ObservationBundle(frame=0, observations=[obs(source=SOURCE_HUMAN)])],
        )
        model = Track(
            track_id="m",
            bundles=[ObservationBundle(frame=0, observations=[obs()])],
        )
        scene = Scene(scene_id="s", dt=0.2, tracks=[human, model])
        filtered = scene.filter_tracks(lambda t: t.has_model)
        assert [t.track_id for t in filtered] == ["m"]
        assert len(scene) == 2  # original untouched
