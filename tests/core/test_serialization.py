"""Round-trip tests for LOA scene and learned-model persistence."""

import numpy as np
import pytest

from repro.core import (
    FeatureDistributionLearner,
    FeatureContext,
    LearnedModel,
    Scene,
    Track,
    VolumeFeature,
    default_features,
)
from repro.core.model import Observation, ObservationBundle
from repro.distributions import (
    Bernoulli,
    Categorical,
    Gaussian1D,
    GaussianKDE,
    HistogramDensity,
    serialize,
)
from repro.geometry import Box3D, Pose2D

from tests.core.conftest import moving_track, scene_of


class TestDistributionSerialization:
    @pytest.mark.parametrize(
        "dist",
        [
            GaussianKDE(np.linspace(0, 10, 50)),
            HistogramDensity(np.linspace(0, 10, 50), bins=8),
            Gaussian1D(3.0, 2.0),
            Bernoulli(0.3),
            Categorical({"car": 0.7, "truck": 0.3}),
        ],
        ids=["kde", "histogram", "gaussian", "bernoulli", "categorical"],
    )
    def test_roundtrip_preserves_density(self, dist):
        clone = serialize.from_dict(serialize.to_dict(dist))
        assert type(clone) is type(dist)
        if isinstance(dist, Categorical):
            for key in dist.probs:
                assert clone.pdf(key) == pytest.approx(dist.pdf(key))
        else:
            for x in (0.0, 1.0, 3.5, 9.0):
                assert float(np.atleast_1d(clone.pdf(x))[0]) == pytest.approx(
                    float(np.atleast_1d(dist.pdf(x))[0])
                )

    def test_json_safe(self):
        import json

        payload = serialize.to_dict(GaussianKDE([1.0, 2.0, 3.0]))
        json.dumps(payload)  # must not raise

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            serialize.from_dict({"kind": "alien"})

    def test_unregistered_type(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            serialize.to_dict(Weird())

    def test_register_codec(self):
        class Const:
            def pdf(self, x):
                return 1.0

        serialize.register_codec(
            "const-test", Const, lambda d: {}, lambda data: Const()
        )
        clone = serialize.from_dict(serialize.to_dict(Const()))
        assert isinstance(clone, Const)
        with pytest.raises(ValueError):
            serialize.register_codec("const-test", Const, lambda d: {}, lambda d: Const())


class TestLearnedModelPersistence:
    def test_save_load_roundtrip(self, training_scenes, tmp_path):
        model = FeatureDistributionLearner(default_features()).fit(training_scenes)
        path = tmp_path / "model.json"
        model.save(path)
        loaded = LearnedModel.load(path)

        assert loaded.feature_names == model.feature_names
        volume = VolumeFeature()
        ctx = FeatureContext.from_scene(training_scenes[0])
        for obs in training_scenes[0].tracks[0].observations:
            assert loaded.likelihood(volume, obs, ctx) == pytest.approx(
                model.likelihood(volume, obs, ctx)
            )

    def test_group_structure_preserved(self, training_scenes, tmp_path):
        model = FeatureDistributionLearner([VolumeFeature()]).fit(training_scenes)
        path = tmp_path / "m.json"
        model.save(path)
        loaded = LearnedModel.load(path)
        assert set(loaded.distributions["volume"]) == set(
            model.distributions["volume"]
        )


class TestSceneSerialization:
    def make_scene(self):
        tracks = [moving_track("a", n_frames=4), moving_track("b", n_frames=3,
                                                              start_x=50.0)]
        return scene_of(tracks, scene_id="ser", n_frames=5)

    def test_roundtrip(self):
        scene = self.make_scene()
        clone = Scene.from_dict(scene.to_dict())
        assert clone.scene_id == scene.scene_id
        assert clone.dt == scene.dt
        assert len(clone) == len(scene)
        assert [o.obs_id for o in clone.observations] == [
            o.obs_id for o in scene.observations
        ]
        assert [o.box for o in clone.observations] == [
            o.box for o in scene.observations
        ]

    def test_ego_poses_restored_as_poses(self):
        scene = self.make_scene()
        clone = Scene.from_dict(scene.to_dict())
        assert all(isinstance(p, Pose2D) for p in clone.metadata["ego_poses"])
        assert clone.metadata["ego_poses"] == scene.metadata["ego_poses"]

    def test_scene_without_ego(self):
        scene = scene_of([moving_track("a", n_frames=3)], with_ego=False)
        clone = Scene.from_dict(scene.to_dict())
        assert "ego_poses" not in clone.metadata

    def test_file_roundtrip(self, tmp_path):
        scene = self.make_scene()
        path = tmp_path / "scene.json"
        scene.save(path)
        loaded = Scene.load(path)
        assert loaded.to_dict() == scene.to_dict()

    def test_scoring_identical_after_roundtrip(self, training_scenes, tmp_path):
        """A persisted scene + persisted model reproduce the same ranking."""
        from repro.core import Fixy
        from tests.core.conftest import generic_features

        fixy = Fixy(generic_features()).fit(training_scenes)
        scene = self.make_scene()
        original = [(s.track_id, s.score) for s in fixy.rank_tracks(scene)]

        path = tmp_path / "scene.json"
        scene.save(path)
        fixy.learned.save(tmp_path / "model.json")

        fixy2 = Fixy(generic_features())
        fixy2.learned = LearnedModel.load(tmp_path / "model.json")
        reloaded = [(s.track_id, s.score) for s in fixy2.rank_tracks(Scene.load(path))]
        assert [(t, pytest.approx(x)) for t, x in original] == reloaded


class TestGridPersistence:
    """Density grids ride along with the model (ROADMAP: skip warmup)."""

    def fitted_with_grids(self, training_scenes):
        model = FeatureDistributionLearner(default_features()).fit(training_scenes)
        built = model.enable_fast_eval(eager=True)
        assert built > 0  # the KDE-backed features must be grid-eligible
        return model

    def grid_states(self, model):
        return {
            (feature, group): lfd._fast_state
            for feature, groups in model.distributions.items()
            for group, lfd in groups.items()
        }

    def test_roundtrip_restores_ready_grids(self, training_scenes, tmp_path):
        model = self.fitted_with_grids(training_scenes)
        path = tmp_path / "model.json"
        model.save(path)
        loaded = LearnedModel.load(path)
        # Built grids come back built. (Declined builds round-trip to the
        # un-armed state — both serve the exact path, so nothing is lost.)
        original = self.grid_states(model)
        restored = self.grid_states(loaded)
        ready = {key for key, state in original.items() if state == "ready"}
        assert ready
        assert {key for key, state in restored.items() if state == "ready"} == ready

    def test_loaded_grids_skip_warmup_build(self, training_scenes, tmp_path, monkeypatch):
        """Restored-ready grids serve without ever rebuilding — the point."""
        from repro.distributions.grid import GriddedDensity

        model = self.fitted_with_grids(training_scenes)
        model.save(tmp_path / "model.json")

        def forbidden(*args, **kwargs):
            raise AssertionError("grid rebuild attempted after load")

        monkeypatch.setattr(GriddedDensity, "try_build", staticmethod(forbidden))
        loaded = LearnedModel.load(tmp_path / "model.json")
        served = 0
        for groups in loaded.distributions.values():
            for lfd in groups.values():
                if lfd._fast_state == "ready":
                    assert lfd.enable_fast_eval(eager=True)  # no-op, no build
                    lfd.likelihood_batch(np.linspace(0.0, 10.0, 64))
                    served += 1
        assert served > 0

    def test_restored_grid_batch_densities_bit_identical(
        self, training_scenes, tmp_path
    ):
        model = self.fitted_with_grids(training_scenes)
        path = tmp_path / "model.json"
        model.save(path)
        loaded = LearnedModel.load(path)
        for feature, groups in model.distributions.items():
            for group, lfd in groups.items():
                if lfd._fast_state != "ready":
                    continue
                grid = lfd._fast_grid
                queries = np.linspace(grid.nodes[0], grid.nodes[-1], 257)
                clone = loaded.distributions[feature][group]
                assert clone._fast_state == "ready"
                np.testing.assert_array_equal(
                    clone.likelihood_batch(queries),
                    lfd.likelihood_batch(queries),
                )

    def test_include_grids_false_drops_them(self, training_scenes):
        model = self.fitted_with_grids(training_scenes)
        lean = LearnedModel.from_dict(model.to_dict(include_grids=False))
        assert "ready" not in self.grid_states(lean).values()

    def test_grids_are_json_safe_and_compact_nodes(self, training_scenes):
        import json

        model = self.fitted_with_grids(training_scenes)
        payload = model.to_dict()
        json.dumps(payload)
        grids = [
            entry["fast_grid"]
            for groups in payload.values()
            for entry in groups.values()
            if "fast_grid" in entry
        ]
        assert grids
        # Node positions are stored as (lo, step, n), not a full array.
        assert {"lo", "step", "n"} <= set(grids[0])
