"""Shared fixtures for core tests: hand-built scenes with known statistics."""

import numpy as np
import pytest

from repro.core import (
    SOURCE_HUMAN,
    SOURCE_MODEL,
    Observation,
    ObservationBundle,
    Scene,
    Track,
)
from repro.geometry import Box3D, Pose2D


def make_obs(
    frame,
    x,
    y=0.0,
    source=SOURCE_HUMAN,
    cls="car",
    l=4.5,
    w=1.9,
    h=1.7,
    conf=None,
    yaw=0.0,
):
    return Observation(
        frame=frame,
        box=Box3D(x=x, y=y, z=0.85, length=l, width=w, height=h, yaw=yaw),
        object_class=cls,
        source=source,
        confidence=conf,
    )


def make_track(track_id, observations_per_frame):
    """Build a track from {frame: [observations]}."""
    bundles = [
        ObservationBundle(frame=f, observations=obs_list)
        for f, obs_list in sorted(observations_per_frame.items())
    ]
    return Track(track_id=track_id, bundles=bundles)


def moving_track(
    track_id, n_frames=10, speed=2.0, dt=0.2, source=SOURCE_HUMAN, cls="car",
    start_x=0.0, y=0.0, l=4.5, w=1.9, h=1.7, conf=None, jitter=0.0, seed=0,
):
    """A straight constant-speed track of single-observation bundles."""
    rng = np.random.default_rng(seed)
    frames = {}
    for f in range(n_frames):
        x = start_x + speed * dt * f
        ll = l * float(np.exp(rng.normal(0, jitter))) if jitter else l
        frames[f] = [
            make_obs(f, x, y=y, source=source, cls=cls, l=ll, w=w, h=h, conf=conf)
        ]
    return make_track(track_id, frames)


def scene_of(tracks, scene_id="s", dt=0.2, with_ego=True, n_frames=40):
    metadata = {}
    if with_ego:
        metadata["ego_poses"] = [Pose2D(0.0, -10.0, 0.0)] * n_frames
    return Scene(scene_id=scene_id, dt=dt, tracks=list(tracks), metadata=metadata)


def generic_features():
    """Table 2 features minus the model-only selector.

    ``model_only`` zeroes any bundle containing a human observation — the
    intended behaviour inside the missing-label applications, but it makes
    every human-labeled track score -inf in generic ranking tests.
    """
    from repro.core import default_features

    return [f for f in default_features() if f.name != "model_only"]


@pytest.fixture(scope="session")
def training_scenes():
    """Scenes of clean human labels: cars ~4.5x1.9x1.7 at ~2 m/s, trucks
    ~8.5x2.6x3.2 at ~1.5 m/s. Enough samples to fit KDEs per class."""
    scenes = []
    for s in range(4):
        tracks = []
        for i in range(6):
            tracks.append(
                moving_track(
                    f"car-{s}-{i}", n_frames=12, speed=2.0 + 0.1 * i,
                    start_x=float(10 * i), y=float(3 * s), jitter=0.02,
                    seed=s * 10 + i,
                )
            )
        for i in range(3):
            tracks.append(
                moving_track(
                    f"truck-{s}-{i}", n_frames=12, speed=1.5, cls="truck",
                    start_x=float(100 + 12 * i), y=float(3 * s),
                    l=8.5, w=2.6, h=3.2, jitter=0.02, seed=100 + s * 10 + i,
                )
            )
        scenes.append(scene_of(tracks, scene_id=f"train-{s}"))
    return scenes
