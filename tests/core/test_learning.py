"""Tests for feature distribution learning (the offline phase)."""

import pytest

from repro.core import (
    FeatureContext,
    FeatureDistributionLearner,
    VelocityFeature,
    VolumeFeature,
    default_features,
)
from repro.core.learning import _POOLED

from tests.core.conftest import make_obs, make_track, moving_track, scene_of


@pytest.fixture(scope="module")
def learned(training_scenes):
    learner = FeatureDistributionLearner(default_features())
    return learner.fit(training_scenes)


CTX = FeatureContext(dt=0.2)


class TestCollectValues:
    def test_values_grouped_by_class(self, training_scenes):
        learner = FeatureDistributionLearner([VolumeFeature()])
        values = learner.collect_values(training_scenes)
        buckets = values["volume"]
        assert set(buckets) >= {"car", "truck", _POOLED}
        assert len(buckets[_POOLED]) == len(buckets["car"]) + len(buckets["truck"])

    def test_only_trusted_sources_used(self, training_scenes):
        # Add a scene of model-only garbage; learning from human labels
        # must ignore it entirely.
        garbage = scene_of(
            [
                moving_track(
                    "ghost", n_frames=10, speed=50.0, source="model",
                    l=0.2, w=0.2, h=0.2, conf=0.9,
                )
            ],
            scene_id="garbage",
        )
        learner = FeatureDistributionLearner([VolumeFeature()])
        with_garbage = learner.collect_values(training_scenes + [garbage])
        without = learner.collect_values(training_scenes)
        assert len(with_garbage["volume"][_POOLED]) == len(without["volume"][_POOLED])

    def test_manual_features_skipped(self, training_scenes):
        learner = FeatureDistributionLearner(default_features())
        values = learner.collect_values(training_scenes)
        assert "distance" not in values
        assert "model_only" not in values
        assert "count" not in values


class TestFit:
    def test_learned_feature_names(self, learned):
        assert learned.feature_names == ["velocity", "volume"]

    def test_class_conditional_distributions(self, learned):
        volume = VolumeFeature()
        car_dist = learned.lookup(volume, "car")
        truck_dist = learned.lookup(volume, "truck")
        assert car_dist is not None and truck_dist is not None
        car_volume = 4.5 * 1.9 * 1.7
        truck_volume = 8.5 * 2.6 * 3.2
        # Each class's typical volume is likely under its own distribution
        # and unlikely under the other's.
        assert car_dist.likelihood(car_volume) > 0.3
        assert truck_dist.likelihood(truck_volume) > 0.3
        assert car_dist.likelihood(truck_volume) < 0.05
        assert truck_dist.likelihood(car_volume) < 0.05

    def test_pooled_fallback_for_unseen_class(self, learned):
        volume = VolumeFeature()
        dist = learned.lookup(volume, "motorcycle")
        assert dist is not None  # pooled fallback
        assert dist is learned.lookup(volume, None)

    def test_velocity_distribution_plausible(self, learned):
        velocity = VelocityFeature()
        car_dist = learned.lookup(velocity, "car")
        assert car_dist.likelihood(2.0) > 0.2
        assert car_dist.likelihood(40.0) < 1e-3

    def test_likelihood_in_unit_interval(self, learned, training_scenes):
        ctx = FeatureContext.from_scene(training_scenes[0])
        volume = VolumeFeature()
        for track in training_scenes[0].tracks:
            for obs in track.observations:
                like = learned.likelihood(volume, obs, ctx)
                assert 0.0 <= like <= 1.0

    def test_likelihood_none_for_unlearned_feature(self, learned):
        from repro.core import TrackLengthFeature

        track = moving_track("t", n_frames=5)
        assert learned.likelihood(TrackLengthFeature(), track, CTX) is None

    def test_min_samples_falls_back_to_pool(self, training_scenes):
        # One lone pedestrian observation: below min_samples, so no
        # per-class distribution is fitted for pedestrians.
        ped_scene = scene_of(
            [make_track("ped", {0: [make_obs(0, 0.0, cls="pedestrian",
                                            l=0.7, w=0.7, h=1.75)]})],
            scene_id="ped",
        )
        learner = FeatureDistributionLearner([VolumeFeature()], min_samples=8)
        model = learner.fit(training_scenes + [ped_scene])
        groups = model.distributions["volume"]
        assert "pedestrian" not in groups
        assert model.lookup(VolumeFeature(), "pedestrian") is groups[_POOLED]


class TestLearnedFeatureDistribution:
    def test_max_density_normalization(self, learned):
        volume = VolumeFeature()
        dist = learned.lookup(volume, "car")
        # The best value in training scores at (or near) 1.
        best = max(
            dist.likelihood(v)
            for v in [4.5 * 1.9 * 1.7 * f for f in (0.9, 0.95, 1.0, 1.05, 1.1)]
        )
        assert best > 0.8

    def test_n_samples_recorded(self, learned):
        dist = learned.lookup(VolumeFeature(), "car")
        assert dist.n_samples > 100
