"""Tests for factor-graph track class fusion."""

import numpy as np
import pytest

from repro.core.fusion import ClassPosterior, infer_track_class, uniform_confusion

from tests.core.conftest import make_obs, make_track

CLASSES = ["car", "truck", "pedestrian", "motorcycle"]


def track_with_classes(emitted):
    frames = {
        f: [make_obs(f, x=0.4 * f, cls=cls, source="model")]
        for f, cls in enumerate(emitted)
    }
    return make_track("fusion", frames)


class TestUniformConfusion:
    def test_rows_sum_to_one(self):
        matrix = uniform_confusion(CLASSES, accuracy=0.85)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_diagonal_dominant(self):
        matrix = uniform_confusion(CLASSES, accuracy=0.85)
        assert (np.diag(matrix) == 0.85).all()
        assert matrix[0, 1] == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_confusion(["one"])
        with pytest.raises(ValueError):
            uniform_confusion(CLASSES, accuracy=1.0)


class TestInferTrackClass:
    def test_unanimous_observations(self):
        posterior = infer_track_class(track_with_classes(["car"] * 6), CLASSES)
        assert posterior.map_class == "car"
        assert posterior.probability_of("car") > 0.99

    def test_majority_wins_over_flips(self):
        emitted = ["car"] * 6 + ["truck"] * 2
        posterior = infer_track_class(track_with_classes(emitted), CLASSES)
        assert posterior.map_class == "car"

    def test_margin_small_when_split(self):
        split = infer_track_class(track_with_classes(["car", "truck"] * 3), CLASSES)
        unanimous = infer_track_class(track_with_classes(["car"] * 6), CLASSES)
        assert split.margin < unanimous.margin

    def test_posterior_sums_to_one(self):
        posterior = infer_track_class(track_with_classes(["car", "truck"]), CLASSES)
        assert sum(posterior.probabilities) == pytest.approx(1.0)

    def test_prior_breaks_ties(self):
        emitted = ["car", "truck"] * 3
        prior = {"car": 0.1, "truck": 0.8, "pedestrian": 0.05, "motorcycle": 0.05}
        posterior = infer_track_class(track_with_classes(emitted), CLASSES, prior=prior)
        assert posterior.map_class == "truck"

    def test_asymmetric_confusion(self):
        # The detector (almost) never emits "pedestrian" for a true car,
        # so even one pedestrian emission strongly implies not-car.
        matrix = uniform_confusion(CLASSES, accuracy=0.9)
        car, ped = CLASSES.index("car"), CLASSES.index("pedestrian")
        matrix[car, ped] = 1e-6
        matrix[car] /= matrix[car].sum()
        emitted = ["car", "car", "pedestrian"]
        with_asym = infer_track_class(track_with_classes(emitted), CLASSES,
                                      confusion=matrix)
        plain = infer_track_class(track_with_classes(emitted), CLASSES)
        assert with_asym.probability_of("car") < plain.probability_of("car")

    def test_validation(self):
        track = track_with_classes(["car"])
        with pytest.raises(ValueError):
            infer_track_class(track, CLASSES, confusion=np.ones((2, 2)))
        with pytest.raises(ValueError):
            infer_track_class(track, ["truck", "pedestrian"])  # 'car' unknown
        with pytest.raises(ValueError):
            infer_track_class(track, CLASSES, prior={"boat": 1.0})
        from repro.core import Track

        with pytest.raises(ValueError):
            infer_track_class(Track(track_id="empty", bundles=[]), CLASSES)

    def test_probability_of_unknown_class(self):
        posterior = infer_track_class(track_with_classes(["car"]), CLASSES)
        with pytest.raises(KeyError):
            posterior.probability_of("boat")

    def test_matches_direct_bayes(self):
        """Cross-check sum-product against a hand-computed posterior."""
        emitted = ["car", "car", "truck"]
        matrix = uniform_confusion(CLASSES, accuracy=0.8)
        posterior = infer_track_class(track_with_classes(emitted), CLASSES,
                                      confusion=matrix)
        index = {c: i for i, c in enumerate(CLASSES)}
        direct = np.ones(len(CLASSES))
        for cls in emitted:
            direct *= matrix[:, index[cls]]
        direct /= direct.sum()
        np.testing.assert_allclose(posterior.probabilities, direct, atol=1e-12)

    def test_recovers_injected_class_errors(self):
        """End-to-end: the detector's class-error runs are outvoted."""
        from repro.datagen import SceneGenerator
        from repro.labelers import DetectorConfig, DetectorModel

        cfg = DetectorConfig(class_error_rate=1.0, gross_loc_rate=0.0,
                             ghost_tracks_per_scene=0.0)
        scene = SceneGenerator().generate("fusion-e2e", seed=99)
        obs, ledger = DetectorModel(cfg).predict_scene(scene, seed=99)
        by_object = {}
        for o in obs:
            by_object.setdefault(o.metadata["gt_object_id"], []).append(o)
        checked = 0
        for record in ledger.model_errors():
            group = by_object.get(record.gt_object_id)
            if group is None or len(group) < 3 * len(record.obs_ids):
                continue  # too corrupted for a majority to exist
            frames = {}
            for o in group:
                frames.setdefault(o.frame, []).append(o)
            track = make_track(record.gt_object_id, frames)
            posterior = infer_track_class(track, CLASSES)
            assert posterior.map_class == record.object_class
            checked += 1
        assert checked > 0
