"""Property-based tests of core scoring/compilation invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Scorer, Track
from repro.core.compile import CompiledScene, PotentialFactor
from repro.core.model import Observation, ObservationBundle, Scene
from repro.factorgraph import FactorGraph
from repro.geometry import Box3D


# ---------------------------------------------------------------------------
# Build arbitrary compiled scenes directly from drawn potentials, so the
# invariants are tested independent of any feature implementation.
# ---------------------------------------------------------------------------
def _make_obs(frame):
    return Observation(
        frame=frame,
        box=Box3D(x=float(frame), y=0, z=0.85, length=4.5, width=1.9, height=1.7),
        object_class="car",
        source="model",
        confidence=0.9,
    )


def build_compiled(track_potentials: list[list[float]]):
    """One track per inner list; one unary factor per potential, attached
    round-robin to the track's observations, plus one track-wide factor."""
    graph = FactorGraph()
    factors = {}
    tracks = []
    for t_idx, potentials in enumerate(track_potentials):
        n_obs = max(1, len(potentials) // 2)
        observations = [_make_obs(f) for f in range(n_obs)]
        bundles = [
            ObservationBundle(frame=o.frame, observations=[o]) for o in observations
        ]
        track = Track(track_id=f"t{t_idx}", bundles=bundles)
        tracks.append(track)
        for obs in observations:
            graph.add_variable(obs.obs_id, payload=obs)
        for p_idx, potential in enumerate(potentials):
            target = observations[p_idx % n_obs]
            name = f"f{t_idx}-{p_idx}"
            factor = PotentialFactor(potential, f"feat{p_idx}")
            graph.add_factor(name, [target.obs_id], payload=factor)
            factors[name] = factor
    scene = Scene(scene_id="prop", dt=0.2, tracks=tracks)
    compiled = CompiledScene(
        scene=scene, context=None, graph=graph, factors=factors,
        tracks={t.track_id: t for t in tracks},
    )
    return compiled, tracks


potentials_list = st.lists(
    st.lists(st.floats(min_value=1e-9, max_value=1.0), min_size=1, max_size=8),
    min_size=1,
    max_size=5,
)


@settings(max_examples=60, deadline=None)
@given(potentials_list)
def test_score_is_mean_log_potential(track_potentials):
    compiled, tracks = build_compiled(track_potentials)
    scorer = Scorer(compiled)
    for track, potentials in zip(tracks, track_potentials):
        expected = float(np.mean([math.log(p) for p in potentials]))
        assert scorer.score_track(track) == pytest.approx(expected, rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(potentials_list)
def test_scores_bounded_by_extremes(track_potentials):
    """The normalized score always lies between ln(min) and ln(max)."""
    compiled, tracks = build_compiled(track_potentials)
    scorer = Scorer(compiled)
    for track, potentials in zip(tracks, track_potentials):
        score = scorer.score_track(track)
        assert math.log(min(potentials)) - 1e-9 <= score
        assert score <= math.log(max(potentials)) + 1e-9


@settings(max_examples=60, deadline=None)
@given(potentials_list)
def test_ranking_sorted_descending(track_potentials):
    compiled, _ = build_compiled(track_potentials)
    ranked = Scorer(compiled).rank_tracks()
    scores = [s.score for s in ranked]
    assert scores == sorted(scores, reverse=True)
    assert len(ranked) == len(track_potentials)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=1, max_size=8),
    st.floats(min_value=0.1, max_value=0.9),
)
def test_adding_weaker_factor_lowers_score(potentials, weak):
    """Appending a factor weaker than the current mean lowers the score
    (and vice versa) — the normalization behaves like an average."""
    compiled_a, tracks_a = build_compiled([potentials])
    base = Scorer(compiled_a).score_track(tracks_a[0])

    compiled_b, tracks_b = build_compiled([potentials + [weak]])
    extended = Scorer(compiled_b).score_track(tracks_b[0])

    if math.log(weak) < base:
        assert extended < base + 1e-12
    else:
        assert extended >= base - 1e-12


@settings(max_examples=40, deadline=None)
@given(potentials_list)
def test_compiled_graph_bipartite_consistency(track_potentials):
    compiled, _ = build_compiled(track_potentials)
    compiled.graph.validate()
    total_potentials = sum(len(p) for p in track_potentials)
    assert compiled.graph.n_factors == total_potentials


class TestZeroPropagation:
    def test_any_zero_potential_excludes_component(self):
        compiled, tracks = build_compiled([[0.5, 0.9]])
        # Overwrite one factor with an exact zero (AOF semantics).
        name = next(iter(compiled.factors))
        compiled.factors[name] = PotentialFactor(0.0, "zeroed")
        compiled.graph.factor(name).payload.value = 0.0  # keep graph in sync
        scorer = Scorer(compiled)
        assert scorer.score_track(tracks[0]) == -math.inf
        assert scorer.rank_tracks() == []
