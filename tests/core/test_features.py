"""Tests for feature base classes and the built-in library (Table 2)."""

import math

import pytest

from repro.core import (
    SOURCE_HUMAN,
    SOURCE_MODEL,
    ClassAgreementFeature,
    CountFeature,
    DistanceFeature,
    FeatureContext,
    ModelOnlyFeature,
    Observation,
    ObservationBundle,
    Track,
    TrackLengthFeature,
    VelocityFeature,
    VolumeFeature,
    VolumeRatioFeature,
    YawRateFeature,
    default_features,
    model_error_features,
)
from repro.geometry import Box3D, Pose2D


def obs(frame=0, x=0.0, source=SOURCE_MODEL, cls="car", l=4.0, w=2.0, h=1.5, yaw=0.0):
    return Observation(
        frame=frame,
        box=Box3D(x=x, y=0, z=0.85, length=l, width=w, height=h, yaw=yaw),
        object_class=cls,
        source=source,
        confidence=0.9 if source == SOURCE_MODEL else None,
    )


def bundle(*observations):
    return ObservationBundle(frame=observations[0].frame, observations=list(observations))


def track(*bundles):
    return Track(track_id="t", bundles=list(bundles))


CTX = FeatureContext(dt=0.2, ego_poses={i: Pose2D(0.0, 0.0, 0.0) for i in range(100)})


class TestFeatureContext:
    def test_ego_pose_lookup(self):
        assert CTX.ego_pose_at(3) == Pose2D(0.0, 0.0, 0.0)
        with pytest.raises(KeyError):
            CTX.ego_pose_at(1000)

    def test_missing_ego_raises(self):
        ctx = FeatureContext(dt=0.2)
        with pytest.raises(ValueError):
            ctx.ego_pose_at(0)

    def test_from_scene_list_metadata(self):
        from repro.core import Scene

        scene = Scene(scene_id="s", dt=0.5,
                      metadata={"ego_poses": [Pose2D(1.0, 2.0, 0.0)]})
        ctx = FeatureContext.from_scene(scene)
        assert ctx.dt == 0.5
        assert ctx.ego_pose_at(0) == Pose2D(1.0, 2.0, 0.0)

    def test_from_scene_without_ego(self):
        from repro.core import Scene

        ctx = FeatureContext.from_scene(Scene(scene_id="s", dt=0.2))
        assert ctx.ego_poses is None


class TestVolumeFeature:
    def test_value(self):
        assert VolumeFeature().compute(obs(), CTX) == pytest.approx(4.0 * 2.0 * 1.5)

    def test_class_conditional_group(self):
        feature = VolumeFeature()
        assert feature.group_key(obs(cls="truck"), CTX) == "truck"


class TestDistanceFeature:
    def test_distance_value(self):
        feature = DistanceFeature()
        assert feature.compute(obs(x=30.0), CTX) == pytest.approx(30.0)

    def test_manual_potential_decays(self):
        feature = DistanceFeature(scale_m=30.0)
        near = feature.manual_potential(5.0)
        far = feature.manual_potential(60.0)
        assert near > far
        assert far == pytest.approx(math.exp(-2.0))

    def test_not_learnable(self):
        assert not DistanceFeature().learnable

    def test_validation(self):
        with pytest.raises(ValueError):
            DistanceFeature(scale_m=0.0)


class TestModelOnlyFeature:
    def test_model_only_bundle(self):
        assert ModelOnlyFeature().compute(bundle(obs()), CTX) == 1.0

    def test_mixed_bundle(self):
        mixed = bundle(obs(), obs(source=SOURCE_HUMAN))
        assert ModelOnlyFeature().compute(mixed, CTX) == 0.0

    def test_human_only_bundle(self):
        human = bundle(obs(source=SOURCE_HUMAN))
        assert ModelOnlyFeature().compute(human, CTX) == 0.0


class TestVelocityFeature:
    def test_velocity_from_center_offset(self):
        b0 = bundle(obs(frame=0, x=0.0))
        b1 = bundle(obs(frame=1, x=2.0))
        # 2 m over 0.2 s = 10 m/s.
        assert VelocityFeature().compute((b0, b1), CTX) == pytest.approx(10.0)

    def test_velocity_across_gap(self):
        b0 = bundle(obs(frame=0, x=0.0))
        b2 = bundle(obs(frame=2, x=2.0))
        # 2 m over 0.4 s = 5 m/s.
        assert VelocityFeature().compute((b0, b2), CTX) == pytest.approx(5.0)

    def test_zero_gap_returns_none(self):
        b0 = bundle(obs(frame=0))
        assert VelocityFeature().compute((b0, b0), CTX) is None

    def test_group_key_from_first_bundle(self):
        b0 = bundle(obs(frame=0, cls="motorcycle"))
        b1 = bundle(obs(frame=1, cls="motorcycle"))
        assert VelocityFeature().group_key((b0, b1), CTX) == "motorcycle"


class TestCountFeature:
    def test_filters_short_tracks(self):
        feature = CountFeature()
        short = track(bundle(obs(frame=0)), bundle(obs(frame=1)))
        assert feature.compute(short, CTX) == 0.0
        long = track(*[bundle(obs(frame=f)) for f in range(3)])
        assert feature.compute(long, CTX) == 1.0

    def test_counts_observations_not_bundles(self):
        feature = CountFeature()
        # Two bundles but three observations (one is a pair).
        t = track(
            bundle(obs(frame=0), obs(frame=0, source=SOURCE_HUMAN)),
            bundle(obs(frame=1)),
        )
        assert feature.compute(t, CTX) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CountFeature(min_observations=0)


class TestClassAgreementFeature:
    def test_agreement_values(self):
        feature = ClassAgreementFeature()
        agree = bundle(obs(), obs(source=SOURCE_HUMAN))
        assert feature.compute(agree, CTX) == 0.0
        disagree = bundle(obs(cls="car"), obs(source=SOURCE_HUMAN, cls="truck"))
        assert feature.compute(disagree, CTX) == 1.0

    def test_singleton_not_applicable(self):
        assert ClassAgreementFeature().compute(bundle(obs()), CTX) is None


class TestExtensionFeatures:
    def test_track_length(self):
        t = track(*[bundle(obs(frame=f)) for f in range(5)])
        assert TrackLengthFeature().compute(t, CTX) == 5.0

    def test_volume_ratio(self):
        b0 = bundle(obs(frame=0, l=4.0))
        b1 = bundle(obs(frame=1, l=8.0))
        assert VolumeRatioFeature().compute((b0, b1), CTX) == pytest.approx(math.log(2.0))

    def test_yaw_rate(self):
        b0 = bundle(obs(frame=0, yaw=0.0))
        b1 = bundle(obs(frame=1, yaw=0.1))
        assert YawRateFeature().compute((b0, b1), CTX) == pytest.approx(0.5)

    def test_yaw_rate_wraps(self):
        b0 = bundle(obs(frame=0, yaw=math.pi - 0.05))
        b1 = bundle(obs(frame=1, yaw=-math.pi + 0.05))
        assert YawRateFeature().compute((b0, b1), CTX) == pytest.approx(0.5)


class TestFeatureSets:
    def test_default_features_match_table2(self):
        names = {f.name for f in default_features()}
        assert names == {"volume", "distance", "model_only", "velocity", "count"}

    def test_default_without_distance(self):
        names = {f.name for f in default_features(include_distance=False)}
        assert "distance" not in names

    def test_model_error_features_follow_8_4(self):
        names = {f.name for f in model_error_features()}
        assert "distance" not in names
        assert "model_only" not in names
        assert "track_length" in names
        assert {"volume", "velocity"} <= names

    def test_items_of_dispatch(self):
        t = track(bundle(obs(frame=0)), bundle(obs(frame=1)))
        assert len(VolumeFeature().items_of(t)) == 2
        assert len(ModelOnlyFeature().items_of(t)) == 2
        assert len(VelocityFeature().items_of(t)) == 1
        assert CountFeature().items_of(t) == [t]

    def test_observations_of_dispatch(self):
        o0, o1 = obs(frame=0), obs(frame=1)
        b0, b1 = (
            ObservationBundle(frame=0, observations=[o0]),
            ObservationBundle(frame=1, observations=[o1]),
        )
        t = Track(track_id="t", bundles=[b0, b1])
        assert VolumeFeature().observations_of(o0) == [o0]
        assert ModelOnlyFeature().observations_of(b0) == [o0]
        assert VelocityFeature().observations_of((b0, b1)) == [o0, o1]
        assert CountFeature().observations_of(t) == [o0, o1]
