"""Columnar compile pipeline: vectorized ≡ scalar reference (ISSUE 1).

The scalar compile path is the executable specification; these tests
verify that the columnar fast path (ObservationTable extraction, batched
densities, array scoring, lazy graph materialization) reproduces it —
structurally (factor names, scopes, potentials) and numerically (every
component score equal to 1e-9, including ``None`` factor-free and
``-inf`` zero-potential cases) — across randomized scenes, AOFs, and
feature sets.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AspectRatioFeature,
    ClassAgreementFeature,
    ComposeAOF,
    CountFeature,
    FeatureDistributionLearner,
    Fixy,
    HeadingAlignmentFeature,
    IdentityAOF,
    InvertAOF,
    Observation,
    ObservationBundle,
    ObservationTable,
    Scorer,
    Track,
    TrackLengthFeature,
    VelocityFeature,
    VolumeAspectFeature,
    VolumeFeature,
    VolumeRatioFeature,
    YawRateFeature,
    ZeroIfAOF,
    compile_scene,
    default_features,
)
from repro.core.columnar import FeatureMatrix
from repro.core.features import ObservationFeature
from repro.core.model import SOURCE_HUMAN, SOURCE_MODEL

from tests.core.conftest import make_obs, make_track, moving_track, scene_of

TOL = 1e-9

EXTENDED_FEATURES = [
    VolumeFeature(),
    AspectRatioFeature(),
    VolumeAspectFeature(),  # d=2: exercises the product-kernel batch path
    VelocityFeature(),
    CountFeature(),
    TrackLengthFeature(),
    VolumeRatioFeature(),
    YawRateFeature(),
    ClassAgreementFeature(),
    HeadingAlignmentFeature(),
]


@pytest.fixture(scope="module")
def learned(training_scenes):
    return FeatureDistributionLearner(default_features()).fit(training_scenes)


@pytest.fixture(scope="module")
def learned_extended(training_scenes):
    return FeatureDistributionLearner(EXTENDED_FEATURES).fit(training_scenes)


def random_scene(seed: int, scene_id: str = "prop"):
    """A randomized scene: mixed classes, sources, multi-obs bundles."""
    rng = np.random.default_rng(seed)
    tracks = []
    for t in range(rng.integers(1, 6)):
        n_frames = int(rng.integers(1, 10))
        cls = rng.choice(["car", "truck"])
        dims = {"car": (4.5, 1.9, 1.7), "truck": (8.5, 2.6, 3.2)}[cls]
        speed = float(rng.uniform(0.0, 25.0))
        start = float(rng.uniform(-50.0, 50.0))
        y = float(rng.uniform(-10.0, 10.0))
        source = rng.choice([SOURCE_HUMAN, SOURCE_MODEL])
        frames = {}
        for f in range(n_frames):
            x = start + speed * 0.2 * f + float(rng.normal(0, 0.05))
            obs = [
                make_obs(
                    f, x, y=y, cls=cls, source=source,
                    l=dims[0] * float(np.exp(rng.normal(0, 0.05))),
                    w=dims[1], h=dims[2],
                    conf=float(rng.uniform(0.3, 1.0)) if source == SOURCE_MODEL else None,
                    yaw=float(rng.uniform(-3.1, 3.1)),
                )
            ]
            # Sometimes a second (model) observation, sometimes with a
            # conflicting class — exercises bundles, representatives,
            # and class-agreement.
            if rng.random() < 0.4:
                obs.append(
                    make_obs(
                        f, x + float(rng.normal(0, 0.3)), y=y,
                        cls=rng.choice(["car", "truck"]),
                        source=SOURCE_MODEL,
                        l=dims[0], w=dims[1], h=dims[2],
                        conf=float(rng.uniform(0.3, 1.0)),
                    )
                )
            frames[f] = obs
        tracks.append(make_track(f"t{t}", frames))
    return scene_of(tracks, scene_id=scene_id)


def random_aofs(seed: int, features) -> dict:
    rng = np.random.default_rng(seed)
    aofs = {}
    for feature in features:
        roll = rng.random()
        if roll < 0.25:
            aofs[feature.name] = InvertAOF()
        elif roll < 0.4:
            aofs[feature.name] = ZeroIfAOF(
                lambda item: True, label="always"
            ) if rng.random() < 0.3 else ZeroIfAOF(
                _item_is_human, label="has_human"
            )
        elif roll < 0.5:
            aofs[feature.name] = ComposeAOF(InvertAOF(), IdentityAOF())
    return aofs


def _item_is_human(item):
    if isinstance(item, Observation):
        return item.is_human
    if isinstance(item, ObservationBundle):
        return item.has_human
    if isinstance(item, Track):
        return item.has_human
    if isinstance(item, tuple):
        return item[0].has_human
    return False


def assert_same_compiled(vectorized, scalar):
    """Materialized vectorized graph ≡ eagerly-built scalar graph."""
    assert list(vectorized.factors) == list(scalar.factors)
    for name, factor_s in scalar.factors.items():
        factor_v = vectorized.factors[name]
        assert factor_v.feature_name == factor_s.feature_name
        assert factor_v.value == pytest.approx(factor_s.value, abs=TOL)
        scope_v = [v.name for v in vectorized.graph.factor_scope(name)]
        scope_s = [v.name for v in scalar.graph.factor_scope(name)]
        assert scope_v == scope_s
    assert vectorized.graph.n_variables == scalar.graph.n_variables


def assert_same_scores(scene, vectorized, scalar):
    """Every component scores identically through both paths."""
    scorer_v, scorer_s = Scorer(vectorized), Scorer(scalar)
    for track in scene.tracks:
        _assert_score_equal(
            scorer_v.score_track(track), scorer_s.score_track(track)
        )
        for bundle in track.bundles:
            _assert_score_equal(
                scorer_v.score_bundle(bundle), scorer_s.score_bundle(bundle)
            )
        for obs in track.observations:
            _assert_score_equal(
                scorer_v.score_observation(obs), scorer_s.score_observation(obs)
            )
    for method in ("rank_tracks", "rank_bundles", "rank_observations"):
        ranked_v = getattr(scorer_v, method)()
        ranked_s = getattr(scorer_s, method)()
        assert len(ranked_v) == len(ranked_s)
        for item_v, item_s in zip(ranked_v, ranked_s):
            assert item_v.track_id == item_s.track_id
            assert item_v.n_factors == item_s.n_factors
            assert item_v.score == pytest.approx(item_s.score, abs=TOL)


def _assert_score_equal(a, b):
    if b is None or a is None:
        assert a is None and b is None
    elif math.isinf(b) or math.isinf(a):
        assert a == b
    else:
        assert a == pytest.approx(b, abs=TOL)


class TestVectorizedEqualsScalar:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_default_features_randomized(self, seed, learned):
        scene = random_scene(seed)
        features = default_features()
        aofs = random_aofs(seed + 1, features)
        vec = compile_scene(scene, features, learned=learned, aofs=aofs)
        ref = compile_scene(
            scene, features, learned=learned, aofs=aofs, vectorized=False
        )
        assert_same_scores(scene, vec, ref)
        assert_same_compiled(vec, ref)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_extended_features_randomized(self, seed, learned_extended):
        scene = random_scene(seed, scene_id="ext")
        aofs = random_aofs(seed + 2, EXTENDED_FEATURES)
        vec = compile_scene(
            scene, EXTENDED_FEATURES, learned=learned_extended, aofs=aofs
        )
        ref = compile_scene(
            scene, EXTENDED_FEATURES, learned=learned_extended, aofs=aofs,
            vectorized=False,
        )
        assert_same_scores(scene, vec, ref)
        assert_same_compiled(vec, ref)

    def test_unfitted_model_gives_factor_free_components(self):
        """learned=None: only manual features fire; learnable ones skip."""
        track = moving_track("t", n_frames=4)
        scene = scene_of([track])
        features = [VolumeFeature(), VelocityFeature()]  # all learnable
        vec = compile_scene(scene, features, learned=None)
        ref = compile_scene(scene, features, learned=None, vectorized=False)
        assert Scorer(vec).score_track(track) is None
        assert Scorer(ref).score_track(track) is None
        assert vec.factors == {} and ref.factors == {}

    def test_zero_potential_matches_neg_inf(self, learned):
        track = moving_track("t", n_frames=4)
        scene = scene_of([track])
        features = default_features()
        aofs = {"count": ZeroIfAOF(lambda item: True)}
        vec = compile_scene(scene, features, learned=learned, aofs=aofs)
        ref = compile_scene(
            scene, features, learned=learned, aofs=aofs, vectorized=False
        )
        assert Scorer(vec).score_track(track) == -math.inf
        assert Scorer(ref).score_track(track) == -math.inf
        assert Scorer(vec).rank_tracks() == []

    def test_custom_noncontiguous_feature_fallback(self, learned):
        """Custom observations_of (endpoints) rides the override path."""

        class EndpointsFeature(ObservationFeature):
            name = "endpoints"
            learnable = False
            kind = "track"

            def compute(self, track, context):
                return 0.5

            def items_of(self, track):
                return [track]

            def observations_of(self, track):
                obs = track.observations
                return [obs[0], obs[-1]]

        track_a = moving_track("a", n_frames=5)
        track_b = moving_track("b", n_frames=3, start_x=40.0)
        scene = scene_of([track_a, track_b])
        features = default_features() + [EndpointsFeature()]
        vec = compile_scene(scene, features, learned=learned)
        ref = compile_scene(scene, features, learned=learned, vectorized=False)
        assert_same_scores(scene, vec, ref)
        name = "endpoints@a#0"
        scope_v = {v.name for v in vec.graph.factor_scope(name)}
        scope_s = {v.name for v in ref.graph.factor_scope(name)}
        assert scope_v == scope_s


class TestReviewRegressions:
    def test_trailing_empty_bundle_does_not_corrupt_bundle_features(self):
        """Prefix-sum bundle reductions stay exact around empty bundles."""
        from repro.core import FeatureContext, ModelOnlyFeature

        full = ObservationBundle(
            frame=0,
            observations=[
                make_obs(0, 0.0, source=SOURCE_MODEL, conf=0.9),
                make_obs(0, 0.1, source=SOURCE_MODEL, conf=0.8),
                make_obs(0, 0.2, source=SOURCE_HUMAN),
            ],
        )
        empty = ObservationBundle(frame=1, observations=[])
        track = Track(track_id="t", bundles=[full, empty])
        scene = scene_of([track])
        table = ObservationTable(scene)
        ctx = FeatureContext.from_scene(scene)
        model_only = ModelOnlyFeature()
        columnar = model_only.columnar_values(table, ctx)
        scalar = [model_only.compute(b, ctx) for b in track.bundles]
        assert list(columnar) == scalar  # human member => not model-only

        disagree = ObservationBundle(
            frame=2,
            observations=[make_obs(2, 0.0, cls="car"), make_obs(2, 0.1, cls="truck")],
        )
        track2 = Track(
            track_id="t2",
            bundles=[disagree, ObservationBundle(frame=3, observations=[])],
        )
        table2 = ObservationTable(scene_of([track2]))
        agreement = ClassAgreementFeature()
        columnar2 = agreement.columnar_values(table2, ctx)
        assert columnar2[0] == agreement.compute(disagree, ctx) == 1.0
        assert np.isnan(columnar2[1])

    def test_cross_track_members_disable_slice_fast_path(self):
        """A factor reaching into another track voids the per-track
        slice shortcut; ranking must fall back to the edge-table union
        and match the scalar reference."""
        from repro.core.features import TrackFeature

        class CrossTrackFeature(TrackFeature):
            name = "cross"
            learnable = False

            def __init__(self):
                self.partner = {}

            def compute(self, track, context):
                return 0.5 if track.track_id == "a" else 0.9

            def observations_of(self, track):
                extra = self.partner.get(track.track_id)
                if extra is not None:
                    return track.observations + extra.observations
                return track.observations

        track_a = Track(
            track_id="a",
            bundles=[ObservationBundle(frame=0, observations=[make_obs(0, 0.0)])],
        )
        track_b = Track(
            track_id="b",
            bundles=[ObservationBundle(frame=0, observations=[make_obs(0, 5.0)])],
        )
        feature = CrossTrackFeature()
        feature.partner["a"] = track_b
        scene = scene_of([track_a, track_b])
        vec = compile_scene(scene, [feature], vectorized=True)
        ref = compile_scene(scene, [feature], vectorized=False)
        assert not vec.columns.track_slices_cover_members
        scorer_v, scorer_r = Scorer(vec), Scorer(ref)
        ranked_v = scorer_v.rank_tracks()
        ranked_r = scorer_r.rank_tracks()
        assert [(i.track_id, i.n_factors) for i in ranked_v] == [
            (i.track_id, i.n_factors) for i in ranked_r
        ]
        for item_v, item_r in zip(ranked_v, ranked_r):
            assert item_v.score == pytest.approx(item_r.score, abs=TOL)
        for track in scene.tracks:
            assert scorer_v.score_track(track) == pytest.approx(
                scorer_r.score_track(track), abs=TOL
            )

    def test_scorer_cached_across_rank_calls(self, training_scenes):
        fixy = Fixy(default_features()).fit(training_scenes)
        scene = scene_of([moving_track("t", n_frames=5)], scene_id="sc")
        assert fixy.scorer(scene) is fixy.scorer(scene)
        fixy.clear_compile_cache()
        # Fresh compile after invalidation => fresh scorer.
        first = fixy.scorer(scene)
        fixy.fit(training_scenes)
        assert fixy.scorer(scene) is not first


class TestDegenerateScenes:
    """Empty tracks/bundles/scenes compile identically on both paths."""

    @pytest.mark.parametrize(
        "tracks",
        [
            [],
            [Track(track_id="empty", bundles=[])],
            [Track(track_id="b0", bundles=[ObservationBundle(frame=0, observations=[])])],
        ],
        ids=["no-tracks", "empty-track", "empty-bundle"],
    )
    def test_no_factors_either_path(self, tracks):
        from repro.core import ModelOnlyFeature, Scene

        scene = Scene(scene_id="degenerate", dt=0.2, tracks=tracks)
        features = [
            ModelOnlyFeature(), CountFeature(), ClassAgreementFeature()
        ]
        ref = compile_scene(scene, features, vectorized=False)
        vec = compile_scene(scene, features, vectorized=True)
        assert list(ref.factors) == list(vec.factors) == []
        assert vec.graph.n_variables == ref.graph.n_variables
        for track in tracks:
            assert Scorer(vec).score_track(track) == Scorer(ref).score_track(track)


class TestObservationTable:
    def test_row_order_is_track_major(self):
        a = moving_track("a", n_frames=3)
        b = moving_track("b", n_frames=2, start_x=30.0)
        scene = scene_of([a, b])
        table = ObservationTable(scene)
        expected = [o.obs_id for o in a.observations] + [
            o.obs_id for o in b.observations
        ]
        assert [o.obs_id for o in table.observations] == expected
        assert table.track_obs_slices == [(0, 3), (3, 5)]
        assert table.n_bundles == 5
        assert table.n_transitions == 3  # 2 + 1

    def test_representative_matches_bundle_method(self):
        human = make_obs(0, 1.0, source=SOURCE_HUMAN)
        low = make_obs(0, 1.1, source=SOURCE_MODEL, conf=0.4)
        high = make_obs(0, 1.2, source=SOURCE_MODEL, conf=0.9)
        bundle = ObservationBundle(frame=0, observations=[human, low, high])
        track = Track(track_id="t", bundles=[bundle])
        table = ObservationTable(scene_of([track]))
        rep_row = int(table.bundle_rep[0])
        assert table.observations[rep_row] is bundle.representative()

    def test_duplicate_obs_ids_rejected(self):
        obs = make_obs(0, 0.0)
        clone = Observation(
            frame=1, box=obs.box, object_class=obs.object_class,
            source=obs.source, obs_id=obs.obs_id,
        )
        track = Track(
            track_id="dup",
            bundles=[
                ObservationBundle(frame=0, observations=[obs]),
                ObservationBundle(frame=1, observations=[clone]),
            ],
        )
        with pytest.raises(ValueError, match="already exists"):
            ObservationTable(scene_of([track]))

    def test_feature_matrix_extracts_each_feature_once(self, learned):
        scene = scene_of([moving_track("t", n_frames=4)])
        features = default_features()
        matrix = FeatureMatrix.build(scene, features)
        assert set(matrix.columns) == {f.name for f in features}
        volume = matrix.columns["volume"]
        assert len(volume) == 4
        assert volume.valid.all()
        np.testing.assert_allclose(
            volume.values,
            [o.box.volume for o in scene.tracks[0].observations],
        )


class TestEngineFastPath:
    def test_compile_cache_reuses_compiled_scene(self, training_scenes):
        fixy = Fixy(default_features()).fit(training_scenes)
        scene = scene_of([moving_track("t", n_frames=5)], scene_id="cache")
        first = fixy.compile(scene)
        assert fixy.compile(scene) is first
        fixy.clear_compile_cache()
        assert fixy.compile(scene) is not first

    def test_fit_clears_compile_cache(self, training_scenes):
        fixy = Fixy(default_features()).fit(training_scenes)
        scene = scene_of([moving_track("t", n_frames=5)], scene_id="cache2")
        first = fixy.compile(scene)
        fixy.fit(training_scenes)
        assert fixy.compile(scene) is not first

    def test_cache_disabled(self, training_scenes):
        fixy = Fixy(
            default_features(), compile_cache_size=0
        ).fit(training_scenes)
        scene = scene_of([moving_track("t", n_frames=5)], scene_id="cache3")
        assert fixy.compile(scene) is not fixy.compile(scene)

    def test_parallel_rank_matches_serial(self, training_scenes):
        scenes = [
            random_scene(seed, scene_id=f"par-{seed}") for seed in (1, 2, 3, 4)
        ]
        serial = Fixy(default_features(), n_jobs=1).fit(training_scenes)
        parallel = Fixy(default_features(), n_jobs=3).fit(training_scenes)
        ranked_serial = serial.rank_tracks(scenes)
        ranked_parallel = parallel.rank_tracks(scenes)
        assert [
            (s.scene_id, s.track_id, s.score) for s in ranked_serial
        ] == [(s.scene_id, s.track_id, s.score) for s in ranked_parallel]

    def test_duplicate_feature_names_reported(self):
        with pytest.raises(ValueError) as excinfo:
            Fixy([VolumeFeature(), CountFeature(), VolumeFeature()])
        # Only the actual duplicate is named, not every feature.
        assert "volume" in str(excinfo.value)
        assert "count" not in str(excinfo.value)

    def test_scalar_engine_matches_vectorized(self, training_scenes):
        scene = random_scene(7, scene_id="engines")
        fast = Fixy(default_features()).fit(training_scenes)
        reference = Fixy(
            default_features(), vectorized=False, fast_density=False
        ).fit(training_scenes)
        ranked_fast = fast.rank_tracks(scene)
        ranked_ref = reference.rank_tracks(scene)
        assert [s.track_id for s in ranked_fast] == [
            s.track_id for s in ranked_ref
        ]
        for a, b in zip(ranked_fast, ranked_ref):
            assert a.score == pytest.approx(b.score, abs=1e-6)
