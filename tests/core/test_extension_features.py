"""Tests for the extension features (aspect ratio, heading alignment)."""

import math

import pytest

from repro.core import (
    AspectRatioFeature,
    FeatureContext,
    HeadingAlignmentFeature,
)
from repro.core.model import Observation, ObservationBundle
from repro.geometry import Box3D

CTX = FeatureContext(dt=0.2)


def obs(frame=0, x=0.0, y=0.0, yaw=0.0, l=4.5, w=1.9):
    return Observation(
        frame=frame,
        box=Box3D(x=x, y=y, z=0.85, length=l, width=w, height=1.7, yaw=yaw),
        object_class="car",
        source="model",
        confidence=0.9,
    )


def bundle(o):
    return ObservationBundle(frame=o.frame, observations=[o])


class TestAspectRatio:
    def test_value(self):
        assert AspectRatioFeature().compute(obs(l=4.0, w=2.0), CTX) == pytest.approx(2.0)

    def test_class_conditional(self):
        assert AspectRatioFeature().class_conditional

    def test_group_key(self):
        feature = AspectRatioFeature()
        assert feature.group_key(obs(), CTX) == "car"


class TestHeadingAlignment:
    def test_forward_motion_aligned(self):
        # Moving +x with yaw 0: perfectly aligned.
        t = (bundle(obs(frame=0, x=0.0, yaw=0.0)), bundle(obs(frame=1, x=2.0, yaw=0.0)))
        assert HeadingAlignmentFeature().compute(t, CTX) == pytest.approx(0.0)

    def test_sideways_motion_misaligned(self):
        # Moving +y with yaw 0: 90 degrees off.
        t = (bundle(obs(frame=0, y=0.0, yaw=0.0)), bundle(obs(frame=1, y=2.0, yaw=0.0)))
        assert HeadingAlignmentFeature().compute(t, CTX) == pytest.approx(math.pi / 2)

    def test_reverse_motion_is_pi(self):
        t = (bundle(obs(frame=0, x=2.0, yaw=0.0)), bundle(obs(frame=1, x=0.0, yaw=0.0)))
        assert HeadingAlignmentFeature().compute(t, CTX) == pytest.approx(math.pi)

    def test_slow_motion_not_applicable(self):
        t = (bundle(obs(frame=0, x=0.0)), bundle(obs(frame=1, x=0.05)))
        assert HeadingAlignmentFeature(min_speed_mps=1.0).compute(t, CTX) is None

    def test_zero_gap_none(self):
        b = bundle(obs(frame=0))
        assert HeadingAlignmentFeature().compute((b, b), CTX) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            HeadingAlignmentFeature(min_speed_mps=0.0)

    def test_distinguishes_ghost_drift(self, training_scenes):
        """A ghost drifting sideways scores lower than an aligned car."""
        from repro.core import Fixy, CountFeature, VelocityFeature, VolumeFeature
        from tests.core.conftest import make_obs, make_track, scene_of

        features = [VolumeFeature(), VelocityFeature(), CountFeature(),
                    HeadingAlignmentFeature()]
        fixy = Fixy(features).fit(training_scenes)

        aligned = make_track(
            "aligned",
            {f: [make_obs(f, x=2.0 * 0.2 * f, source="human")] for f in range(6)},
        )
        # Sideways drifter: moves +y while heading +x.
        sideways = make_track(
            "sideways",
            {f: [Observation(
                frame=f,
                box=Box3D(x=30.0, y=2.0 * 0.2 * f, z=0.85,
                          length=4.5, width=1.9, height=1.7, yaw=0.0),
                object_class="car", source="human",
            )] for f in range(6)},
        )
        ranked = fixy.rank_tracks(scene_of([aligned, sideways]))
        assert [s.track_id for s in ranked] == ["aligned", "sideways"]
