"""Tests for the extension features (aspect ratio, heading alignment)."""

import math

import pytest

from repro.core import (
    AspectRatioFeature,
    FeatureContext,
    HeadingAlignmentFeature,
)
from repro.core.model import Observation, ObservationBundle
from repro.geometry import Box3D

CTX = FeatureContext(dt=0.2)


def obs(frame=0, x=0.0, y=0.0, yaw=0.0, l=4.5, w=1.9):
    return Observation(
        frame=frame,
        box=Box3D(x=x, y=y, z=0.85, length=l, width=w, height=1.7, yaw=yaw),
        object_class="car",
        source="model",
        confidence=0.9,
    )


def bundle(o):
    return ObservationBundle(frame=o.frame, observations=[o])


class TestAspectRatio:
    def test_value(self):
        assert AspectRatioFeature().compute(obs(l=4.0, w=2.0), CTX) == pytest.approx(2.0)

    def test_class_conditional(self):
        assert AspectRatioFeature().class_conditional

    def test_group_key(self):
        feature = AspectRatioFeature()
        assert feature.group_key(obs(), CTX) == "car"


class TestHeadingAlignment:
    def test_forward_motion_aligned(self):
        # Moving +x with yaw 0: perfectly aligned.
        t = (bundle(obs(frame=0, x=0.0, yaw=0.0)), bundle(obs(frame=1, x=2.0, yaw=0.0)))
        assert HeadingAlignmentFeature().compute(t, CTX) == pytest.approx(0.0)

    def test_sideways_motion_misaligned(self):
        # Moving +y with yaw 0: 90 degrees off.
        t = (bundle(obs(frame=0, y=0.0, yaw=0.0)), bundle(obs(frame=1, y=2.0, yaw=0.0)))
        assert HeadingAlignmentFeature().compute(t, CTX) == pytest.approx(math.pi / 2)

    def test_reverse_motion_is_pi(self):
        t = (bundle(obs(frame=0, x=2.0, yaw=0.0)), bundle(obs(frame=1, x=0.0, yaw=0.0)))
        assert HeadingAlignmentFeature().compute(t, CTX) == pytest.approx(math.pi)

    def test_slow_motion_not_applicable(self):
        t = (bundle(obs(frame=0, x=0.0)), bundle(obs(frame=1, x=0.05)))
        assert HeadingAlignmentFeature(min_speed_mps=1.0).compute(t, CTX) is None

    def test_zero_gap_none(self):
        b = bundle(obs(frame=0))
        assert HeadingAlignmentFeature().compute((b, b), CTX) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            HeadingAlignmentFeature(min_speed_mps=0.0)

    def test_distinguishes_ghost_drift(self, training_scenes):
        """A ghost drifting sideways scores lower than an aligned car."""
        from repro.core import Fixy, CountFeature, VelocityFeature, VolumeFeature
        from tests.core.conftest import make_obs, make_track, scene_of

        features = [VolumeFeature(), VelocityFeature(), CountFeature(),
                    HeadingAlignmentFeature()]
        fixy = Fixy(features).fit(training_scenes)

        aligned = make_track(
            "aligned",
            {f: [make_obs(f, x=2.0 * 0.2 * f, source="human")] for f in range(6)},
        )
        # Sideways drifter: moves +y while heading +x.
        sideways = make_track(
            "sideways",
            {f: [Observation(
                frame=f,
                box=Box3D(x=30.0, y=2.0 * 0.2 * f, z=0.85,
                          length=4.5, width=1.9, height=1.7, yaw=0.0),
                object_class="car", source="human",
            )] for f in range(6)},
        )
        ranked = fixy.rank_tracks(scene_of([aligned, sideways]))
        assert [s.track_id for s in ranked] == ["aligned", "sideways"]


class TestVolumeAspect:
    """The d=2 joint (volume, aspect) feature — KDE product kernel at d>1."""

    def feature(self):
        from repro.core import VolumeAspectFeature

        return VolumeAspectFeature()

    def test_value_is_2d(self):
        value = self.feature().compute(obs(l=4.0, w=2.0), CTX)
        assert value == pytest.approx((4.0 * 2.0 * 1.7, 2.0))

    def test_columnar_matches_scalar(self):
        import numpy as np
        from repro.core import ObservationTable
        from tests.core.conftest import moving_track, scene_of

        scene = scene_of(
            [moving_track("a", n_frames=4, jitter=0.05, seed=3),
             moving_track("b", n_frames=3, cls="truck", l=8.5, w=2.6, h=3.2,
                          start_x=40.0)],
        )
        feature = self.feature()
        table = ObservationTable(scene)
        columnar = feature.columnar_values(table, CTX)
        assert columnar.shape == (7, 2)
        scalar = np.asarray(
            [feature.compute(o, CTX) for o in scene.observations]
        )
        np.testing.assert_allclose(columnar, scalar, rtol=0, atol=0)

    def test_fits_2d_kde_per_class(self, training_scenes):
        from repro.core import FeatureDistributionLearner

        learned = FeatureDistributionLearner([self.feature()]).fit(training_scenes)
        groups = learned.distributions["volume_aspect"]
        assert {"car", "truck"} <= set(groups)
        assert groups["car"].distribution.dim == 2

    def test_batch_equals_scalar_likelihood(self, training_scenes):
        import numpy as np
        from repro.core import FeatureContext, FeatureDistributionLearner

        feature = self.feature()
        learned = FeatureDistributionLearner([feature]).fit(training_scenes)
        scene = training_scenes[0]
        ctx = FeatureContext.from_scene(scene)
        observations = scene.observations[:40]
        values = np.asarray([feature.compute(o, ctx) for o in observations])
        groups = [feature.group_key(o, ctx) for o in observations]
        batch = learned.likelihood_batch(feature, values, groups)
        for row, o in enumerate(observations):
            assert batch[row] == pytest.approx(
                learned.likelihood(feature, o, ctx), abs=1e-12
            )

    def test_compiles_through_both_pipelines(self, training_scenes):
        from repro.core import (
            FeatureDistributionLearner, Scorer, compile_scene,
        )
        from tests.core.conftest import moving_track, scene_of

        feature = self.feature()
        learned = FeatureDistributionLearner([feature]).fit(training_scenes)
        scene = scene_of([moving_track("t", n_frames=5, jitter=0.04, seed=9)])
        vec = compile_scene(scene, [feature], learned=learned)
        ref = compile_scene(scene, [feature], learned=learned, vectorized=False)
        track = scene.tracks[0]
        assert Scorer(vec).score_track(track) == pytest.approx(
            Scorer(ref).score_track(track), abs=1e-9
        )

    def test_atypical_joint_shape_ranks_last(self, training_scenes):
        """A car-volume box with a truck-like footprint ranks below
        ordinary cars even though each marginal is individually common."""
        from repro.core import CountFeature, Fixy
        from repro.geometry import Box3D
        from tests.core.conftest import make_track, scene_of

        fixy = Fixy([self.feature(), CountFeature()]).fit(training_scenes)
        normal = make_track(
            "normal", {f: [obs(frame=f, x=2.0 * f)] for f in range(4)}
        )
        # Same volume as a car (~14.5 m^3) but stretched: 9.7m x 1.0m.
        stretched = make_track(
            "stretched",
            {f: [Observation(
                frame=f,
                box=Box3D(x=30.0 + 2.0 * f, y=0.0, z=0.85,
                          length=9.7, width=1.0, height=1.5, yaw=0.0),
                object_class="car", source="human",
            )] for f in range(4)},
        )
        ranked = fixy.rank_tracks(scene_of([normal, stretched]))
        assert [s.track_id for s in ranked] == ["normal", "stretched"]
