"""Tests for application objective functions."""

import pytest

from repro.core import (
    AOF,
    ComposeAOF,
    IdentityAOF,
    InvertAOF,
    KeepIfAOF,
    ZeroIfAOF,
)


class TestIdentity:
    def test_passthrough(self):
        aof = IdentityAOF()
        assert aof(0.37) == 0.37
        assert aof(0.0, item="anything") == 0.0

    def test_base_class_is_identity(self):
        assert AOF()(0.5) == 0.5


class TestInvert:
    def test_inverts(self):
        aof = InvertAOF()
        assert aof(0.2) == pytest.approx(0.8)
        assert aof(1.0) == pytest.approx(aof.eps)

    def test_clamps_out_of_range(self):
        aof = InvertAOF()
        assert aof(1.7) == pytest.approx(aof.eps)
        assert aof(-0.5) == pytest.approx(1.0)

    def test_floor_preserves_ordering(self):
        aof = InvertAOF()
        assert aof(0.99) > aof(1.0)
        assert aof(0.1) > aof(0.9)

    def test_eps_validated(self):
        with pytest.raises(ValueError):
            InvertAOF(eps=0.0)
        with pytest.raises(ValueError):
            InvertAOF(eps=1.0)


class TestZeroIf:
    def test_zeroes_on_predicate(self):
        aof = ZeroIfAOF(lambda item: item == "bad")
        assert aof(0.9, "bad") == 0.0
        assert aof(0.9, "good") == 0.9

    def test_none_item_passes_through(self):
        aof = ZeroIfAOF(lambda item: True)
        assert aof(0.9, None) == 0.9

    def test_label(self):
        assert "has_human" in repr(ZeroIfAOF(lambda t: True, label="has_human"))


class TestKeepIf:
    def test_keeps_on_predicate(self):
        aof = KeepIfAOF(lambda item: item == "good")
        assert aof(0.9, "good") == 0.9
        assert aof(0.9, "bad") == 0.0

    def test_none_item_kept(self):
        aof = KeepIfAOF(lambda item: False)
        assert aof(0.9, None) == 0.9


class TestCompose:
    def test_left_to_right(self):
        aof = ComposeAOF(InvertAOF(), ZeroIfAOF(lambda item: item == "drop"))
        assert aof(0.2, "keep") == pytest.approx(0.8)
        assert aof(0.2, "drop") == 0.0

    def test_requires_aofs(self):
        with pytest.raises(ValueError):
            ComposeAOF()

    def test_repr(self):
        text = repr(ComposeAOF(IdentityAOF(), InvertAOF()))
        assert "IdentityAOF" in text and "InvertAOF" in text
