"""Tests for scene compilation (§4.3, Figure 2) and scoring (§6)."""

import math

import pytest

from repro.core import (
    FeatureDistributionLearner,
    IdentityAOF,
    InvertAOF,
    Scorer,
    VolumeFeature,
    ZeroIfAOF,
    compile_scene,
    default_features,
)
from repro.core.compile import PotentialFactor

from tests.core.conftest import generic_features, make_obs, make_track, moving_track, scene_of


@pytest.fixture(scope="module")
def learned(training_scenes):
    return FeatureDistributionLearner(default_features()).fit(training_scenes)


def compile_simple(learned, tracks, features=None, **kwargs):
    scene = scene_of(tracks, scene_id="compiled")
    feats = features if features is not None else generic_features()
    return compile_scene(scene, feats, learned=learned, **kwargs)


class TestPotentialFactor:
    def test_fixed_value(self):
        factor = PotentialFactor(0.37, "volume")
        assert factor.evaluate() == 0.37
        assert factor.evaluate({"anything": 1}) == 0.37

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PotentialFactor(-0.1, "volume")


class TestCompileStructure:
    """The compiled graph matches Figure 2's schematic."""

    def test_variable_per_observation(self, learned):
        track = moving_track("t", n_frames=5)
        compiled = compile_simple(learned, [track])
        assert compiled.graph.n_variables == 5
        for obs in track.observations:
            assert compiled.graph.has_variable(obs.obs_id)

    def test_factor_kinds_and_counts(self, learned):
        track = moving_track("t", n_frames=5)
        compiled = compile_simple(learned, [track], features=default_features())
        by_feature = {}
        for name, factor in compiled.factors.items():
            by_feature.setdefault(factor.feature_name, []).append(name)
        # 5 volume + 5 distance factors (one per obs), 4 velocity
        # transitions, 1 count; no model_only factors on single-source
        # human bundles? model_only applies to every bundle (value 0/1).
        assert len(by_feature["volume"]) == 5
        assert len(by_feature["distance"]) == 5
        assert len(by_feature["velocity"]) == 4
        assert len(by_feature["count"]) == 1
        assert len(by_feature["model_only"]) == 5

    def test_edge_structure(self, learned):
        track = moving_track("t", n_frames=3)
        compiled = compile_simple(learned, [track], features=default_features())
        obs = track.observations
        # Per-observation factors touch exactly one variable; transition
        # factors touch the two adjacent observations; track factors all.
        for name, factor in compiled.factors.items():
            scope = [v.name for v in compiled.graph.factor_scope(name)]
            if factor.feature_name in ("volume", "distance", "model_only"):
                assert len(scope) == 1
            elif factor.feature_name == "velocity":
                assert len(scope) == 2
            elif factor.feature_name == "count":
                assert set(scope) == {o.obs_id for o in obs}

    def test_graph_is_bipartite_tree_for_chain(self, learned):
        # A single track compiles to a tree (no factor cycles): obs chain
        # with unary factors and pairwise transitions, plus one track-level
        # factor... the track factor over >2 obs creates a cycle with the
        # transitions, so only check bipartite validity here.
        track = moving_track("t", n_frames=4)
        compiled = compile_simple(learned, [track])
        compiled.graph.validate()

    def test_unfitted_learnable_feature_skipped(self):
        track = moving_track("t", n_frames=3)
        compiled = compile_simple(None, [track], features=default_features())
        names = {f.feature_name for f in compiled.factors.values()}
        # Only manual features produce factors without a learned model.
        assert names == {"distance", "model_only", "count"}


class TestScoringSemantics:
    def test_worked_example(self):
        """§6: score = (ln .37 + ln .39 + ln .21) / 3 = -1.17."""
        import types

        from repro.core import Scene, Track
        from repro.core.compile import CompiledScene
        from repro.factorgraph import FactorGraph

        track = moving_track("t", n_frames=2)
        o1, o2 = track.observations
        graph = FactorGraph()
        graph.add_variable(o1.obs_id, payload=o1)
        graph.add_variable(o2.obs_id, payload=o2)
        factors = {}
        for name, value, scope in [
            ("vol1", 0.37, [o1.obs_id]),
            ("vol2", 0.39, [o2.obs_id]),
            ("vel", 0.21, [o1.obs_id, o2.obs_id]),
        ]:
            factor = PotentialFactor(value, name)
            graph.add_factor(name, scope, payload=factor)
            factors[name] = factor
        scene = scene_of([track])
        compiled = CompiledScene(
            scene=scene,
            context=None,
            graph=graph,
            factors=factors,
            tracks={"t": track},
        )
        score = Scorer(compiled).score_track(track)
        expected = (math.log(0.37) + math.log(0.39) + math.log(0.21)) / 3
        assert score == pytest.approx(expected)
        assert score == pytest.approx(-1.17, abs=0.005)

    def test_shared_factor_counted_once(self, learned):
        track = moving_track("t", n_frames=2)
        compiled = compile_simple(learned, [track], features=default_features())
        scorer = Scorer(compiled)
        factor_names = compiled.factors_of_observations(track.observations)
        assert len(factor_names) == len(set(factor_names))
        # 2 volume + 2 distance + 2 model_only + 1 velocity + 1 count = 8.
        assert len(factor_names) == 8

    def test_typical_track_scores_higher_than_weird(self, learned):
        typical = moving_track("typ", n_frames=8, speed=2.0)
        weird = moving_track(
            "odd", n_frames=8, speed=30.0, l=1.0, w=4.0, h=0.3, start_x=200.0
        )
        compiled = compile_simple(learned, [typical, weird])
        scorer = Scorer(compiled)
        assert scorer.score_track(typical) > scorer.score_track(weird)

    def test_normalization_makes_lengths_comparable(self, learned):
        short = moving_track("short", n_frames=5, speed=2.0)
        long = moving_track("long", n_frames=40, speed=2.0, y=4.0)
        compiled = compile_simple(learned, [short, long])
        scorer = Scorer(compiled)
        s_short = scorer.score_track(short)
        s_long = scorer.score_track(long)
        # Same per-frame behaviour => similar normalized scores.
        assert abs(s_short - s_long) < 0.5

    def test_zero_potential_gives_neg_inf(self, learned):
        track = moving_track("t", n_frames=4)
        aofs = {"count": ZeroIfAOF(lambda item: True)}
        compiled = compile_simple(learned, [track], aofs=aofs)
        assert Scorer(compiled).score_track(track) == -math.inf

    def test_score_of_unknown_component_is_none(self, learned):
        track = moving_track("t", n_frames=3)
        other = moving_track("other", n_frames=3)
        compiled = compile_simple(learned, [track])
        scorer = Scorer(compiled)
        assert scorer.score_observations(other.observations) is None

    def test_bundle_score_includes_transitions(self, learned):
        track = moving_track("t", n_frames=3)
        compiled = compile_simple(learned, [track])
        scorer = Scorer(compiled)
        middle = track.bundles[1]
        factors = compiled.factors_of_observations(list(middle.observations))
        kinds = {compiled.factors[f].feature_name for f in factors}
        assert "velocity" in kinds  # transitions touching the middle obs
        assert "count" in kinds  # the track factor touches every obs


class TestRanking:
    def test_rank_tracks_ordering(self, learned):
        good = moving_track("good", n_frames=8, speed=2.0)
        bad = moving_track("bad", n_frames=8, speed=25.0, l=2.0, w=3.5, h=0.5,
                           start_x=100.0)
        compiled = compile_simple(learned, [bad, good])
        ranked = Scorer(compiled).rank_tracks()
        assert [s.track_id for s in ranked] == ["good", "bad"]
        assert ranked[0].score > ranked[1].score

    def test_rank_excludes_infinite(self, learned):
        track = moving_track("t", n_frames=2)  # count feature zeroes it
        compiled = compile_simple(learned, [track])
        ranked = Scorer(compiled).rank_tracks()
        assert ranked == []

    def test_rank_filter(self, learned):
        a = moving_track("a", n_frames=5)
        b = moving_track("b", n_frames=5, start_x=100.0)
        compiled = compile_simple(learned, [a, b])
        ranked = Scorer(compiled).rank_tracks(lambda t: t.track_id == "b")
        assert [s.track_id for s in ranked] == ["b"]

    def test_invert_aof_flips_ordering(self, learned, training_scenes):
        good = moving_track("good", n_frames=8, speed=2.0)
        bad = moving_track("bad", n_frames=8, speed=25.0, l=2.0, w=3.5, h=0.5,
                           start_x=100.0)
        feats = [f for f in generic_features() if f.name != "distance"]
        scene = scene_of([good, bad])
        plain = compile_scene(scene, feats, learned=learned)
        inverted = compile_scene(
            scene, feats, learned=learned,
            aofs={f.name: InvertAOF() for f in feats if f.learnable},
        )
        plain_rank = [s.track_id for s in Scorer(plain).rank_tracks()]
        inv_rank = [s.track_id for s in Scorer(inverted).rank_tracks()]
        assert plain_rank == ["good", "bad"]
        assert inv_rank == ["bad", "good"]

    def test_rank_bundles_and_observations(self, learned):
        track = moving_track("t", n_frames=5)
        compiled = compile_simple(learned, [track])
        scorer = Scorer(compiled)
        bundles = scorer.rank_bundles()
        observations = scorer.rank_observations()
        assert len(bundles) == 5
        assert len(observations) == 5
        assert all(b.track_id == "t" for b in bundles)
        # Sorted descending.
        assert all(
            bundles[i].score >= bundles[i + 1].score for i in range(len(bundles) - 1)
        )


class TestRankKindDispatch:
    def test_scorer_rank_accepts_singular_and_plural(self, learned):
        compiled = compile_simple(learned, [moving_track("t", n_frames=5)])
        scorer = Scorer(compiled)
        assert scorer.rank("track") == scorer.rank("tracks")
        assert scorer.rank("observations") == scorer.rank("observation")

    def test_typo_raises_typed_error_listing_kinds(self, learned):
        from repro.core import RANK_KINDS, UnknownRankKindError

        compiled = compile_simple(learned, [moving_track("t", n_frames=5)])
        with pytest.raises(UnknownRankKindError) as exc:
            Scorer(compiled).rank("galxies")
        assert exc.value.kind == "galxies"
        assert exc.value.valid == RANK_KINDS
        assert "tracks, bundles, observations" in str(exc.value)
        # Still a ValueError for pre-existing handlers.
        assert isinstance(exc.value, ValueError)

    def test_error_survives_pickling(self):
        import pickle

        from repro.core import UnknownRankKindError

        err = pickle.loads(pickle.dumps(UnknownRankKindError("galaxy")))
        assert err.kind == "galaxy" and "unknown rank kind" in str(err)

    def test_normalize_rejects_non_strings(self):
        from repro.core import UnknownRankKindError, normalize_rank_kind

        with pytest.raises(UnknownRankKindError):
            normalize_rank_kind(None)
        with pytest.raises(UnknownRankKindError):
            normalize_rank_kind(3)


class TestMergeRankings:
    def test_merges_sorts_and_truncates(self):
        from repro.core import ScoredItem, merge_rankings

        def item(track_id, score):
            return ScoredItem(
                item=None, score=score, scene_id="s",
                track_id=track_id, n_factors=1,
            )

        merged = merge_rankings(
            [[item("a", -1.0), item("b", -3.0)], [item("c", -2.0)]]
        )
        assert [s.track_id for s in merged] == ["a", "c", "b"]
        assert [
            s.track_id for s in merge_rankings([[item("a", -1.0)], [item("c", -2.0)]], top_k=1)
        ] == ["a"]

    def test_stable_for_equal_scores(self):
        from repro.core import ScoredItem, merge_rankings

        blocks = [
            [ScoredItem(None, -1.0, "s1", "x", 1)],
            [ScoredItem(None, -1.0, "s2", "y", 1)],
        ]
        assert [s.track_id for s in merge_rankings(blocks)] == ["x", "y"]


class TestScoredItemDict:
    def test_track_item_round_trip(self, learned):
        from repro.core import ScoredItem

        compiled = compile_simple(learned, [moving_track("t", n_frames=5)])
        scored = Scorer(compiled).rank_tracks()[0]
        payload = scored.to_dict()
        assert payload["kind"] == "track"
        assert payload["n_observations"] == 5
        assert payload["score"] == scored.score  # bit-exact
        clone = ScoredItem.from_dict(payload)
        assert clone.item is None
        assert clone.summary == payload
        assert clone.to_dict() == payload  # second hop is lossless
        assert clone.kind == "track"
        assert (clone.score, clone.track_id, clone.n_factors) == (
            scored.score, scored.track_id, scored.n_factors,
        )

    def test_kind_override_and_derivation(self, learned):
        compiled = compile_simple(learned, [moving_track("t", n_frames=5)])
        scorer = Scorer(compiled)
        obs = scorer.rank_observations()[0]
        assert obs.kind == "observation"
        assert obs.to_dict()["obs_id"]
        assert obs.to_dict("observations")["kind"] == "observation"
        bundle = scorer.rank_bundles()[0]
        assert bundle.to_dict()["kind"] == "bundle"
        assert "frame" in bundle.to_dict()

    def test_summary_excluded_from_equality(self, learned):
        from repro.core import ScoredItem

        a = ScoredItem(None, -1.0, "s", "t", 2)
        b = ScoredItem(None, -1.0, "s", "t", 2, summary={"kind": "track"})
        assert a == b
