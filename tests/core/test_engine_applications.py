"""Tests for the Fixy engine facade and the §7 application pipelines."""

import pytest

from repro.core import (
    Fixy,
    MissingObservationFinder,
    MissingTrackFinder,
    ModelErrorFinder,
    ObservationBundle,
    Track,
    VolumeFeature,
    default_features,
    top_k_per_class,
)

from tests.core.conftest import generic_features, make_obs, make_track, moving_track, scene_of


@pytest.fixture(scope="module")
def fitted_fixy(training_scenes):
    # Generic ranking over human-labeled tracks: exclude the model-only
    # selector, which is meaningful only inside the missing-label apps.
    return Fixy(generic_features()).fit(training_scenes)


class TestFixyEngine:
    def test_requires_features(self):
        with pytest.raises(ValueError):
            Fixy([])

    def test_rejects_duplicate_feature_names(self):
        with pytest.raises(ValueError):
            Fixy([VolumeFeature(), VolumeFeature()])

    def test_fit_required_before_rank(self, training_scenes):
        fixy = Fixy(default_features())
        with pytest.raises(RuntimeError):
            fixy.rank_tracks(scene_of([moving_track("t", n_frames=5)]))
        fixy.fit(training_scenes)
        assert fixy.is_fitted

    def test_fit_requires_scenes(self):
        with pytest.raises(ValueError):
            Fixy(default_features()).fit([])

    def test_manual_only_features_need_no_fit(self):
        from repro.core import CountFeature, DistanceFeature

        fixy = Fixy([DistanceFeature(), CountFeature()])
        ranked = fixy.rank_tracks(scene_of([moving_track("t", n_frames=5)]))
        assert len(ranked) == 1

    def test_rank_accepts_single_scene_or_list(self, fitted_fixy):
        scene_a = scene_of([moving_track("a", n_frames=5)], scene_id="sa")
        scene_b = scene_of([moving_track("b", n_frames=5)], scene_id="sb")
        single = fitted_fixy.rank_tracks(scene_a)
        both = fitted_fixy.rank_tracks([scene_a, scene_b])
        assert len(single) == 1
        assert len(both) == 2
        assert {s.scene_id for s in both} == {"sa", "sb"}

    def test_top_k(self, fitted_fixy):
        scenes = scene_of(
            [moving_track(f"t{i}", n_frames=5, start_x=50.0 * i) for i in range(5)]
        )
        assert len(fitted_fixy.rank_tracks(scenes, top_k=3)) == 3


class TestTopKPerClass:
    def test_limits_per_class(self, fitted_fixy):
        tracks = [
            moving_track(f"car{i}", n_frames=5, start_x=40.0 * i) for i in range(4)
        ] + [
            moving_track(
                f"truck{i}", n_frames=5, cls="truck", l=8.5, w=2.6, h=3.2,
                speed=1.5, start_x=300.0 + 40.0 * i,
            )
            for i in range(4)
        ]
        ranked = fitted_fixy.rank_tracks(scene_of(tracks))
        limited = top_k_per_class(ranked, k=2)
        classes = [s.item.majority_class() for s in limited]
        assert classes.count("car") == 2
        assert classes.count("truck") == 2
        # Order preserved.
        scores = [s.score for s in limited]
        by_class = {}
        for s in limited:
            by_class.setdefault(s.item.majority_class(), []).append(s.score)
        for vals in by_class.values():
            assert vals == sorted(vals, reverse=True)


def mixed_scene():
    """A scene with: a human-labeled track (model+human bundles), a clean
    model-only track (missed label), and a junk model-only track."""
    labeled = {}
    for f in range(8):
        x = 2.0 * 0.2 * f
        labeled[f] = [
            make_obs(f, x, source="human"),
            make_obs(f, x + 0.05, source="model", conf=0.9),
        ]
    missed = {}
    for f in range(8):
        missed[f] = [make_obs(f, 30.0 + 2.0 * 0.2 * f, y=5.0, source="model", conf=0.9)]
    junk = {}
    for f in range(0, 8, 2):
        junk[f] = [
            make_obs(f, 60.0 + 5.0 * f, y=-5.0, source="model",
                     l=1.0 + f, w=3.0, h=0.4, conf=0.5)
        ]
    tracks = [
        make_track("labeled", labeled),
        make_track("missed", missed),
        make_track("junk", junk),
    ]
    return scene_of(tracks, scene_id="mixed")


class TestMissingTrackFinder:
    def test_only_model_only_tracks_ranked(self, training_scenes):
        finder = MissingTrackFinder().fit(training_scenes)
        ranked = finder.rank(mixed_scene())
        ids = [s.track_id for s in ranked]
        assert "labeled" not in ids
        assert set(ids) <= {"missed", "junk"}

    def test_consistent_track_ranks_first(self, training_scenes):
        finder = MissingTrackFinder().fit(training_scenes)
        ranked = finder.rank(mixed_scene())
        assert ranked[0].track_id == "missed"

    def test_top_k_respected(self, training_scenes):
        finder = MissingTrackFinder().fit(training_scenes)
        assert len(finder.rank(mixed_scene(), top_k=1)) == 1


class TestMissingObservationFinder:
    def test_finds_model_bundle_in_human_track(self, training_scenes):
        # A human-labeled track where one frame only has a model box.
        frames = {}
        for f in range(8):
            x = 2.0 * 0.2 * f
            members = [make_obs(f, x + 0.05, source="model", conf=0.9)]
            if f != 4:
                members.append(make_obs(f, x, source="human"))
            frames[f] = members
        track = make_track("partial", frames)
        scene = scene_of([track], scene_id="partial-scene")
        finder = MissingObservationFinder().fit(training_scenes)
        ranked = finder.rank(scene)
        assert len(ranked) == 1
        assert ranked[0].item.frame == 4

    def test_model_only_track_excluded(self, training_scenes):
        finder = MissingObservationFinder().fit(training_scenes)
        ranked = finder.rank(mixed_scene())
        # No model-only bundle lives inside a human-containing track here.
        assert all(s.track_id not in ("missed", "junk") for s in ranked)


class TestModelErrorFinder:
    def test_junk_ranks_above_clean(self, training_scenes):
        finder = ModelErrorFinder().fit(training_scenes)
        scene = mixed_scene()
        ranked = finder.rank(scene)
        ids = [s.track_id for s in ranked]
        assert ids.index("junk") < ids.index("missed")

    def test_exclude_predicate(self, training_scenes):
        finder = ModelErrorFinder().fit(training_scenes)
        ranked = finder.rank(
            mixed_scene(), exclude=lambda t: t.track_id == "junk"
        )
        assert all(s.track_id != "junk" for s in ranked)

    def test_human_only_tracks_never_ranked(self, training_scenes):
        human = moving_track("humans", n_frames=6, source="human")
        scene = scene_of([human])
        finder = ModelErrorFinder().fit(training_scenes)
        assert finder.rank(scene) == []


class TestFixyRankDispatch:
    """Fixy.rank is the supported imperative surface; rank_* are shims."""

    def test_rank_matches_legacy_methods(self, fitted_fixy):
        scene = scene_of([moving_track(f"t{i}", n_frames=5, start_x=30.0 * i)
                          for i in range(3)], scene_id="dispatch")
        with pytest.warns(DeprecationWarning):
            legacy = fitted_fixy.rank_tracks(scene, top_k=2)
        assert fitted_fixy.rank(scene, "tracks", top_k=2) == legacy

    def test_rank_typo_is_typed_before_compiling(self, fitted_fixy):
        from repro.core import UnknownRankKindError

        with pytest.raises(UnknownRankKindError, match="unknown rank kind"):
            fitted_fixy.rank(scene_of([moving_track("t", n_frames=5)]), "galaxy")

    def test_rank_kind_singular_accepted(self, fitted_fixy):
        scene = scene_of([moving_track("t", n_frames=5)])
        assert fitted_fixy.rank(scene, "track") == fitted_fixy.rank(scene, "tracks")

    def test_rank_n_jobs_override_identical(self, fitted_fixy):
        scenes = [
            scene_of([moving_track(f"t{i}", n_frames=5)], scene_id=f"nj{i}")
            for i in range(4)
        ]
        serial = fitted_fixy.rank(scenes, "tracks", n_jobs=1)
        threaded = fitted_fixy.rank(scenes, "tracks", n_jobs=3)
        assert serial == threaded

    @pytest.mark.parametrize(
        "method,kind",
        [
            ("rank_tracks", "tracks"),
            ("rank_bundles", "bundles"),
            ("rank_observations", "observations"),
        ],
    )
    def test_legacy_rank_methods_warn_and_delegate(self, fitted_fixy, method, kind):
        scene = scene_of([moving_track("t", n_frames=5)], scene_id="warns")
        with pytest.warns(DeprecationWarning, match=f"Fixy.{method}"):
            legacy = getattr(fitted_fixy, method)(scene)
        assert legacy == fitted_fixy.rank(scene, kind)
