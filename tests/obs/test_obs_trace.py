"""Unit tests for span-based tracing: nesting and parentage, ambient
(contextvar) vs explicit traces, cross-process stitching via
``extend_dicts``, and the JSON round-trip."""

import json
import threading

import pytest

from repro.obs.trace import Span, Trace, activate, current_trace, span


class TestSpanRecord:
    def test_to_dict_omits_empty_attrs(self):
        s = Span(
            name="x", trace_id="t", span_id="s", parent_id=None,
            start_s=1.0, dur_s=0.5,
        )
        d = s.to_dict()
        assert "attrs" not in d
        s.attrs["k"] = "v"
        assert s.to_dict()["attrs"] == {"k": "v"}

    def test_round_trip(self):
        s = Span(
            name="x", trace_id="t", span_id="s", parent_id="p",
            start_s=1.0, dur_s=0.5, attrs={"a": 1},
        )
        assert Span.from_dict(s.to_dict()).to_dict() == s.to_dict()


class TestAmbientSpans:
    def test_no_ambient_trace_is_a_noop(self):
        assert current_trace() is None
        with span("orphan") as record:
            record.attrs["ignored"] = True  # must not raise
        assert current_trace() is None

    def test_nesting_sets_parentage(self):
        trace = Trace()
        with span("outer", trace=trace) as outer:
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = {s.name: s for s in trace.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].trace_id == trace.trace_id

    def test_activate_makes_trace_ambient(self):
        trace = Trace()
        with activate(trace):
            assert current_trace() is trace
            with span("child"):
                pass
        assert current_trace() is None
        assert [s.name for s in trace.spans()] == ["child"]

    def test_explicit_trace_ignores_foreign_ambient_parent(self):
        # A span given an explicit trace must not inherit a parent id
        # from a *different* ambient trace — ids are trace-local.
        ambient, explicit = Trace(), Trace()
        with span("ambient_root", trace=ambient):
            with span("cross", trace=explicit) as record:
                assert record.parent_id is None

    def test_explicit_parent_override(self):
        trace = Trace()
        with span("a", trace=trace, parent="ffff000011112222") as record:
            assert record.parent_id == "ffff000011112222"

    def test_exception_marks_span_and_propagates(self):
        trace = Trace()
        with pytest.raises(RuntimeError):
            with span("boom", trace=trace):
                raise RuntimeError("x")
        (record,) = trace.spans()
        assert record.attrs["error"] == "RuntimeError"
        assert record.dur_s >= 0

    def test_duration_recorded(self):
        trace = Trace()
        with span("timed", trace=trace):
            pass
        (record,) = trace.spans()
        assert record.dur_s >= 0
        assert record.start_s > 0


class TestTrace:
    def test_ids_unique(self):
        ids = {Trace().trace_id for _ in range(64)}
        assert len(ids) == 64

    def test_concurrent_adds(self):
        trace = Trace()

        def hammer():
            for _ in range(500):
                with span("t", trace=trace):
                    pass

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace) == 2_000

    def test_extend_dicts_reparents_foreign_roots(self):
        # Worker spans arrive with their own trace_id and a root whose
        # parent is unset; stitching adopts them under the dispatch span.
        coordinator = Trace()
        with span("dispatch", trace=coordinator) as dispatch:
            pass
        worker = Trace()
        with span("worker.audit", trace=worker):
            with span("compile"):
                pass
        coordinator.extend_dicts(
            worker.span_dicts(), reparent_roots_to=dispatch.span_id
        )
        spans = {s.name: s for s in coordinator.spans()}
        assert spans["worker.audit"].parent_id == dispatch.span_id
        assert spans["compile"].parent_id == spans["worker.audit"].span_id
        assert all(
            s.trace_id == coordinator.trace_id for s in coordinator.spans()
        )

    def test_to_dict_round_trip(self):
        trace = Trace()
        with span("a", trace=trace, attrs={"k": 1}):
            with span("b"):
                pass
        restored = Trace.from_dict(trace.to_dict())
        assert restored.trace_id == trace.trace_id
        assert restored.to_dict() == trace.to_dict()

    def test_jsonl_one_span_per_line(self):
        trace = Trace()
        with span("a", trace=trace):
            with span("b"):
                pass
        lines = trace.to_jsonl().strip().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert {p["name"] for p in parsed} == {"a", "b"}
        assert all(p["trace_id"] == trace.trace_id for p in parsed)
