"""Unit tests for the dependency-free metrics registry: counter and
gauge semantics, histogram bucketing, thread-safety under concurrent
increments, and the Prometheus text exposition format."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    Stopwatch,
    get_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("req_total", "requests")
        assert c.value() == 0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        assert c.total() == 3.5

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("req_total", "requests")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_series_are_independent(self, registry):
        c = registry.counter("ops_total", "ops", labelnames=("op",))
        c.inc(op="audit")
        c.inc(3, op="rank")
        assert c.value(op="audit") == 1
        assert c.value(op="rank") == 3
        assert c.total() == 4

    def test_label_mismatch_rejected(self, registry):
        c = registry.counter("ops_total", "ops", labelnames=("op",))
        with pytest.raises(ValueError):
            c.inc(wrong="x")
        with pytest.raises(ValueError):
            c.inc()  # missing the required label

    def test_concurrent_increments_lose_nothing(self, registry):
        c = registry.counter("hits_total", "hits", labelnames=("worker",))
        n_threads, per_thread = 8, 2_000

        def hammer(i):
            label = f"w{i % 2}"
            for _ in range(per_thread):
                c.inc(worker=label)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.total() == n_threads * per_thread
        assert c.value(worker="w0") == c.value(worker="w1")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("inflight", "in-flight requests")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4


class TestHistogram:
    def test_bucketing_is_cumulative(self, registry):
        h = registry.histogram(
            "lat_seconds", "latency", buckets=(0.01, 0.1, 1.0)
        )
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        series = h.series()[0]
        assert series["buckets"]["0.01"] == 1
        assert series["buckets"]["0.1"] == 2
        assert series["buckets"]["1.0"] == 3
        assert series["buckets"]["+Inf"] == 4
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(5.555)

    def test_boundary_lands_in_its_bucket(self, registry):
        # Prometheus buckets are upper-inclusive: le="0.1" counts 0.1.
        h = registry.histogram("b_seconds", "b", buckets=(0.1, 1.0))
        h.observe(0.1)
        series = h.series()[0]
        assert series["buckets"]["0.1"] == 1

    def test_default_buckets_cover_latency_range(self, registry):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 5.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_timer_context_manager_observes(self, registry):
        h = registry.histogram("t_seconds", "t")
        with h.time() as timer:
            pass
        assert timer.s >= 0
        assert h.series()[0]["count"] == 1

    def test_concurrent_observations(self, registry):
        h = registry.histogram("c_seconds", "c", buckets=(0.5,))

        def hammer():
            for _ in range(1_000):
                h.observe(0.25)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        series = h.series()[0]
        assert series["count"] == 4_000
        assert series["buckets"]["0.5"] == 4_000


class TestRegistry:
    def test_get_or_create_is_idempotent(self, registry):
        a = registry.counter("x_total", "x")
        b = registry.counter("x_total", "x")
        assert a is b

    def test_type_conflict_rejected(self, registry):
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_labelname_conflict_rejected(self, registry):
        registry.counter("x_total", "x", labelnames=("op",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "x", labelnames=("kind",))

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("2bad", "help")
        with pytest.raises(ValueError):
            registry.counter("bad-name", "help")

    def test_snapshot_round_trips_as_plain_data(self, registry):
        import json

        registry.counter("a_total", "a").inc(2)
        registry.histogram("b_seconds", "b", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["a_total"]["type"] == "counter"
        assert snap["b_seconds"]["type"] == "histogram"

    def test_summary_is_counter_totals(self, registry):
        registry.counter("a_total", "a").inc(3)
        registry.gauge("g", "g").set(7)
        summary = registry.summary()
        assert summary["a_total"] == 3
        assert "g" not in summary

    def test_reset_drops_metrics(self, registry):
        registry.counter("a_total", "a").inc(5)
        registry.reset()
        assert registry.names() == []
        # Re-registering after a reset starts from scratch.
        assert registry.counter("a_total", "a").total() == 0


class TestExposition:
    def test_render_format(self, registry):
        c = registry.counter("req_total", "requests served", ("op",))
        c.inc(2, op="audit")
        text = registry.render()
        assert "# HELP req_total requests served" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{op="audit"} 2' in text
        assert text.endswith("\n")

    def test_render_histogram_samples(self, registry):
        h = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = registry.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert "lat_seconds_sum 0.55" in text

    def test_render_escapes_label_values(self, registry):
        c = registry.counter("e_total", 'has "quotes" and \\ slash', ("p",))
        c.inc(p='a"b\\c\nd')
        text = registry.render()
        assert 'p="a\\"b\\\\c\\nd"' in text
        assert '# HELP e_total has "quotes" and \\\\ slash' in text

    def test_render_parses_line_by_line(self, registry):
        # Every non-comment line must be `name{labels} value` or
        # `name value` — the contract a scraper relies on.
        registry.counter("a_total", "a").inc()
        registry.gauge("g", "g", ("k",)).set(1.5, k="v")
        registry.histogram("h_seconds", "h", buckets=(1.0,)).observe(2.0)
        for line in registry.render().splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # must parse
            assert name_part[0].isalpha() or name_part[0] == "_"


class TestStopwatch:
    def test_elapsed_and_restart(self):
        watch = Stopwatch()
        first = watch.s
        assert first >= 0
        watch.restart()
        assert watch.s <= watch.s  # monotone within the same watch


def test_module_registry_is_shared():
    assert get_registry() is get_registry()
