"""Integration tests: the experiments reproduce the paper's shape.

These run the real experiment code on reduced dataset sizes, asserting
the *relationships* the paper reports (who wins, roughly by how much) —
not absolute numbers. The full-size runs live in ``benchmarks/``.
"""

import math

import pytest

from repro.datasets import SYNTHETIC_INTERNAL, SYNTHETIC_LYFT
from repro.eval import experiments as ex


N_TRAIN = 4
N_VAL = 8


@pytest.fixture(scope="module")
def table3_result():
    return ex.table3(n_train_scenes=N_TRAIN, n_val_scenes=N_VAL)


class TestGetDataset:
    def test_memoized(self):
        a = ex.get_dataset(SYNTHETIC_INTERNAL, N_TRAIN, 2)
        b = ex.get_dataset(SYNTHETIC_INTERNAL, N_TRAIN, 2)
        assert a is b

    def test_sizes(self):
        ds = ex.get_dataset(SYNTHETIC_LYFT, N_TRAIN, 3)
        assert len(ds.train_scenes) == N_TRAIN
        assert len(ds.val_scenes) == 3


class TestTable3Shape:
    def test_fixy_beats_baselines_on_lyft(self, table3_result):
        fixy = table3_result.lookup("Fixy", "Lyft")
        rand = table3_result.lookup("Ad-hoc MA (rand)", "Lyft")
        conf = table3_result.lookup("Ad-hoc MA (conf)", "Lyft")
        assert fixy.precision_at_10 > rand.precision_at_10
        assert fixy.precision_at_10 > conf.precision_at_10

    def test_fixy_beats_baselines_on_internal(self, table3_result):
        fixy = table3_result.lookup("Fixy", "Internal")
        rand = table3_result.lookup("Ad-hoc MA (rand)", "Internal")
        assert fixy.precision_at_10 >= rand.precision_at_10

    def test_fixy_precision_in_paper_band(self, table3_result):
        """Paper: 69% (Lyft) and 76% (Internal) P@10; allow a wide band."""
        for dataset in ("Lyft", "Internal"):
            fixy = table3_result.lookup("Fixy", dataset)
            assert 0.5 <= fixy.precision_at_10 <= 1.0

    def test_to_text_renders_all_rows(self, table3_result):
        text = table3_result.to_text()
        assert "Fixy" in text and "Ad-hoc MA (rand)" in text
        assert text.count("%") >= 18

    def test_lookup_unknown(self, table3_result):
        with pytest.raises(KeyError):
            table3_result.lookup("Fixy", "Waymo")


class TestRecallExperiment:
    def test_recall_in_paper_band(self):
        result = ex.recall_experiment()
        # Paper: 24 missing tracks, recall 75%. Band: a dense failed-audit
        # scene with >= 15 missing tracks and recall >= 50%.
        assert result.n_missing_tracks >= 15
        assert result.recall >= 0.5
        assert result.n_found == sum(result.per_class_found.values())
        assert "recall" in result.to_text()


class TestSceneCoverage:
    def test_coverage_high(self):
        result = ex.scene_coverage(n_val_scenes=N_VAL)
        assert result.n_scenes_with_errors > 0
        # Paper: 100% of error scenes have a true error in the top 10.
        assert result.coverage >= 0.9
        assert "coverage" in result.to_text()


class TestMissingObservation:
    def test_errors_surface_near_top(self):
        result = ex.missing_observation_experiment()
        assert result.n_instances > 0
        assert result.n_surfaced >= result.n_instances * 0.7
        # Paper: the (single) instance ranked first. Ours: most instances
        # rank above every clean candidate.
        assert result.fraction_rank_1 >= 0.6
        assert result.mean_adjusted_rank < 3.0
        assert "adjusted" in result.to_text()


class TestModelErrors:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.model_errors_experiment(n_scenes=3)

    def test_fixy_beats_uncertainty(self, result):
        assert result.fixy_precision_at_10 > result.uncertainty_precision_at_10

    def test_high_confidence_errors_found(self, result):
        """Paper: Fixy finds errors with confidence as high as 95%."""
        assert result.max_confidence_of_found_error >= 0.9
        assert result.n_high_conf_errors_found > 0

    def test_to_text(self, result):
        assert "uncertainty" in result.to_text()


class TestRuntime:
    def test_under_paper_budget(self):
        result = ex.runtime_experiment()
        assert result.scene_duration_s == pytest.approx(15.0)
        # Paper: < 5 s per 15 s scene on one core.
        assert result.rank_seconds < 5.0
        assert result.end_to_end_seconds < 5.0


class TestFigureCaseStudies:
    @pytest.fixture(scope="class")
    def studies(self):
        return {r.name: r for r in ex.figure_case_studies()}

    def test_fig4_beats_fig5(self, studies):
        values = dict(studies["Figure 4 vs 5"].values)
        assert values["occluded motorcycle score"] > values["spurious track score"]

    def test_fig9_ghost_found_by_fixy_not_mas(self, studies):
        values = dict(studies["Figure 9"].values)
        assert values["flagged by appear/flicker/multibox"] == 0.0
        assert values["Fixy rank of ghost (1 = top)"] == 1.0

    def test_fig67_both_scored(self, studies):
        values = dict(studies["Figure 6 vs 7"].values)
        assert values["consistent bundle score"] > -90
        assert values["inconsistent bundle score"] > -90

    def test_renders(self, studies):
        for result in studies.values():
            assert result.name in result.to_text()
