"""Tests for ranking metrics and reporting."""

import math

import pytest

from repro.eval import (
    format_kv,
    format_table,
    mean_or_nan,
    precision_at_k,
    recall_of_set,
    summarize_precisions,
)


class TestPrecisionAtK:
    def test_basic(self):
        hits = [True, True, False, True]
        assert precision_at_k(hits, 4) == pytest.approx(0.75)
        assert precision_at_k(hits, 2) == pytest.approx(1.0)

    def test_fewer_flagged_than_k(self):
        # Paper: "we use the maximum number in these cases".
        assert precision_at_k([True, False], 10) == pytest.approx(0.5)

    def test_empty(self):
        assert precision_at_k([], 10) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([True], 0)

    def test_k_one(self):
        assert precision_at_k([False, True], 1) == 0.0
        assert precision_at_k([True, False], 1) == 1.0


class TestRecallOfSet:
    def test_basic(self):
        assert recall_of_set({"a", "b"}, {"a", "b", "c", "d"}) == pytest.approx(0.5)

    def test_found_outside_total_ignored(self):
        assert recall_of_set({"a", "zzz"}, {"a", "b"}) == pytest.approx(0.5)

    def test_empty_total_raises(self):
        with pytest.raises(ValueError):
            recall_of_set({"a"}, set())

    def test_duplicates_ignored(self):
        assert recall_of_set(["a", "a"], ["a", "b"]) == pytest.approx(0.5)


class TestSummaries:
    def test_mean_or_nan(self):
        assert mean_or_nan([1.0, 3.0]) == 2.0
        assert math.isnan(mean_or_nan([]))

    def test_summarize(self):
        per_scene = [
            [True] * 10,
            [True, False] * 5,
        ]
        summary = summarize_precisions("Fixy", "Lyft", per_scene)
        assert summary.precision_at_10 == pytest.approx(0.75)
        assert summary.precision_at_1 == pytest.approx(1.0)
        assert summary.n_scenes == 2
        row = summary.as_row()
        assert row[0] == "Fixy"
        assert row[2] == "75%"

    def test_empty_scene_counts_as_zero(self):
        summary = summarize_precisions("m", "d", [[True] * 10, []])
        assert summary.precision_at_10 == pytest.approx(0.5)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["A", "Long header"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert "Long header" in lines[0]
        # All rows align on the second column.
        col = lines[0].index("Long header")
        assert lines[2][col] == "1"

    def test_format_table_title_and_errors(self):
        text = format_table(["A"], [["x"]], title="T")
        assert text.splitlines()[0] == "T"
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only one"]])

    def test_format_kv(self):
        text = format_kv([("key", 1), ("longer key", "v")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("key")
        assert lines[2].startswith("longer key")
