"""Tests for the full-report harness plumbing (without running the full,
expensive experiment set — that lives in benchmarks/)."""

from dataclasses import dataclass

import pytest

from repro.eval.harness import FullReport


@dataclass
class _StubResult:
    text: str

    def to_text(self) -> str:
        return self.text


class TestFullReport:
    def test_get_and_to_text(self):
        report = FullReport()
        report.sections.append(("alpha", _StubResult("ALPHA RESULT")))
        report.sections.append(("beta", _StubResult("BETA RESULT")))
        assert report.get("alpha").text == "ALPHA RESULT"
        text = report.to_text()
        assert "ALPHA RESULT" in text and "BETA RESULT" in text
        assert text.index("ALPHA") < text.index("BETA")

    def test_list_sections_flattened(self):
        report = FullReport()
        report.sections.append(
            ("figures", [_StubResult("FIG A"), _StubResult("FIG B")])
        )
        text = report.to_text()
        assert "FIG A" in text and "FIG B" in text

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            FullReport().get("nope")
