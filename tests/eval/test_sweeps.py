"""Tests for the sensitivity sweeps (reduced sizes)."""

import pytest

from repro.eval.sweeps import (
    SweepPoint,
    SweepResult,
    training_size_sweep,
    vendor_noise_sweep,
)


class TestSweepResult:
    def test_to_text(self):
        result = SweepResult(name="S", parameter_name="p")
        result.points.append(SweepPoint(0.1, 0.8, 0.5, 3.0))
        text = result.to_text()
        assert "S" in text and "80%" in text and "50%" in text

    def test_fixy_curve(self):
        result = SweepResult(name="S", parameter_name="p")
        result.points.append(SweepPoint(0.1, 0.8, 0.5, 3.0))
        result.points.append(SweepPoint(0.2, 0.9, 0.5, 5.0))
        assert result.fixy_curve == [0.8, 0.9]


@pytest.fixture(scope="module")
def noise_sweep():
    return vendor_noise_sweep(miss_rates=(0.1, 0.4), n_scenes=2)


class TestVendorNoiseSweep:
    def test_points_cover_rates(self, noise_sweep):
        assert [p.parameter for p in noise_sweep.points] == [0.1, 0.4]

    def test_errors_grow_with_noise(self, noise_sweep):
        lo, hi = noise_sweep.points
        assert hi.n_errors_per_scene > lo.n_errors_per_scene

    def test_precisions_in_range(self, noise_sweep):
        for point in noise_sweep.points:
            assert 0.0 <= point.fixy_precision_at_10 <= 1.0
            assert 0.0 <= point.baseline_precision_at_10 <= 1.0


class TestTrainingSizeSweep:
    def test_learning_curve_sane(self):
        result = training_size_sweep(n_train_options=(1, 4), n_scenes=2)
        assert len(result.points) == 2
        # More data should not make things catastrophically worse.
        assert result.fixy_curve[1] >= result.fixy_curve[0] - 0.3
