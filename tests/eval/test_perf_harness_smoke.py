"""Smoke test for benchmarks/run_perf_harness.py (--smoke mode).

The harness is a standalone script, so nothing else in the test suite
imports it — without this test it could silently rot while the modules
it drives evolve. ``--smoke`` shrinks every measurement to a few
seconds, skips the pytest-benchmark child run, and still writes the
full BENCH_scaling.json layout. Sections a partial run skips are
carried over from the committed baseline instead of erased, so the
perf trajectory survives partial reruns.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
HARNESS = REPO_ROOT / "benchmarks" / "run_perf_harness.py"


@pytest.fixture(scope="module")
def harness_module():
    spec = importlib.util.spec_from_file_location("run_perf_harness", HARNESS)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_smoke_writes_full_report(harness_module, tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = harness_module.main(["--smoke", "--out", str(out)])
    assert code == 0

    report = json.loads(out.read_text())
    assert report["generated_at"] > 0

    ab = report["ab"]
    assert ab["cases"] and ab["cases"][0]["speedup"] is not None

    serving = report["serving"]
    delta = serving["delta_vs_full"]
    assert delta["n_tracks"] >= 1
    assert delta["delta_ms"] > 0 and delta["full_ms"] > 0
    assert delta["speedup"] is not None

    sharding = serving["sharding"]
    assert sharding["byte_identical"] is True
    assert sharding["process_cases"][0]["n_workers"] == 1
    assert sharding["process_cases"][0]["scenes_per_s"] > 0

    remote = serving["remote"]
    assert remote["byte_identical"] is True
    assert remote["worker_cases"][0]["n_workers"] == 2  # --smoke sweep
    assert remote["worker_cases"][0]["scenes_per_s"] > 0
    partitions = remote["worker_cases"][0]["partitions"]
    assert sum(p["n_scenes"] for p in partitions) == remote["n_scenes"]

    gateway = serving["gateway"]
    assert gateway["n_clients"] >= 2
    assert gateway["sustained"]["all_answered"] is True
    assert gateway["shed"]["typed_overloaded"] is True
    assert gateway["coalesce"]["hit_ratio"] >= 0.5
    assert gateway["byte_identity"]["byte_identical"] is True

    # --smoke skips the pytest-benchmark child run; the committed
    # baseline's section is carried over rather than erased (and this
    # run's generated_at wins).
    baseline_path = REPO_ROOT / "BENCH_scaling.json"
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        if "pytest_benchmarks" in baseline:
            assert (
                report["pytest_benchmarks"] == baseline["pytest_benchmarks"]
            )
        assert report["generated_at"] != baseline["generated_at"]
    else:
        assert "pytest_benchmarks" not in report

    printed = capsys.readouterr().out
    assert "A/B compile+rank" in printed
    assert "delta recompile" in printed
    assert "async gateway" in printed


def test_smoke_respects_skip_serving(harness_module, tmp_path):
    out = tmp_path / "bench2.json"
    code = harness_module.main(
        ["--smoke", "--skip-serving", "--skip-gateway", "--out", str(out)]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert "ab" in report
    # The skipped serving section is merged back from the committed
    # baseline (when one exists) instead of silently dropped.
    baseline_path = REPO_ROOT / "BENCH_scaling.json"
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        assert report.get("serving") == baseline.get("serving")
    else:
        assert "serving" not in report


def test_merge_unrun_sections_prefers_fresh_measurements(harness_module):
    baseline = {
        "generated_at": 1.0,
        "ab": {"old": True},
        "serving": {"remote": {"old": True}, "sharding": {"old": True}},
        "warehouse": {"old": True},
    }
    report = {
        "generated_at": 2.0,
        "serving": {"gateway": {"fresh": True}, "remote": {"fresh": True}},
    }
    merged = harness_module.merge_unrun_sections(report, baseline)
    assert merged["generated_at"] == 2.0
    assert merged["ab"] == {"old": True}  # carried over
    assert merged["warehouse"] == {"old": True}  # carried over
    assert merged["serving"]["sharding"] == {"old": True}  # subsection kept
    assert merged["serving"]["remote"] == {"fresh": True}  # fresh wins
    assert merged["serving"]["gateway"] == {"fresh": True}
    # No baseline at all: the report passes through untouched.
    assert harness_module.merge_unrun_sections(report, None) is report
