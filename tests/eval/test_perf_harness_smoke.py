"""Smoke test for benchmarks/run_perf_harness.py (--smoke mode).

The harness is a standalone script, so nothing else in the test suite
imports it — without this test it could silently rot while the modules
it drives evolve. ``--smoke`` shrinks every measurement to a few
seconds, skips the pytest-benchmark child run, and still writes the
full BENCH_scaling.json layout.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
HARNESS = REPO_ROOT / "benchmarks" / "run_perf_harness.py"


@pytest.fixture(scope="module")
def harness_module():
    spec = importlib.util.spec_from_file_location("run_perf_harness", HARNESS)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_smoke_writes_full_report(harness_module, tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = harness_module.main(["--smoke", "--out", str(out)])
    assert code == 0

    report = json.loads(out.read_text())
    assert report["generated_at"] > 0

    ab = report["ab"]
    assert ab["cases"] and ab["cases"][0]["speedup"] is not None

    serving = report["serving"]
    delta = serving["delta_vs_full"]
    assert delta["n_tracks"] >= 1
    assert delta["delta_ms"] > 0 and delta["full_ms"] > 0
    assert delta["speedup"] is not None

    sharding = serving["sharding"]
    assert sharding["byte_identical"] is True
    assert sharding["process_cases"][0]["n_workers"] == 1
    assert sharding["process_cases"][0]["scenes_per_s"] > 0

    remote = serving["remote"]
    assert remote["byte_identical"] is True
    assert remote["worker_cases"][0]["n_workers"] == 2  # --smoke sweep
    assert remote["worker_cases"][0]["scenes_per_s"] > 0
    partitions = remote["worker_cases"][0]["partitions"]
    assert sum(p["n_scenes"] for p in partitions) == remote["n_scenes"]

    assert "pytest_benchmarks" not in report  # --smoke skips the child run

    printed = capsys.readouterr().out
    assert "A/B compile+rank" in printed
    assert "delta recompile" in printed


def test_smoke_respects_skip_serving(harness_module, tmp_path):
    out = tmp_path / "bench2.json"
    code = harness_module.main(
        ["--smoke", "--skip-serving", "--out", str(out)]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert "serving" not in report
    assert "ab" in report
