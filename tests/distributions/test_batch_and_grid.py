"""Batch evaluation contracts and grid-accelerated densities (ISSUE 1).

``log_pdf_batch`` guarantees an ``(n,)`` float result for any batch —
the shape contract the columnar compile pipeline builds on — and
:class:`~repro.distributions.grid.GriddedDensity` must reproduce the
exact KDE within its validated tolerance wherever scoring can see the
difference.
"""

import numpy as np
import pytest

from repro.distributions import (
    Bernoulli,
    Categorical,
    Gaussian1D,
    GaussianKDE,
    GriddedDensity,
    HistogramDensity,
)


class TestLogPdfBatchContract:
    @pytest.mark.parametrize(
        "dist",
        [
            GaussianKDE(np.linspace(0.0, 10.0, 50)),
            Gaussian1D(2.0, 1.5),
            Bernoulli(0.3),
            HistogramDensity(np.linspace(0.0, 10.0, 50)),
        ],
        ids=["kde", "gaussian", "bernoulli", "histogram"],
    )
    def test_shapes_and_scalar_agreement(self, dist):
        queries = np.array([0.5, 2.0, 9.5])
        out = dist.log_pdf_batch(queries)
        assert out.shape == (3,)
        assert out.dtype == np.float64
        for value, log_density in zip(queries, out):
            expected = float(np.atleast_1d(dist.log_pdf(value))[0])
            assert log_density == pytest.approx(expected, abs=1e-12)
        # n == 1 must still be an array, n == 0 an empty one.
        assert dist.log_pdf_batch(np.array([2.0])).shape == (1,)
        assert dist.log_pdf_batch(np.empty(0)).shape == (0,)

    def test_categorical_batch(self):
        dist = Categorical.fit(["car", "car", "truck"])
        out = dist.log_pdf_batch(["car", "bike", "truck"])
        assert out.shape == (3,)
        assert out[1] == -np.inf
        assert out[0] == pytest.approx(np.log(dist.pdf("car")))

    def test_kde_blocked_equals_unblocked(self):
        rng = np.random.default_rng(0)
        kde = GaussianKDE(rng.normal(size=500))
        queries = rng.normal(size=kde._block_rows * 3 + 17)
        blocked = kde.log_pdf_batch(queries)
        one_by_one = np.array([kde.log_pdf(float(q)) for q in queries])
        np.testing.assert_array_equal(blocked, one_by_one)


class TestGriddedDensity:
    def test_matches_exact_within_band(self):
        rng = np.random.default_rng(1)
        data = np.concatenate(
            [rng.normal(5.0, 1.0, 400), rng.normal(25.0, 3.0, 200)]
        )
        kde = GaussianKDE(data)
        grid = GriddedDensity.try_build(kde, tol=1e-5)
        assert grid is not None
        assert grid.max_in_band_error <= 1e-5
        queries = rng.uniform(2.0, 35.0, 500)
        exact = kde.log_pdf_batch(queries)
        approx = grid.log_pdf_batch(queries)
        in_band = exact >= grid.log_density.max() - 30.0
        assert np.abs(approx[in_band] - exact[in_band]).max() <= 1e-5

    def test_out_of_range_falls_back_to_exact(self):
        kde = GaussianKDE(np.linspace(0.0, 1.0, 50))
        grid = GriddedDensity.try_build(kde)
        assert grid is not None
        far = np.array([-100.0, 200.0])
        np.testing.assert_array_equal(
            grid.log_pdf_batch(far), kde.log_pdf_batch(far)
        )

    def test_ineligible_distributions_decline(self):
        assert GriddedDensity.try_build(Gaussian1D(0.0, 1.0)) is None
        assert GriddedDensity.node_count(Bernoulli(0.5)) is None
        kde_2d = GaussianKDE(np.random.default_rng(0).normal(size=(50, 2)))
        assert GriddedDensity.try_build(kde_2d) is None


class TestLearnedFastEval:
    def test_lazy_cutover_builds_after_enough_traffic(self):
        from repro.core.learning import LearnedFeatureDistribution

        rng = np.random.default_rng(2)
        kde = GaussianKDE(rng.normal(10.0, 2.0, 300))
        lfd = LearnedFeatureDistribution(
            distribution=kde,
            max_density=float(np.max(kde.pdf(kde._data[:, 0]))),
            n_samples=300,
        )
        assert lfd.enable_fast_eval()
        assert lfd._fast_state == "pending"
        queries = rng.normal(10.0, 2.0, 64)
        exact = lfd.likelihood_batch(queries)
        # Hammer it until cumulative traffic crosses the cutover.
        for _ in range(2 * lfd._cutover_rows // 64 + 2):
            lfd.likelihood_batch(queries)
        assert lfd._fast_state == "ready"
        fast = lfd.likelihood_batch(queries)
        np.testing.assert_allclose(fast, exact, rtol=1e-4)
        # The scalar reference stays exact.
        scalar = np.array([lfd.likelihood(float(q)) for q in queries])
        np.testing.assert_allclose(scalar, exact, rtol=1e-12)

    def test_eager_build(self):
        from repro.core.learning import LearnedFeatureDistribution

        kde = GaussianKDE(np.linspace(0.0, 5.0, 100))
        lfd = LearnedFeatureDistribution(
            distribution=kde, max_density=1.0, n_samples=100
        )
        assert lfd.enable_fast_eval(eager=True)
        assert lfd._fast_state == "ready"
