"""Tests for histogram density and empirical CDF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    EmpiricalCDF,
    HistogramDensity,
    freedman_diaconis_bins,
)


class TestFreedmanDiaconis:
    def test_reasonable_bin_count(self):
        rng = np.random.default_rng(0)
        n = freedman_diaconis_bins(rng.normal(size=1000))
        assert 10 <= n <= 60

    def test_degenerate_data(self):
        assert freedman_diaconis_bins(np.array([1.0])) == 4
        assert freedman_diaconis_bins(np.ones(100)) == 4

    def test_clamped(self):
        rng = np.random.default_rng(1)
        heavy = np.concatenate([rng.normal(size=100000), [1e9]])
        assert freedman_diaconis_bins(heavy) <= 256


class TestHistogramDensity:
    def test_uniform_density(self):
        rng = np.random.default_rng(2)
        data = rng.uniform(0, 10, 20000)
        hist = HistogramDensity(data, bins=10)
        assert hist.pdf(5.0) == pytest.approx(0.1, rel=0.05)

    def test_out_of_range_zero(self):
        hist = HistogramDensity([1.0, 2.0, 3.0], bins=3)
        assert hist.pdf(-5.0) == 0.0
        assert hist.pdf(10.0) == 0.0

    def test_right_edge_included(self):
        hist = HistogramDensity([0.0, 1.0, 2.0, 3.0], bins=3)
        assert hist.pdf(3.0) > 0.0

    def test_integrates_to_one(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=5000)
        hist = HistogramDensity(data)
        edges = hist.edges
        centers = (edges[:-1] + edges[1:]) / 2
        widths = np.diff(edges)
        mass = float(np.sum(hist.pdf(centers) * widths))
        assert mass == pytest.approx(1.0, abs=1e-9)

    def test_constant_data(self):
        hist = HistogramDensity([7.0] * 10)
        assert hist.pdf(7.0) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HistogramDensity([])
        with pytest.raises(ValueError):
            HistogramDensity([np.nan])
        with pytest.raises(ValueError):
            HistogramDensity([1.0], bins=0)
        with pytest.raises(ValueError):
            HistogramDensity(np.zeros((3, 2)))

    def test_fit_classmethod(self):
        hist = HistogramDensity.fit([1.0, 2.0, 3.0])
        assert hist.n_samples == 3


class TestEmpiricalCDF:
    @pytest.fixture(scope="class")
    def ecdf(self):
        return EmpiricalCDF(np.arange(1, 101, dtype=float))

    def test_cdf_values(self, ecdf):
        assert ecdf.cdf(0.0) == 0.0
        assert ecdf.cdf(50.0) == pytest.approx(0.5)
        assert ecdf.cdf(100.0) == 1.0

    def test_survival(self, ecdf):
        assert ecdf.survival(50.0) == pytest.approx(0.5)

    def test_tail_probability(self, ecdf):
        assert ecdf.tail_probability(50.0) == pytest.approx(1.0)
        assert ecdf.tail_probability(1.0) == pytest.approx(0.02)
        assert ecdf.tail_probability(1000.0) == 0.0

    def test_quantile(self, ecdf):
        assert ecdf.quantile(0.0) == 1.0
        assert ecdf.quantile(1.0) == 100.0
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_batch(self, ecdf):
        out = ecdf.cdf(np.array([0.0, 50.0, 200.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])
        with pytest.raises(ValueError):
            EmpiricalCDF([np.inf])


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1000, max_value=1000, allow_nan=False),
        min_size=1,
        max_size=80,
    ),
    st.floats(min_value=-1100, max_value=1100, allow_nan=False),
)
def test_ecdf_monotone_and_bounded(data, x):
    ecdf = EmpiricalCDF(data)
    c = ecdf.cdf(x)
    assert 0.0 <= c <= 1.0
    assert ecdf.cdf(x + 1.0) >= c
