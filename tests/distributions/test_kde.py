"""Tests for the from-scratch Gaussian KDE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import GaussianKDE, scott_bandwidth, silverman_bandwidth


@pytest.fixture(scope="module")
def normal_data():
    rng = np.random.default_rng(0)
    return rng.normal(10.0, 2.0, size=2000)


class TestConstruction:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            GaussianKDE([])

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            GaussianKDE([1.0, np.nan])
        with pytest.raises(ValueError):
            GaussianKDE([1.0, np.inf])

    def test_bandwidth_rules(self, normal_data):
        scott = GaussianKDE(normal_data, bandwidth="scott")
        silv = GaussianKDE(normal_data, bandwidth="silverman")
        assert scott.bandwidth[0] > 0
        assert silv.bandwidth[0] > 0

    def test_explicit_bandwidth(self, normal_data):
        kde = GaussianKDE(normal_data, bandwidth=0.5)
        assert kde.bandwidth[0] == 0.5

    def test_bad_bandwidth(self, normal_data):
        with pytest.raises(ValueError):
            GaussianKDE(normal_data, bandwidth="magic")
        with pytest.raises(ValueError):
            GaussianKDE(normal_data, bandwidth=-1.0)

    def test_single_point(self):
        kde = GaussianKDE([5.0])
        assert kde.n_samples == 1
        assert kde.pdf(5.0) > kde.pdf(6.0)

    def test_constant_data(self):
        kde = GaussianKDE([3.0] * 50)
        assert np.isfinite(kde.log_pdf(3.0))
        assert kde.pdf(3.0) > kde.pdf(4.0)


class TestAccuracy:
    def test_matches_true_normal_density(self, normal_data):
        kde = GaussianKDE(normal_data)
        xs = np.linspace(5, 15, 21)
        true = np.exp(-0.5 * ((xs - 10) / 2) ** 2) / (2 * np.sqrt(2 * np.pi))
        est = kde.pdf(xs)
        assert np.max(np.abs(est - true)) < 0.02

    def test_integrates_to_one(self, normal_data):
        kde = GaussianKDE(normal_data)
        xs = np.linspace(-5, 25, 3001)
        mass = np.trapezoid(kde.pdf(xs), xs)
        assert mass == pytest.approx(1.0, abs=0.01)

    def test_bimodal(self):
        rng = np.random.default_rng(1)
        data = np.concatenate([rng.normal(0, 0.5, 500), rng.normal(10, 0.5, 500)])
        kde = GaussianKDE(data)
        assert kde.pdf(0.0) > kde.pdf(5.0) * 10
        assert kde.pdf(10.0) > kde.pdf(5.0) * 10

    def test_log_pdf_stable_in_far_tail(self, normal_data):
        kde = GaussianKDE(normal_data)
        lp = kde.log_pdf(1000.0)
        assert np.isfinite(lp) or lp == -np.inf
        assert lp < -100

    def test_outlier_robust_bandwidth(self):
        rng = np.random.default_rng(2)
        clean = rng.normal(0, 1, 1000)
        with_outliers = np.concatenate([clean, [1e4, -1e4]])
        kde = GaussianKDE(with_outliers)
        # IQR-based spread keeps bandwidth near the clean scale.
        assert kde.bandwidth[0] < 1.0


class TestMultivariate:
    def test_2d_fit_and_eval(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 1, size=(1500, 2))
        kde = GaussianKDE(data)
        assert kde.dim == 2
        center = kde.pdf(np.array([0.0, 0.0]))
        off = kde.pdf(np.array([3.0, 3.0]))
        assert center > off
        true_center = 1 / (2 * np.pi)
        assert center == pytest.approx(true_center, rel=0.15)

    def test_dimension_mismatch(self):
        kde = GaussianKDE(np.zeros((10, 2)) + np.arange(10)[:, None])
        with pytest.raises(ValueError):
            kde.log_pdf(np.zeros((5, 3)))

    def test_batch_eval_shape(self):
        rng = np.random.default_rng(4)
        kde = GaussianKDE(rng.normal(size=(100, 2)))
        out = kde.log_pdf(rng.normal(size=(7, 2)))
        assert out.shape == (7,)


class TestSampling:
    def test_samples_follow_density(self, normal_data):
        kde = GaussianKDE(normal_data)
        rng = np.random.default_rng(5)
        samples = kde.sample(rng, 4000)
        assert samples.mean() == pytest.approx(10.0, abs=0.2)
        assert samples.std() == pytest.approx(2.0, abs=0.2)

    def test_2d_sample_shape(self):
        rng = np.random.default_rng(6)
        kde = GaussianKDE(rng.normal(size=(50, 2)))
        assert kde.sample(rng, 9).shape == (9, 2)


class TestBandwidthRules:
    def test_scott_shrinks_with_n(self):
        rng = np.random.default_rng(7)
        small = scott_bandwidth(rng.normal(size=(50, 1)))
        large = scott_bandwidth(rng.normal(size=(5000, 1)))
        assert large[0] < small[0]

    def test_silverman_close_to_scott_1d(self):
        rng = np.random.default_rng(8)
        data = rng.normal(size=(500, 1))
        assert silverman_bandwidth(data)[0] == pytest.approx(
            scott_bandwidth(data)[0] * (3.0 / 4.0) ** (-1 / 5), rel=1e-9
        )


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=2,
        max_size=60,
    )
)
def test_kde_density_nonnegative_and_finite(data):
    kde = GaussianKDE(data)
    xs = np.linspace(min(data) - 10, max(data) + 10, 41)
    pdf = kde.pdf(xs)
    assert (pdf >= 0).all()
    assert np.isfinite(pdf).all()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        min_size=5,
        max_size=40,
    ),
    st.floats(min_value=-60, max_value=60, allow_nan=False),
)
def test_log_pdf_matches_pdf(data, x):
    kde = GaussianKDE(data)
    lp = kde.log_pdf(x)
    p = kde.pdf(x)
    if p > 0:
        assert lp == pytest.approx(np.log(p), rel=1e-9, abs=1e-9)
