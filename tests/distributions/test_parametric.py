"""Tests for parametric distributions and the fitting registry."""

import math

import numpy as np
import pytest

from repro.distributions import (
    Bernoulli,
    Categorical,
    Gaussian1D,
    fit_distribution,
    get_fitter,
    register_fitter,
)


class TestGaussian1D:
    def test_pdf_peak_at_mean(self):
        g = Gaussian1D(mean=3.0, std=2.0)
        assert g.pdf(3.0) > g.pdf(4.0) > g.pdf(6.0)

    def test_pdf_value(self):
        g = Gaussian1D(mean=0.0, std=1.0)
        assert g.pdf(0.0) == pytest.approx(1 / math.sqrt(2 * math.pi))

    def test_fit_recovers_moments(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, 5000)
        g = Gaussian1D.fit(data)
        assert g.mean == pytest.approx(5.0, abs=0.15)
        assert g.std == pytest.approx(3.0, abs=0.15)

    def test_fit_requires_two_samples(self):
        with pytest.raises(ValueError):
            Gaussian1D.fit([1.0])

    def test_invalid_std(self):
        with pytest.raises(ValueError):
            Gaussian1D(0.0, 0.0)

    def test_batch(self):
        g = Gaussian1D(0.0, 1.0)
        out = g.pdf(np.array([0.0, 1.0, 2.0]))
        assert out.shape == (3,)
        assert out[0] > out[1] > out[2]


class TestBernoulli:
    def test_pmf(self):
        b = Bernoulli(0.3)
        assert b.pdf(1.0) == pytest.approx(0.3)
        assert b.pdf(0.0) == pytest.approx(0.7)

    def test_fit_laplace_smoothing(self):
        b = Bernoulli.fit([1.0] * 10)
        assert 0 < b.pdf(0.0) < 0.2
        assert b.n_samples == 10

    def test_fit_rejects_non_binary(self):
        with pytest.raises(ValueError):
            Bernoulli.fit([0.0, 0.5])

    def test_fit_empty(self):
        with pytest.raises(ValueError):
            Bernoulli.fit([])

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Bernoulli(1.5)

    def test_log_pdf_finite_after_smoothing(self):
        b = Bernoulli.fit([0.0] * 5)
        assert np.isfinite(b.log_pdf(1.0))


class TestCategorical:
    def test_normalizes(self):
        c = Categorical({"car": 3.0, "truck": 1.0})
        assert c.pdf("car") == pytest.approx(0.75)
        assert c.pdf("truck") == pytest.approx(0.25)

    def test_unknown_category_zero(self):
        c = Categorical({"car": 1.0})
        assert c.pdf("boat") == 0.0
        assert c.log_pdf("boat") == -math.inf

    def test_fit_with_smoothing(self):
        c = Categorical.fit(["a", "a", "a", "b"])
        assert c.pdf("a") == pytest.approx(4 / 6)
        assert c.pdf("b") == pytest.approx(2 / 6)

    def test_fit_empty(self):
        with pytest.raises(ValueError):
            Categorical.fit([])

    def test_batch(self):
        c = Categorical({"a": 1.0, "b": 1.0})
        out = c.pdf(["a", "b", "z"])
        np.testing.assert_allclose(out, [0.5, 0.5, 0.0])

    def test_invalid(self):
        with pytest.raises(ValueError):
            Categorical({})
        with pytest.raises(ValueError):
            Categorical({"a": -1.0})


class TestFittingRegistry:
    def test_builtin_kinds(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=200)
        for kind in ("kde", "histogram", "gaussian"):
            dist = fit_distribution(data, kind=kind)
            assert dist.pdf(0.0) > 0

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fitter"):
            get_fitter("alien")

    def test_register_custom(self):
        calls = []

        def fake_fitter(values):
            calls.append(len(values))
            return Gaussian1D(0.0, 1.0)

        register_fitter("fake-test", fake_fitter)
        dist = fit_distribution([1.0, 2.0], kind="fake-test")
        assert calls == [2]
        assert isinstance(dist, Gaussian1D)
        with pytest.raises(ValueError):
            register_fitter("fake-test", fake_fitter)
        register_fitter("fake-test", fake_fitter, overwrite=True)
