"""Tests for the time-series adapter (§10 future-work extension)."""

import numpy as np
import pytest

from repro.core import Fixy
from repro.core.model import SOURCE_HUMAN, SOURCE_MODEL
from repro.timeseries import (
    SeriesEvent,
    annotate_recording,
    build_event_scene,
    events_to_observations,
    generate_recording,
    timeseries_features,
)


@pytest.fixture(scope="module")
def recording():
    return generate_recording("rec-0", seed=7)


@pytest.fixture(scope="module")
def labels(recording):
    return annotate_recording(recording, seed=8)


class TestSeriesEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            SeriesEvent(5.0, 5.0, 1.0, "spike")
        with pytest.raises(ValueError):
            SeriesEvent(0.0, 1.0, 0.0, "spike")

    def test_duration(self):
        assert SeriesEvent(1.0, 3.5, 1.0, "spike").duration_s == pytest.approx(2.5)


class TestGenerateRecording:
    def test_deterministic(self):
        a = generate_recording("r", seed=1)
        b = generate_recording("r", seed=1)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.events == b.events

    def test_events_within_duration(self, recording):
        assert recording.events
        for event in recording.events:
            assert 0.0 <= event.start_s < recording.duration_s
            assert event.end_s <= recording.duration_s + 10.0

    def test_both_classes_appear(self):
        classes = set()
        for seed in range(5):
            rec = generate_recording(f"r{seed}", seed=seed)
            classes |= {e.event_class for e in rec.events}
        assert classes == {"spike", "surge"}

    def test_events_visible_in_signal(self, recording):
        """The signal should actually rise where events were stamped."""
        rate = recording.sample_rate_hz
        for event in recording.events[:5]:
            i0, i1 = int(event.start_s * rate), int(event.end_s * rate)
            segment = recording.values[i0:i1]
            if len(segment) < 4:
                continue
            assert segment.max() > 0.3 * event.amplitude


class TestAnnotateRecording:
    def test_misses_recorded(self, labels):
        total = len(labels.recording.events)
        labeled_events = {
            o.metadata["gt_start_s"] for o in labels.human_observations
        }
        assert len(labels.human_missed) + len(labeled_events) == total

    def test_sources_tagged(self, labels):
        assert all(o.source == SOURCE_HUMAN for o in labels.human_observations)
        assert all(o.source == SOURCE_MODEL for o in labels.model_observations)

    def test_ghosts_have_model_observations(self, labels):
        ghost_obs = [
            o
            for o in labels.model_observations
            if o.metadata["gt_start_s"] is None
        ]
        assert len(labels.ghost_events) == 0 or ghost_obs


class TestAdapter:
    def test_single_window_event_one_observation(self, recording):
        event = SeriesEvent(0.1, 0.9, 2.0, "spike")
        obs = events_to_observations([event], SOURCE_HUMAN, recording)
        assert len(obs) == 1
        assert obs[0].frame == 0
        assert obs[0].box.length == pytest.approx(0.8)

    def test_long_event_spans_windows(self, recording):
        event = SeriesEvent(1.0, 7.0, 2.0, "surge")  # windows 0..3 at 2 s
        obs = events_to_observations([event], SOURCE_HUMAN, recording)
        assert [o.frame for o in obs] == [0, 1, 2, 3]
        assert sum(o.box.length for o in obs) == pytest.approx(6.0)

    def test_amplitude_in_metadata_and_height(self, recording):
        event = SeriesEvent(0.0, 1.0, 3.0, "spike")
        obs = events_to_observations([event], SOURCE_MODEL, recording, confidence=0.9)
        assert obs[0].metadata["amplitude"] == 3.0
        assert obs[0].box.height == pytest.approx(4.0)
        assert obs[0].confidence == 0.9

    def test_scene_reassembles_long_events_into_tracks(self, labels):
        scene = build_event_scene(labels)
        # Every *isolated* multi-window human event should be one track.
        # Temporally-overlapping events share the 1-D time axis and are
        # ambiguous by construction (see the module docstring).
        def overlaps_another(event):
            return any(
                other is not event
                and other.start_s < event.end_s
                and event.start_s < other.end_s
                for other in labels.recording.events
            )

        long_events = [
            e for e in labels.recording.events
            if e.duration_s > 4.0
            and e not in labels.human_missed
            and not overlaps_another(e)
        ]
        if not long_events:
            pytest.skip("no long labeled events in this seed")
        for event in long_events:
            tracks = {
                t.track_id
                for t in scene.tracks
                for o in t.observations
                if o.metadata.get("gt_start_s") == event.start_s
                and o.is_human
            }
            assert len(tracks) == 1


class TestEndToEnd:
    def test_fixy_finds_missed_events(self):
        """The §10 conjecture, realized: rank model-only event tracks and
        check that annotator-missed events surface at the top."""
        train_scenes = []
        for seed in range(6):
            rec = generate_recording(f"train-{seed}", seed=100 + seed)
            lbl = annotate_recording(rec, seed=200 + seed, human_miss_rate=0.0,
                                     ghost_rate_per_minute=0.0)
            train_scenes.append(build_event_scene(lbl))

        fixy = Fixy(timeseries_features(), min_samples=5).fit(train_scenes)

        hits = total = 0
        for seed in range(4):
            rec = generate_recording(f"val-{seed}", seed=300 + seed)
            lbl = annotate_recording(rec, seed=400 + seed, human_miss_rate=0.3)
            if not lbl.human_missed:
                continue
            scene = build_event_scene(lbl)
            ranked = fixy.rank_tracks(
                scene,
                track_filter=lambda t: t.has_model and not t.has_human,
                top_k=5,
            )
            missed_starts = {e.start_s for e in lbl.human_missed}
            for scored in ranked:
                total += 1
                starts = {
                    o.metadata.get("gt_start_s")
                    for o in scored.item.observations
                }
                if starts & missed_starts:
                    hits += 1
        assert total > 0
        assert hits / total > 0.5

    def test_ghosts_rank_below_real_missed_events(self):
        train_scenes = []
        for seed in range(6):
            rec = generate_recording(f"t2-{seed}", seed=500 + seed)
            lbl = annotate_recording(rec, seed=600 + seed, human_miss_rate=0.0,
                                     ghost_rate_per_minute=0.0)
            train_scenes.append(build_event_scene(lbl))
        fixy = Fixy(timeseries_features(), min_samples=5).fit(train_scenes)

        rec = generate_recording("v2", seed=700)
        lbl = annotate_recording(rec, seed=701, human_miss_rate=0.4,
                                 ghost_rate_per_minute=3.0)
        scene = build_event_scene(lbl)
        ranked = fixy.rank_tracks(
            scene, track_filter=lambda t: t.has_model and not t.has_human
        )
        if not ranked:
            pytest.skip("no model-only tracks for this seed")
        missed_starts = {e.start_s for e in lbl.human_missed}
        ghost_starts = {g.start_s for g in lbl.ghost_events}

        def kind(scored):
            starts = {o.metadata.get("gt_start_s") for o in scored.item.observations}
            raw = {o.metadata.get("event_start_s") for o in scored.item.observations}
            if starts & missed_starts:
                return "missed"
            if raw & ghost_starts:
                return "ghost"
            return "other"

        kinds = [kind(s) for s in ranked]
        if "missed" in kinds and "ghost" in kinds:
            mean_rank = lambda k: np.mean([i for i, x in enumerate(kinds) if x == k])
            assert mean_rank("missed") < mean_rank("ghost")
