"""Tests for the composed synthetic datasets."""

import pytest

from repro.core.model import SOURCE_HUMAN, SOURCE_MODEL
from repro.datasets import (
    SYNTHETIC_INTERNAL,
    SYNTHETIC_LYFT,
    build_dataset,
    build_labeled_scene,
)
from repro.datagen import SceneGenerator
from repro.labelers import CLEAN_VENDOR, INTERNAL_DETECTOR


@pytest.fixture(scope="module")
def small_lyft():
    return build_dataset(SYNTHETIC_LYFT, n_train_scenes=2, n_val_scenes=3)


class TestProfiles:
    def test_paper_scene_counts(self):
        assert SYNTHETIC_LYFT.n_val_scenes == 46
        assert SYNTHETIC_INTERNAL.n_val_scenes == 13

    def test_lyft_noisier_than_internal(self):
        assert (
            SYNTHETIC_LYFT.vendor.miss_track_base_rate
            > SYNTHETIC_INTERNAL.vendor.miss_track_base_rate
        )
        assert (
            SYNTHETIC_LYFT.detector.ghost_tracks_per_scene
            > SYNTHETIC_INTERNAL.detector.ghost_tracks_per_scene
        )


class TestBuildDataset:
    def test_sizes(self, small_lyft):
        assert len(small_lyft.train_scenes) == 2
        assert len(small_lyft.val_scenes) == 3
        assert small_lyft.name == "synthetic-lyft"

    def test_train_scenes_human_only(self, small_lyft):
        for scene in small_lyft.train_scenes:
            sources = {o.source for o in scene.observations}
            assert sources == {SOURCE_HUMAN}

    def test_train_scenes_have_ego_poses(self, small_lyft):
        for scene in small_lyft.train_scenes:
            assert "ego_poses" in scene.metadata
            assert len(scene.metadata["ego_poses"]) == 75

    def test_val_scenes_have_both_sources(self, small_lyft):
        for ls in small_lyft.val_scenes:
            sources = {o.source for o in ls.scene.observations}
            assert sources == {SOURCE_HUMAN, SOURCE_MODEL}

    def test_val_scene_parts_consistent(self, small_lyft):
        for ls in small_lyft.val_scenes:
            n_obs = len(ls.human_observations) + len(ls.model_observations)
            assert len(ls.scene.observations) == n_obs
            assert ls.scene_id == ls.world.scene_id

    def test_deterministic(self):
        a = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=1, n_val_scenes=1)
        b = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=1, n_val_scenes=1)
        obs_a = [o.box for o in a.val_scenes[0].scene.observations]
        obs_b = [o.box for o in b.val_scenes[0].scene.observations]
        assert obs_a == obs_b

    def test_errors_recorded(self, small_lyft):
        total_errors = sum(len(ls.ledger) for ls in small_lyft.val_scenes)
        assert total_errors > 0

    def test_auditor_construction(self, small_lyft):
        auditor = small_lyft.val_scenes[0].auditor()
        assert auditor.scene is small_lyft.val_scenes[0].world


class TestBuildLabeledScene:
    def test_single_scene(self):
        world = SceneGenerator().generate("one", seed=5)
        ls = build_labeled_scene(world, CLEAN_VENDOR, INTERNAL_DETECTOR, seed=5)
        assert ls.scene.dt == world.dt
        assert "ego_poses" in ls.scene.metadata
        assert ls.human_observations or ls.model_observations
