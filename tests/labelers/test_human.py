"""Tests for the simulated human labeling vendor."""

import numpy as np
import pytest

from repro.core.model import SOURCE_HUMAN
from repro.datagen import SceneGenerator, VisibilityModel
from repro.labelers import (
    CLEAN_VENDOR,
    NOISY_VENDOR,
    ErrorType,
    HumanLabeler,
    HumanLabelerConfig,
)


@pytest.fixture(scope="module")
def scene():
    return SceneGenerator().generate("human-test", seed=77)


class TestLabelScene:
    def test_deterministic(self, scene):
        labeler = HumanLabeler()
        obs_a, ledger_a = labeler.label_scene(scene, seed=1)
        obs_b, ledger_b = labeler.label_scene(scene, seed=1)
        assert [o.box for o in obs_a] == [o.box for o in obs_b]
        assert len(ledger_a) == len(ledger_b)

    def test_source_and_confidence(self, scene):
        obs, _ = HumanLabeler().label_scene(scene, seed=2)
        assert obs, "expected some labels"
        assert all(o.source == SOURCE_HUMAN for o in obs)
        assert all(o.confidence is None for o in obs)

    def test_labels_only_visible_frames(self, scene):
        labeler = HumanLabeler()
        obs, _ = labeler.label_scene(scene, seed=3)
        table = labeler.visibility.visibility_table(scene)
        for o in obs:
            gt_id = o.metadata["gt_object_id"]
            assert table[(gt_id, o.frame)], "labeled an invisible object-frame"

    def test_boxes_jittered_but_close(self, scene):
        labeler = HumanLabeler()
        obs, _ = labeler.label_scene(scene, seed=4)
        for o in obs[:50]:
            gt = scene.object_by_id(o.metadata["gt_object_id"]).box_at(o.frame)
            assert gt is not None
            assert o.box.distance_to_box(gt) < 1.0
            assert 0.5 < o.box.volume / gt.volume < 2.0

    def test_extends_provided_ledger(self, scene):
        from repro.labelers import ErrorLedger

        ledger = ErrorLedger()
        _, returned = HumanLabeler().label_scene(scene, seed=5, ledger=ledger)
        assert returned is ledger


class TestErrorInjection:
    def test_noisy_vendor_misses_more_tracks(self):
        scenes = SceneGenerator().generate_many(8, seed=10)
        noisy_misses = clean_misses = 0
        for i, scene in enumerate(scenes):
            _, noisy_ledger = HumanLabeler(NOISY_VENDOR).label_scene(scene, seed=i)
            _, clean_ledger = HumanLabeler(CLEAN_VENDOR).label_scene(scene, seed=i)
            noisy_misses += len(noisy_ledger.of_type(ErrorType.MISSING_TRACK))
            clean_misses += len(clean_ledger.of_type(ErrorType.MISSING_TRACK))
        assert noisy_misses > clean_misses

    def test_missing_track_means_no_labels(self, scene):
        obs, ledger = HumanLabeler(NOISY_VENDOR).label_scene(scene, seed=6)
        labeled_ids = {o.metadata["gt_object_id"] for o in obs}
        for missed in ledger.missing_track_object_ids(scene.scene_id):
            assert missed not in labeled_ids

    def test_class_flip_recorded_with_obs_ids(self):
        cfg = HumanLabelerConfig(class_flip_rate=1.0, miss_track_base_rate=0.0,
                                 short_track_miss_boost=0.0, small_class_miss_boost=0.0,
                                 far_miss_boost=0.0)
        scene = SceneGenerator().generate("flip", seed=20)
        obs, ledger = HumanLabeler(cfg).label_scene(scene, seed=20)
        flips = ledger.of_type(ErrorType.CLASS_FLIP)
        assert flips
        index = ledger.obs_id_index()
        flipped_obs = [o for o in obs if o.obs_id in index]
        assert flipped_obs
        for o in flipped_obs:
            gt_class = scene.object_by_id(o.metadata["gt_object_id"]).object_class.value
            assert o.object_class != gt_class

    def test_missing_observation_drops_interior_frames(self):
        cfg = HumanLabelerConfig(miss_frames_rate=1.0, miss_track_base_rate=0.0,
                                 short_track_miss_boost=0.0, small_class_miss_boost=0.0,
                                 far_miss_boost=0.0, class_flip_rate=0.0)
        scene = SceneGenerator().generate("dropf", seed=21)
        obs, ledger = HumanLabeler(cfg).label_scene(scene, seed=21)
        drops = ledger.of_type(ErrorType.MISSING_OBSERVATION)
        assert drops
        by_object = {}
        for o in obs:
            by_object.setdefault(o.metadata["gt_object_id"], set()).add(o.frame)
        for d in drops:
            labeled = by_object.get(d.gt_object_id, set())
            # Dropped frames are really absent from the labels.
            assert not labeled & set(d.frames)
            if labeled:
                # And the drop is interior: labels exist both before & after.
                assert min(labeled) < min(d.frames)
                assert max(labeled) > max(d.frames)

    def test_zero_error_config_only_unavoidable_misses(self):
        cfg = HumanLabelerConfig(
            miss_track_base_rate=0.0,
            short_track_miss_boost=0.0,
            far_miss_boost=0.0,
            small_class_miss_boost=0.0,
            miss_frames_rate=0.0,
            class_flip_rate=0.0,
        )
        scene = SceneGenerator().generate("clean", seed=22)
        _, ledger = HumanLabeler(cfg).label_scene(scene, seed=22)
        for r in ledger:
            assert r.details.get("reason") == "too_short"

    def test_miss_probability_monotone_in_visibility(self, scene):
        labeler = HumanLabeler()
        obj = scene.objects[0]
        short = labeler._miss_probability(scene, obj, obj.present_frames[:3])
        longer = labeler._miss_probability(scene, obj, obj.present_frames[:20])
        assert short >= longer
