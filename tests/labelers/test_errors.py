"""Tests for the injected-error ledger."""

import pytest

from repro.labelers import ErrorLedger, ErrorRecord, ErrorType


def record(
    error_type=ErrorType.MISSING_TRACK,
    scene_id="s0",
    source="human",
    gt_object_id="obj1",
    frames=(0, 1, 2),
    obs_ids=(),
    object_class="car",
):
    return ErrorRecord(
        error_type=error_type,
        scene_id=scene_id,
        source=source,
        gt_object_id=gt_object_id,
        frames=frames,
        obs_ids=obs_ids,
        object_class=object_class,
    )


class TestErrorType:
    def test_label_vs_model_partition(self):
        for et in ErrorType:
            assert et.is_label_error != et.is_model_error

    def test_expected_label_errors(self):
        assert ErrorType.MISSING_TRACK.is_label_error
        assert ErrorType.MISSING_OBSERVATION.is_label_error
        assert ErrorType.CLASS_FLIP.is_label_error

    def test_expected_model_errors(self):
        assert ErrorType.GHOST_TRACK.is_model_error
        assert ErrorType.MODEL_CLASS_ERROR.is_model_error
        assert ErrorType.MODEL_LOCALIZATION_ERROR.is_model_error


class TestErrorRecord:
    def test_ids_unique(self):
        assert record().error_id != record().error_id

    def test_serialization_roundtrip(self):
        r = record(obs_ids=("a", "b"), frames=(3, 4))
        clone = ErrorRecord.from_dict(r.to_dict())
        assert clone.error_id == r.error_id
        assert clone.error_type is r.error_type
        assert clone.frames == (3, 4)
        assert clone.obs_ids == ("a", "b")


class TestErrorLedger:
    @pytest.fixture
    def ledger(self):
        ledger = ErrorLedger()
        ledger.record(record(scene_id="s0", gt_object_id="a"))
        ledger.record(
            record(
                error_type=ErrorType.GHOST_TRACK,
                scene_id="s0",
                source="model",
                gt_object_id=None,
                obs_ids=("g1", "g2"),
            )
        )
        ledger.record(
            record(
                error_type=ErrorType.MISSING_OBSERVATION,
                scene_id="s1",
                gt_object_id="b",
                frames=(5,),
            )
        )
        return ledger

    def test_len_iter(self, ledger):
        assert len(ledger) == 3
        assert len(list(ledger)) == 3

    def test_for_scene(self, ledger):
        assert len(ledger.for_scene("s0")) == 2
        assert len(ledger.for_scene("s1")) == 1
        assert ledger.for_scene("nope") == []

    def test_of_type(self, ledger):
        assert len(ledger.of_type(ErrorType.MISSING_TRACK)) == 1
        assert (
            len(ledger.of_type(ErrorType.MISSING_TRACK, ErrorType.GHOST_TRACK)) == 2
        )

    def test_label_model_partitions(self, ledger):
        assert len(ledger.label_errors()) == 2
        assert len(ledger.model_errors()) == 1

    def test_for_object(self, ledger):
        assert len(ledger.for_object("a")) == 1
        assert ledger.for_object("zzz") == []

    def test_obs_id_index(self, ledger):
        index = ledger.obs_id_index()
        assert set(index) == {"g1", "g2"}
        assert index["g1"].error_type is ErrorType.GHOST_TRACK

    def test_missing_track_object_ids(self, ledger):
        assert ledger.missing_track_object_ids() == {"a"}
        assert ledger.missing_track_object_ids("s0") == {"a"}
        assert ledger.missing_track_object_ids("s1") == set()

    def test_save_load_roundtrip(self, ledger, tmp_path):
        path = tmp_path / "ledger.json"
        ledger.save(path)
        loaded = ErrorLedger.load(path)
        assert len(loaded) == len(ledger)
        assert [r.error_id for r in loaded] == [r.error_id for r in ledger]

    def test_extend(self):
        ledger = ErrorLedger()
        ledger.extend([record(), record()])
        assert len(ledger) == 2
