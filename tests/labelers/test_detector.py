"""Tests for the simulated LIDAR detector."""

import numpy as np
import pytest

from repro.core.model import SOURCE_MODEL
from repro.datagen import SceneGenerator
from repro.labelers import (
    INTERNAL_DETECTOR,
    PUBLIC_DETECTOR,
    DetectorConfig,
    DetectorModel,
    ErrorType,
)


@pytest.fixture(scope="module")
def scene():
    return SceneGenerator().generate("det-test", seed=55)


@pytest.fixture(scope="module")
def predictions(scene):
    return DetectorModel().predict_scene(scene, seed=1)


class TestPredictScene:
    def test_deterministic(self, scene):
        model = DetectorModel()
        a, _ = model.predict_scene(scene, seed=1)
        b, _ = model.predict_scene(scene, seed=1)
        assert [o.box for o in a] == [o.box for o in b]

    def test_source_and_confidence(self, predictions):
        obs, _ = predictions
        assert obs
        assert all(o.source == SOURCE_MODEL for o in obs)
        assert all(o.confidence is not None and 0 < o.confidence < 1 for o in obs)

    def test_real_predictions_near_ground_truth(self, scene, predictions):
        obs, _ = predictions
        real = [o for o in obs if o.metadata.get("gt_object_id")]
        assert real
        for o in real[:80]:
            gt = scene.object_by_id(o.metadata["gt_object_id"]).box_at(o.frame)
            if gt is None:
                continue
            assert o.box.distance_to_box(gt) < 5.0

    def test_detects_most_visible_objects(self, scene, predictions):
        obs, _ = predictions
        detected_ids = {o.metadata.get("gt_object_id") for o in obs}
        from repro.datagen import VisibilityModel

        table = VisibilityModel().visibility_table(scene)
        visible_long = {
            o.object_id
            for o in scene.objects
            if sum(table[(o.object_id, f)] for f in o.present_frames) >= 10
        }
        missed = visible_long - detected_ids
        assert len(missed) <= max(1, len(visible_long) // 5)


class TestGhostTracks:
    def test_ghosts_recorded(self):
        cfg = DetectorConfig(ghost_tracks_per_scene=5.0)
        scene = SceneGenerator().generate("ghosts", seed=60)
        obs, ledger = DetectorModel(cfg).predict_scene(scene, seed=60)
        ghosts = ledger.of_type(ErrorType.GHOST_TRACK)
        assert ghosts
        index = ledger.obs_id_index()
        ghost_obs = [o for o in obs if o.metadata.get("ghost")]
        assert ghost_obs
        for o in ghost_obs:
            assert o.obs_id in index
            assert o.metadata["gt_object_id"] is None

    def test_both_ghost_flavors_appear(self):
        cfg = DetectorConfig(ghost_tracks_per_scene=6.0, ghost_coherent_fraction=0.5)
        model = DetectorModel(cfg)
        flavors = set()
        for seed in range(8):
            scene = SceneGenerator().generate(f"gf-{seed}", seed=seed)
            _, ledger = model.predict_scene(scene, seed=seed)
            for r in ledger.of_type(ErrorType.GHOST_TRACK):
                flavors.add(r.details["coherent"])
        assert flavors == {True, False}

    def test_no_ghosts_when_disabled(self, scene):
        cfg = DetectorConfig(ghost_tracks_per_scene=0.0)
        _, ledger = DetectorModel(cfg).predict_scene(scene, seed=2)
        assert not ledger.of_type(ErrorType.GHOST_TRACK)


class TestInjectedModelErrors:
    def test_gross_localization_recorded(self):
        cfg = DetectorConfig(gross_loc_rate=1.0, class_error_rate=0.0,
                             ghost_tracks_per_scene=0.0)
        scene = SceneGenerator().generate("gross", seed=61)
        obs, ledger = DetectorModel(cfg).predict_scene(scene, seed=61)
        errors = ledger.of_type(ErrorType.MODEL_LOCALIZATION_ERROR)
        assert errors
        index = ledger.obs_id_index()
        for record in errors:
            assert record.obs_ids
            for obs_id in record.obs_ids:
                assert index[obs_id] is record

    def test_class_errors_emit_wrong_class(self):
        cfg = DetectorConfig(class_error_rate=1.0, gross_loc_rate=0.0,
                             ghost_tracks_per_scene=0.0)
        scene = SceneGenerator().generate("clserr", seed=62)
        obs, ledger = DetectorModel(cfg).predict_scene(scene, seed=62)
        errors = ledger.of_type(ErrorType.MODEL_CLASS_ERROR)
        assert errors
        obs_by_id = {o.obs_id: o for o in obs}
        for record in errors:
            for obs_id in record.obs_ids:
                o = obs_by_id[obs_id]
                gt_class = scene.object_by_id(record.gt_object_id).object_class.value
                assert o.object_class != gt_class

    def test_some_errors_high_confidence(self):
        """§8.4: errors exist with confidence >= 0.9 (uncertainty sampling
        cannot find them)."""
        cfg = DetectorConfig(
            gross_loc_rate=0.6, class_error_rate=0.6,
            ghost_tracks_per_scene=3.0, error_high_conf_rate=0.5,
        )
        model = DetectorModel(cfg)
        high_conf_errors = 0
        for seed in range(6):
            scene = SceneGenerator().generate(f"hc-{seed}", seed=seed)
            obs, ledger = model.predict_scene(scene, seed=seed)
            index = ledger.obs_id_index()
            for o in obs:
                if o.obs_id in index and o.confidence >= 0.9:
                    high_conf_errors += 1
        assert high_conf_errors > 0


class TestDetectorProfiles:
    def test_internal_cleaner_than_public(self):
        scenes = SceneGenerator().generate_many(6, seed=70)
        pub_errors = int_errors = 0
        for i, scene in enumerate(scenes):
            _, pub_ledger = DetectorModel(PUBLIC_DETECTOR).predict_scene(scene, seed=i)
            _, int_ledger = DetectorModel(INTERNAL_DETECTOR).predict_scene(scene, seed=i)
            pub_errors += len(pub_ledger.model_errors())
            int_errors += len(int_ledger.model_errors())
        assert pub_errors > int_errors

    def test_confidence_decreases_with_distance(self):
        model = DetectorModel()
        rng = np.random.default_rng(0)
        near = np.mean([model._confidence(rng, 5.0, error=False) for _ in range(300)])
        far = np.mean([model._confidence(rng, 70.0, error=False) for _ in range(300)])
        assert near > far
