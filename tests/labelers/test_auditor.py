"""Tests for the automatic auditor."""

import pytest

from repro.core.model import (
    SOURCE_AUDITOR,
    SOURCE_HUMAN,
    SOURCE_MODEL,
    Observation,
    ObservationBundle,
    Track,
)
from repro.datagen import SceneGenerator
from repro.geometry import Box3D
from repro.labelers import (
    Auditor,
    DetectorModel,
    ErrorLedger,
    ErrorRecord,
    ErrorType,
    HumanLabeler,
)


def obs(frame=0, gt_id="obj-a", source=SOURCE_MODEL, obs_id=None, cls="car"):
    kwargs = {}
    if obs_id is not None:
        kwargs["obs_id"] = obs_id
    return Observation(
        frame=frame,
        box=Box3D(x=frame * 1.0, y=0, z=0.85, length=4.5, width=1.9, height=1.7),
        object_class=cls,
        source=source,
        confidence=0.9 if source == SOURCE_MODEL else None,
        metadata={"gt_object_id": gt_id},
        **kwargs,
    )


def track_of(observations, track_id="t0"):
    bundles = {}
    for o in observations:
        bundles.setdefault(o.frame, ObservationBundle(frame=o.frame)).add(o)
    return Track(track_id=track_id, bundles=list(bundles.values()))


@pytest.fixture(scope="module")
def scene():
    return SceneGenerator().generate("audit", seed=90)


def make_ledger(scene, **kwargs):
    ledger = ErrorLedger()
    for record in kwargs.get("records", []):
        ledger.record(record)
    return ledger


class TestAuditMissingTrack:
    def test_hit(self, scene):
        missed_obj = scene.objects[0]
        ledger = ErrorLedger()
        ledger.record(
            ErrorRecord(
                error_type=ErrorType.MISSING_TRACK,
                scene_id=scene.scene_id,
                source=SOURCE_HUMAN,
                gt_object_id=missed_obj.object_id,
                frames=(0, 1, 2),
                object_class=missed_obj.object_class.value,
            )
        )
        auditor = Auditor(scene, ledger)
        track = track_of([obs(f, gt_id=missed_obj.object_id) for f in range(3)])
        decision = auditor.audit_missing_track(track)
        assert decision.is_error
        assert decision.matched is not None
        assert decision.matched.gt_object_id == missed_obj.object_id

    def test_miss_for_labeled_object(self, scene):
        auditor = Auditor(scene, ErrorLedger())
        track = track_of([obs(f, gt_id=scene.objects[0].object_id) for f in range(3)])
        assert not auditor.audit_missing_track(track).is_error

    def test_ghost_track_not_a_missing_label(self, scene):
        auditor = Auditor(scene, ErrorLedger())
        track = track_of([obs(f, gt_id=None) for f in range(3)])
        assert not auditor.audit_missing_track(track).is_error

    def test_majority_vote(self, scene):
        missed_obj = scene.objects[1]
        ledger = ErrorLedger()
        ledger.record(
            ErrorRecord(
                error_type=ErrorType.MISSING_TRACK,
                scene_id=scene.scene_id,
                source=SOURCE_HUMAN,
                gt_object_id=missed_obj.object_id,
                frames=(0, 1, 2, 3),
                object_class=missed_obj.object_class.value,
            )
        )
        auditor = Auditor(scene, ledger)
        # 3 of 4 observations belong to the missed object.
        members = [obs(f, gt_id=missed_obj.object_id) for f in range(3)]
        members.append(obs(3, gt_id="other-object"))
        assert auditor.audit_missing_track(track_of(members)).is_error


class TestAuditMissingObservation:
    def test_hit_on_dropped_frame(self, scene):
        target = scene.objects[0]
        ledger = ErrorLedger()
        ledger.record(
            ErrorRecord(
                error_type=ErrorType.MISSING_OBSERVATION,
                scene_id=scene.scene_id,
                source=SOURCE_HUMAN,
                gt_object_id=target.object_id,
                frames=(5,),
                object_class=target.object_class.value,
            )
        )
        auditor = Auditor(scene, ledger)
        bundle = ObservationBundle(frame=5, observations=[obs(5, gt_id=target.object_id)])
        assert auditor.audit_missing_observation(bundle).is_error
        other = ObservationBundle(frame=6, observations=[obs(6, gt_id=target.object_id)])
        assert not auditor.audit_missing_observation(other).is_error


class TestAuditModelError:
    def test_ghost_is_model_error(self, scene):
        auditor = Auditor(scene, ErrorLedger())
        track = track_of([obs(f, gt_id=None) for f in range(3)])
        decision = auditor.audit_model_error(track)
        assert decision.is_error
        assert decision.reason == "ghost track"

    def test_error_obs_matches_record(self, scene):
        bad = obs(0, gt_id=scene.objects[0].object_id, obs_id="bad-obs")
        ledger = ErrorLedger()
        ledger.record(
            ErrorRecord(
                error_type=ErrorType.MODEL_LOCALIZATION_ERROR,
                scene_id=scene.scene_id,
                source=SOURCE_MODEL,
                gt_object_id=scene.objects[0].object_id,
                frames=(0,),
                obs_ids=("bad-obs",),
                object_class="car",
            )
        )
        auditor = Auditor(scene, ledger)
        track = track_of([bad, obs(1, gt_id=scene.objects[0].object_id)])
        decision = auditor.audit_model_error(track)
        assert decision.is_error
        assert decision.matched.error_type is ErrorType.MODEL_LOCALIZATION_ERROR

    def test_clean_track_not_error(self, scene):
        auditor = Auditor(scene, ErrorLedger())
        track = track_of([obs(f, gt_id=scene.objects[0].object_id) for f in range(4)])
        assert not auditor.audit_model_error(track).is_error

    def test_human_label_error_not_model_error(self, scene):
        flip = obs(0, gt_id=scene.objects[0].object_id, obs_id="flip-obs",
                   source=SOURCE_HUMAN)
        ledger = ErrorLedger()
        ledger.record(
            ErrorRecord(
                error_type=ErrorType.CLASS_FLIP,
                scene_id=scene.scene_id,
                source=SOURCE_HUMAN,
                gt_object_id=scene.objects[0].object_id,
                frames=(0,),
                obs_ids=("flip-obs",),
                object_class="car",
            )
        )
        auditor = Auditor(scene, ledger)
        track = track_of([flip])
        assert not auditor.audit_model_error(track).is_error
        assert auditor.audit_label_error_observation(flip).is_error


class TestMakeObservations:
    def test_auditor_observations_are_ground_truth(self, scene):
        auditor = Auditor(scene, ErrorLedger())
        observations = auditor.make_observations()
        assert observations
        assert all(o.source == SOURCE_AUDITOR for o in observations)
        for o in observations[:50]:
            gt = scene.object_by_id(o.metadata["gt_object_id"]).box_at(o.frame)
            assert gt == o.box

    def test_integration_with_simulated_sources(self, scene):
        """End-to-end: human + detector errors audit consistently."""
        ledger = ErrorLedger()
        HumanLabeler().label_scene(scene, seed=1, ledger=ledger)
        DetectorModel().predict_scene(scene, seed=2, ledger=ledger)
        auditor = Auditor(scene, ledger)
        for missed_id in ledger.missing_track_object_ids(scene.scene_id):
            track = track_of([obs(f, gt_id=missed_id) for f in range(3)],
                             track_id=missed_id)
            assert auditor.audit_missing_track(track).is_error
