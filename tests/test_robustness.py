"""Failure-injection and adversarial-input tests across module boundaries.

Production label stores contain garbage: duplicate observations,
degenerate boxes, single-frame scenes, contradictory sources. These tests
pin down how the pipeline behaves at those edges — no crashes, documented
fallbacks.
"""

import math

import numpy as np
import pytest

from repro.association import TrackBuilder
from repro.core import (
    CountFeature,
    Fixy,
    VelocityFeature,
    VolumeFeature,
    default_features,
)
from repro.core.model import Observation, ObservationBundle, Scene, Track
from repro.geometry import Box3D, Pose2D

from tests.core.conftest import (  # noqa: F401  (training_scenes is a fixture)
    generic_features,
    make_obs,
    make_track,
    moving_track,
    scene_of,
    training_scenes,
)


def tiny_box_obs(frame=0):
    return Observation(
        frame=frame,
        box=Box3D(x=0, y=0, z=0.1, length=1e-3, width=1e-3, height=1e-3),
        object_class="car",
        source="model",
        confidence=0.5,
    )


class TestDegenerateGeometry:
    def test_tiny_boxes_score_without_crashing(self, training_scenes):
        fixy = Fixy(generic_features()).fit(training_scenes)
        track = Track(
            track_id="tiny",
            bundles=[
                ObservationBundle(frame=f, observations=[tiny_box_obs(f)])
                for f in range(4)
            ],
        )
        ranked = fixy.rank_tracks(scene_of([track]))
        # A near-zero-volume box is wildly atypical but must still get a
        # finite (floored) score, not crash or vanish.
        assert len(ranked) == 1
        assert math.isfinite(ranked[0].score)

    def test_coincident_boxes_associate_cleanly(self):
        # Ten identical model boxes at one frame: same source, so they
        # must form ten singleton bundles, not explode combinatorially.
        observations = [make_obs(0, x=5.0, source="model") for _ in range(10)]
        scene = TrackBuilder().build_scene("dup", 0.2, observations)
        assert sum(t.n_observations for t in scene.tracks) == 10


class TestDegenerateScenes:
    def test_single_frame_scene(self, training_scenes):
        fixy = Fixy(generic_features()).fit(training_scenes)
        track = make_track("single", {0: [make_obs(0, x=1.0)]})
        ranked = fixy.rank_tracks(scene_of([track]))
        # Count feature zeroes 1-obs tracks: nothing survives, no crash.
        assert ranked == []

    def test_empty_scene(self, training_scenes):
        fixy = Fixy(generic_features()).fit(training_scenes)
        assert fixy.rank_tracks(Scene(scene_id="empty", dt=0.2)) == []

    def test_scene_without_ego_poses_fails_only_distance(self, training_scenes):
        """Features needing ego data raise a clear error; feature sets
        without them work on ego-less scenes."""
        track = moving_track("t", n_frames=5)
        scene = scene_of([track], with_ego=False)

        without_distance = [
            f for f in generic_features() if f.name != "distance"
        ]
        fixy = Fixy(without_distance).fit(training_scenes)
        assert len(fixy.rank_tracks(scene)) == 1

        with_distance = Fixy(generic_features()).fit(training_scenes)
        with pytest.raises(ValueError, match="ego poses"):
            with_distance.rank_tracks(scene)


class TestContradictoryInputs:
    def test_all_sources_disagree_on_class(self, training_scenes):
        fixy = Fixy([VolumeFeature(), VelocityFeature(), CountFeature()]).fit(
            training_scenes
        )
        frames = {}
        classes = ["car", "truck", "pedestrian", "motorcycle"]
        for f in range(4):
            frames[f] = [make_obs(f, x=0.4 * f, cls=classes[f], source="model")]
        track = make_track("confused", frames)
        ranked = fixy.rank_tracks(scene_of([track]))
        assert len(ranked) == 1  # scores, does not crash on mixed classes

    def test_duplicate_obs_ids_rejected_at_compile(self, training_scenes):
        obs = make_obs(0, x=0.0)
        clone = Observation(
            frame=1, box=obs.box, object_class=obs.object_class,
            source=obs.source, obs_id=obs.obs_id,
        )
        track = Track(
            track_id="dup-id",
            bundles=[
                ObservationBundle(frame=0, observations=[obs]),
                ObservationBundle(frame=1, observations=[clone]),
            ],
        )
        fixy = Fixy(generic_features()).fit(training_scenes)
        with pytest.raises(ValueError, match="already exists"):
            fixy.compile(scene_of([track]))


class TestNumericalExtremes:
    def test_huge_coordinates(self, training_scenes):
        fixy = Fixy([VolumeFeature(), VelocityFeature(), CountFeature()]).fit(
            training_scenes
        )
        frames = {
            f: [make_obs(f, x=1e7 + 0.4 * f, source="model")] for f in range(4)
        }
        ranked = fixy.rank_tracks(scene_of([make_track("far", frames)]))
        assert len(ranked) == 1
        assert math.isfinite(ranked[0].score)

    def test_learning_survives_constant_feature_values(self):
        """All training values identical (zero variance) must not crash
        the KDE fit (degenerate-bandwidth fallback)."""
        track = make_track(
            "const", {f: [make_obs(f, x=0.0)] for f in range(12)}
        )
        scenes = [scene_of([track], scene_id=f"c{i}") for i in range(2)]
        fixy = Fixy([VolumeFeature(), VelocityFeature(), CountFeature()],
                    min_samples=3).fit(scenes)
        assert fixy.is_fitted
        ranked = fixy.rank_tracks(scenes[0])
        assert len(ranked) == 1
