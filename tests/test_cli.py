"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--profile", "lyft", "--out", "/tmp/x", "--val", "2"]
        )
        assert args.command == "generate"
        assert args.profile == "lyft"
        assert args.val == 2

    def test_bad_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--profile", "waymo", "--out", "x"])

    def test_bad_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])


class TestGenerate:
    def test_writes_scene_files(self, tmp_path, capsys):
        code = main(
            ["generate", "--profile", "internal", "--out", str(tmp_path),
             "--train", "1", "--val", "2"]
        )
        assert code == 0
        labels = sorted(tmp_path.glob("*.labels.json"))
        errors = sorted(tmp_path.glob("*.errors.json"))
        worlds = sorted(tmp_path.glob("*.world.json"))
        assert len(labels) == 3  # 1 train + 2 val
        assert len(errors) == 2
        assert len(worlds) == 2
        # Files are valid JSON and reload through the public API.
        from repro.core import Scene
        from repro.datagen import SceneCollection
        from repro.labelers import ErrorLedger

        scene = Scene.load(labels[0])
        assert scene.dt > 0
        ErrorLedger.load(errors[0])
        SceneCollection.load(worlds[0])
        assert "wrote" in capsys.readouterr().out


class TestExperiment:
    def test_runtime_experiment(self, capsys):
        code = main(["experiment", "runtime"])
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime" in out
        assert "paper budget" in out

    def test_table3_reduced(self, capsys):
        code = main(["experiment", "table3", "--train", "2", "--val", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fixy" in out and "Ad-hoc MA" in out


class TestAudit:
    """End-to-end smoke for the new declarative surface (tier-1: this is
    the test that keeps `repro.cli audit` from silently rotting)."""

    def test_audit_end_to_end_nonempty_result(self, capsys):
        code = main(
            ["audit", "--profile", "internal", "--train", "2", "--val", "1",
             "--scene", "0", "--top", "5", "--model-only"]
        )
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        assert result["items"], "audit returned an empty AuditResult"
        assert result["items"][0]["kind"] == "track"
        assert result["spec"]["kind"] == "tracks"
        assert result["provenance"]["backend"] == "inline"
        assert result["provenance"]["model_fingerprint"]
        # The printed JSON is the full typed result: it round-trips.
        from repro.api import AuditResult

        assert len(AuditResult.from_dict(result).items) == len(result["items"])

    def test_audit_writes_out_file(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main(
            ["audit", "--profile", "internal", "--train", "2", "--val", "1",
             "--scene", "0", "--top", "3", "--out", str(out)]
        )
        assert code == 0
        assert json.loads(out.read_text())["items"]

    def test_audit_from_spec_file(self, tmp_path, capsys):
        from repro.api import AuditSpec, FilterSpec, SceneSource

        spec = AuditSpec(
            kind="tracks",
            top_k=4,
            filters=FilterSpec(has_model=True, has_human=False),
            scenes=SceneSource(
                profile="internal", n_train=2, n_val=1, indices=(0,)
            ),
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(indent=2))
        code = main(["audit", "--spec", str(path)])
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        assert result["spec"]["top_k"] == 4
        assert result["provenance"]["spec_hash"] == spec.spec_hash()

    def test_audit_spec_file_conflicts_with_flags(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text("{}")
        # Scene-source flags and query flags alike conflict with --spec.
        for flags in (["--profile", "internal"], ["--top", "3"],
                      ["--backend", "sharded"]):
            code = main(["audit", "--spec", str(path)] + flags)
            assert code == 2
            assert "ambiguous" in capsys.readouterr().err

    def test_audit_bad_spec_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        for bad in ('{"kind": "galxy"}', '{"backend": "galxy"}', "{}"):
            path.write_text(bad)
            code = main(["audit", "--spec", str(path)])
            assert code == 2
            assert "invalid audit spec" in capsys.readouterr().err

    def test_audit_flag_backend_mismatch_fails_cleanly(self, capsys):
        code = main(
            ["audit", "--profile", "internal", "--workers", "2"]
        )
        assert code == 2
        assert "--workers applies" in capsys.readouterr().err

    def test_audit_requires_a_scene_source(self, capsys):
        code = main(["audit"])
        assert code == 2
        assert "scene source" in capsys.readouterr().err

    def test_audit_parser_defaults(self):
        args = build_parser().parse_args(["audit", "--profile", "internal"])
        assert args.backend == "inline"
        assert args.kind == "tracks"
        assert args.split == "val"


class TestRank:
    def test_rank_prints_audited_list(self, capsys):
        with pytest.warns(DeprecationWarning, match="repro.cli rank"):
            code = main(
                ["rank", "--profile", "internal", "--scene", "0", "--top", "5",
                 "--train", "2", "--val", "2"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "potential missing labels" in out

    def test_rank_bad_scene_index(self, capsys):
        code = main(
            ["rank", "--profile", "internal", "--scene", "99",
             "--train", "1", "--val", "1"]
        )
        assert code == 2
        assert "out of range" in capsys.readouterr().err
