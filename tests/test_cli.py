"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--profile", "lyft", "--out", "/tmp/x", "--val", "2"]
        )
        assert args.command == "generate"
        assert args.profile == "lyft"
        assert args.val == 2

    def test_bad_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--profile", "waymo", "--out", "x"])

    def test_bad_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])


class TestGenerate:
    def test_writes_scene_files(self, tmp_path, capsys):
        code = main(
            ["generate", "--profile", "internal", "--out", str(tmp_path),
             "--train", "1", "--val", "2"]
        )
        assert code == 0
        labels = sorted(tmp_path.glob("*.labels.json"))
        errors = sorted(tmp_path.glob("*.errors.json"))
        worlds = sorted(tmp_path.glob("*.world.json"))
        assert len(labels) == 3  # 1 train + 2 val
        assert len(errors) == 2
        assert len(worlds) == 2
        # Files are valid JSON and reload through the public API.
        from repro.core import Scene
        from repro.datagen import SceneCollection
        from repro.labelers import ErrorLedger

        scene = Scene.load(labels[0])
        assert scene.dt > 0
        ErrorLedger.load(errors[0])
        SceneCollection.load(worlds[0])
        assert "wrote" in capsys.readouterr().out


class TestExperiment:
    def test_runtime_experiment(self, capsys):
        code = main(["experiment", "runtime"])
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime" in out
        assert "paper budget" in out

    def test_table3_reduced(self, capsys):
        code = main(["experiment", "table3", "--train", "2", "--val", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fixy" in out and "Ad-hoc MA" in out


class TestRank:
    def test_rank_prints_audited_list(self, capsys):
        code = main(
            ["rank", "--profile", "internal", "--scene", "0", "--top", "5",
             "--train", "2", "--val", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "potential missing labels" in out

    def test_rank_bad_scene_index(self, capsys):
        code = main(
            ["rank", "--profile", "internal", "--scene", "99",
             "--train", "1", "--val", "1"]
        )
        assert code == 2
        assert "out of range" in capsys.readouterr().err
