"""Tests for the command-line interface."""

import json
import re
import socket
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--profile", "lyft", "--out", "/tmp/x", "--val", "2"]
        )
        assert args.command == "generate"
        assert args.profile == "lyft"
        assert args.val == 2

    def test_bad_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--profile", "waymo", "--out", "x"])

    def test_bad_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])


class TestGenerate:
    def test_writes_scene_files(self, tmp_path, capsys):
        code = main(
            ["generate", "--profile", "internal", "--out", str(tmp_path),
             "--train", "1", "--val", "2"]
        )
        assert code == 0
        labels = sorted(tmp_path.glob("*.labels.json"))
        errors = sorted(tmp_path.glob("*.errors.json"))
        worlds = sorted(tmp_path.glob("*.world.json"))
        assert len(labels) == 3  # 1 train + 2 val
        assert len(errors) == 2
        assert len(worlds) == 2
        # Files are valid JSON and reload through the public API.
        from repro.core import Scene
        from repro.datagen import SceneCollection
        from repro.labelers import ErrorLedger

        scene = Scene.load(labels[0])
        assert scene.dt > 0
        ErrorLedger.load(errors[0])
        SceneCollection.load(worlds[0])
        assert "wrote" in capsys.readouterr().out


class TestExperiment:
    def test_runtime_experiment(self, capsys):
        code = main(["experiment", "runtime"])
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime" in out
        assert "paper budget" in out

    def test_table3_reduced(self, capsys):
        code = main(["experiment", "table3", "--train", "2", "--val", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fixy" in out and "Ad-hoc MA" in out


class TestAudit:
    """End-to-end smoke for the new declarative surface (tier-1: this is
    the test that keeps `repro.cli audit` from silently rotting)."""

    def test_audit_end_to_end_nonempty_result(self, capsys):
        code = main(
            ["audit", "--profile", "internal", "--train", "2", "--val", "1",
             "--scene", "0", "--top", "5", "--model-only"]
        )
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        assert result["items"], "audit returned an empty AuditResult"
        assert result["items"][0]["kind"] == "track"
        assert result["spec"]["kind"] == "tracks"
        assert result["provenance"]["backend"] == "inline"
        assert result["provenance"]["model_fingerprint"]
        # The printed JSON is the full typed result: it round-trips.
        from repro.api import AuditResult

        assert len(AuditResult.from_dict(result).items) == len(result["items"])

    def test_audit_writes_out_file(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main(
            ["audit", "--profile", "internal", "--train", "2", "--val", "1",
             "--scene", "0", "--top", "3", "--out", str(out)]
        )
        assert code == 0
        assert json.loads(out.read_text())["items"]

    def test_audit_from_spec_file(self, tmp_path, capsys):
        from repro.api import AuditSpec, FilterSpec, SceneSource

        spec = AuditSpec(
            kind="tracks",
            top_k=4,
            filters=FilterSpec(has_model=True, has_human=False),
            scenes=SceneSource(
                profile="internal", n_train=2, n_val=1, indices=(0,)
            ),
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(indent=2))
        code = main(["audit", "--spec", str(path)])
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        assert result["spec"]["top_k"] == 4
        assert result["provenance"]["spec_hash"] == spec.spec_hash()

    def test_audit_spec_file_conflicts_with_flags(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text("{}")
        # Scene-source flags and query flags alike conflict with --spec.
        for flags in (["--profile", "internal"], ["--top", "3"],
                      ["--backend", "sharded"]):
            code = main(["audit", "--spec", str(path)] + flags)
            assert code == 2
            assert "ambiguous" in capsys.readouterr().err

    def test_audit_bad_spec_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        for bad in ('{"kind": "galxy"}', '{"backend": "galxy"}', "{}"):
            path.write_text(bad)
            code = main(["audit", "--spec", str(path)])
            assert code == 2
            assert "invalid audit spec" in capsys.readouterr().err

    def test_audit_flag_backend_mismatch_fails_cleanly(self, capsys):
        code = main(
            ["audit", "--profile", "internal", "--workers", "2"]
        )
        assert code == 2
        assert "--workers applies" in capsys.readouterr().err

    def test_audit_requires_a_scene_source(self, capsys):
        code = main(["audit"])
        assert code == 2
        assert "scene source" in capsys.readouterr().err

    def test_audit_parser_defaults(self):
        args = build_parser().parse_args(["audit", "--profile", "internal"])
        assert args.backend == "inline"
        assert args.kind == "tracks"
        assert args.split == "val"

    def test_audit_workers_flag_validation(self, capsys):
        cases = [
            # sharded takes one process count, not addresses
            (["--backend", "sharded", "--workers", "a:1"], "process count"),
            (["--backend", "sharded", "--workers", "2", "3"], "process count"),
            # remote takes addresses, and requires them
            (["--backend", "remote", "--workers", "nocolon"], "HOST:PORT"),
            (["--backend", "remote", "--workers", "host:nan"], "HOST:PORT"),
            (["--backend", "remote"], "--workers"),
            # timeout and wire are remote-only knobs
            (["--timeout", "5"], "--timeout applies"),
            (["--wire", "v2"], "--wire applies"),
        ]
        for flags, needle in cases:
            code = main(["audit", "--profile", "internal"] + flags)
            assert code == 2, flags
            assert needle in capsys.readouterr().err, flags

    def test_audit_remote_execution_failure_is_clean(self, capsys):
        """A protocol failure (no worker listening) is reported as a
        clean 'audit failed' with its own exit code, not a traceback."""
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            dead = "127.0.0.1:%d" % sock.getsockname()[1]
        code = main(
            ["audit", "--profile", "internal", "--train", "2", "--val", "1",
             "--backend", "remote", "--workers", dead]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "audit failed" in err and "worker_unavailable" in err

    def test_audit_sharded_workers_count_still_parses(self):
        args = build_parser().parse_args(
            ["audit", "--profile", "internal", "--backend", "sharded",
             "--workers", "4"]
        )
        assert args.workers == ["4"]

    def test_serve_listen_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--listen", "0.0.0.0:7500", "--capacity", "3",
             "--strict"]
        )
        assert args.listen == "0.0.0.0:7500"
        assert args.capacity == 3
        assert args.strict is True

    def test_serve_bad_listen_address_fails_before_model_load(self, capsys):
        for bad in ("7500", "no-port-here", "host:nan"):
            code = main(["serve", "--listen", bad])
            assert code == 2
            assert "invalid --listen address" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# The TCP transport: `serve --listen` workers as real subprocesses.
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def served_artifacts(tmp_path_factory):
    """A saved model + scene files shared by the TCP serve tests."""
    from tests.serving.conftest import build_training_scenes, model_scene
    from repro.core import Fixy, default_features

    tmp = tmp_path_factory.mktemp("cli-tcp")
    fixy = Fixy(default_features()).fit(build_training_scenes())
    fixy.warmup_fast_eval()
    model_path = tmp / "model.json"
    fixy.learned.save(model_path, include_grids=True)
    scene_paths = []
    for i in range(2):
        path = tmp / f"scene-{i}.json"
        model_scene(f"cli-tcp-{i}", n_tracks=4).save(path)
        scene_paths.append(str(path))
    return {
        "model_path": str(model_path),
        "fingerprint": fixy.learned.fingerprint(),
        "scene_paths": scene_paths,
    }


def spawn_serve(model_path: str, *extra_flags: str) -> subprocess.Popen:
    """`python -m repro.cli serve --listen 127.0.0.1:0 ...`; the bound
    address is parsed off stderr and stored on ``proc.address``."""
    import os

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--model", model_path,
         "--listen", "127.0.0.1:0", *extra_flags],
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    for line in proc.stderr:
        found = re.search(r"listening on (\S+)", line)
        if found:
            proc.address = found.group(1)
            return proc
    proc.terminate()
    raise RuntimeError("serve --listen never announced its address")


@pytest.fixture(scope="module")
def strict_worker(served_artifacts):
    proc = spawn_serve(served_artifacts["model_path"], "--strict")
    yield proc
    proc.terminate()
    proc.wait(timeout=10)


@pytest.fixture(scope="module")
def legacy_worker(served_artifacts):
    proc = spawn_serve(served_artifacts["model_path"], "--capacity", "2")
    yield proc
    proc.terminate()
    proc.wait(timeout=10)


def raw_request(address: str, payload: dict) -> dict:
    """One raw JSON line to a worker, bypassing the typed client (the
    only way to send version-less v0 requests)."""
    host, port = address.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10) as sock:
        sock.sendall((json.dumps(payload) + "\n").encode())
        reader = sock.makefile("r")
        return json.loads(reader.readline())


class TestServeListen:
    """The stdio protocol behind TCP: strict mode, the v0 shim, worker
    registration, and the remote backend end-to-end via the CLI."""

    def test_strict_rejects_v0_over_tcp(self, strict_worker):
        from repro.api import protocol

        response = raw_request(strict_worker.address, {"op": "stats"})
        assert response["ok"] is False
        # A rejection that never negotiated is stamped with the
        # server's own (current-build) version.
        assert response["v"] == protocol.PROTOCOL_VERSION
        assert response["error"]["code"] == "unsupported_version"

    def test_strict_answers_v1_over_tcp(self, strict_worker):
        response = raw_request(strict_worker.address, {"v": 1, "op": "stats"})
        assert response["ok"] is True
        assert response["v"] == 1

    def test_v0_shim_over_tcp(self, legacy_worker):
        """A version-less request over TCP is answered in the v0
        dialect (no "v", string errors) — the deprecation shim is
        transport-independent."""
        response = raw_request(legacy_worker.address, {"op": "stats"})
        assert response["ok"] is True
        assert "v" not in response
        bad = raw_request(legacy_worker.address, {"op": "warp"})
        assert bad["ok"] is False
        assert isinstance(bad["error"], str)  # v0 errors stay strings

    def test_hello_over_tcp_advertises_model(
        self, strict_worker, legacy_worker, served_artifacts
    ):
        from repro.api import AuditClient

        from repro.api import protocol

        with AuditClient.connect(strict_worker.address, timeout=30) as client:
            hello = client.hello()
        assert hello["protocol_version"] == protocol.PROTOCOL_VERSION
        assert "frames" in hello["wire_formats"]
        assert hello["model_fingerprint"] == served_artifacts["fingerprint"]
        assert hello["capacity"] == 1
        with AuditClient.connect(legacy_worker.address, timeout=30) as client:
            assert client.hello()["capacity"] == 2

    def test_serve_busy_port_fails_cleanly(
        self, strict_worker, served_artifacts, capsys
    ):
        code = main(
            ["serve", "--model", served_artifacts["model_path"],
             "--listen", strict_worker.address]
        )
        assert code == 2
        assert "cannot listen on" in capsys.readouterr().err

    def test_cli_audit_remote_matches_inline(
        self, strict_worker, legacy_worker, served_artifacts, capsys
    ):
        """`audit --backend remote --workers ...` against two live
        serve subprocesses returns the same items as inline."""
        base = [
            "audit",
            "--paths", *served_artifacts["scene_paths"],
            "--model", served_artifacts["model_path"],
            "--top", "5",
        ]
        assert main(base) == 0
        inline = json.loads(capsys.readouterr().out)
        code = main(
            base + [
                "--backend", "remote",
                "--workers", strict_worker.address, legacy_worker.address,
                "--timeout", "60",
            ]
        )
        assert code == 0
        remote = json.loads(capsys.readouterr().out)
        assert remote["items"] == inline["items"]
        assert remote["provenance"]["backend"] == "remote"
        attribution = remote["provenance"]["workers"]
        assert attribution and all(w["rank_s"] >= 0 for w in attribution)
        assert {w["worker"] for w in attribution} <= {
            strict_worker.address, legacy_worker.address,
        }
        # Current serve subprocesses advertise frames: auto picked v2.
        assert {w["wire"] for w in attribution} == {"v2"}

    def test_cli_audit_remote_wire_v2_flag(
        self, strict_worker, served_artifacts, capsys
    ):
        """`audit --wire v2` forces the framed wire end-to-end."""
        code = main(
            [
                "audit",
                "--paths", *served_artifacts["scene_paths"],
                "--model", served_artifacts["model_path"],
                "--top", "5",
                "--backend", "remote",
                "--workers", strict_worker.address,
                "--wire", "v2",
            ]
        )
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        attribution = result["provenance"]["workers"]
        assert {w["wire"] for w in attribution} == {"v2"}
        assert result["provenance"]["backend_options"]["wire"] == "v2"


class TestRank:
    def test_rank_prints_audited_list(self, capsys):
        with pytest.warns(DeprecationWarning, match="repro.cli rank"):
            code = main(
                ["rank", "--profile", "internal", "--scene", "0", "--top", "5",
                 "--train", "2", "--val", "2"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "potential missing labels" in out

    def test_rank_bad_scene_index(self, capsys):
        code = main(
            ["rank", "--profile", "internal", "--scene", "99",
             "--train", "1", "--val", "1"]
        )
        assert code == 2
        assert "out of range" in capsys.readouterr().err
