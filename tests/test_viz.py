"""Tests for ASCII BEV rendering."""

import pytest

from repro.datagen import SceneGenerator
from repro.datasets import SYNTHETIC_INTERNAL, build_labeled_scene
from repro.geometry import Pose2D
from repro.viz import Canvas, render_tracks, render_world_frame


@pytest.fixture(scope="module")
def labeled():
    world = SceneGenerator().generate("viz", seed=13)
    return build_labeled_scene(
        world, SYNTHETIC_INTERNAL.vendor, SYNTHETIC_INTERNAL.detector, seed=13
    )


class TestCanvas:
    def test_dimensions(self):
        text = Canvas(width=20, height=10).render()
        lines = text.splitlines()
        assert len(lines) == 12  # 10 rows + 2 borders
        assert all(len(line) == 22 for line in lines)

    def test_plot_center(self):
        cv = Canvas(width=21, height=11)
        assert cv.plot(0.0, 0.0, "E")
        lines = cv.render().splitlines()
        assert lines[6][11] == "E"  # middle row/col (+1 border offset)

    def test_plot_out_of_view(self):
        cv = Canvas(half_extent_m=10.0)
        assert not cv.plot(100.0, 0.0, "x")

    def test_forward_is_up_left_is_left(self):
        cv = Canvas(width=21, height=21, half_extent_m=10.0)
        cv.plot(8.0, 0.0, "F")   # forward
        cv.plot(0.0, 8.0, "L")   # left
        lines = cv.render().splitlines()[1:-1]
        f_row = next(i for i, l in enumerate(lines) if "F" in l)
        l_col = next(l.index("L") for l in lines if "L" in l)
        assert f_row < 10          # forward renders above center
        assert l_col > 11          # +y renders right of center column

    def test_range_rings(self):
        cv = Canvas(half_extent_m=50.0)
        cv.draw_range_rings(spacing_m=20.0)
        assert "." in cv.render()

    def test_validation(self):
        with pytest.raises(ValueError):
            Canvas(width=2)
        with pytest.raises(ValueError):
            Canvas(half_extent_m=0.0)


class TestRenderWorldFrame:
    def test_renders_with_missed_highlight(self, labeled):
        missing = labeled.ledger.missing_track_object_ids(labeled.scene_id)
        text = render_world_frame(labeled.world, 10, missing_ids=missing)
        assert labeled.scene_id in text
        assert "E" in text
        if missing:
            # At least one frame in the scene shows an X eventually.
            any_x = any(
                "X" in render_world_frame(labeled.world, f, missing_ids=missing)
                for f in range(0, labeled.world.n_frames, 10)
            )
            assert any_x

    def test_frame_bounds(self, labeled):
        with pytest.raises(IndexError):
            render_world_frame(labeled.world, 10_000)


class TestRenderTracks:
    def test_renders_sources(self, labeled):
        text = render_tracks(labeled.scene, 10)
        assert "bundles in view" in text
        assert "E" in text

    def test_uses_scene_ego_by_default(self, labeled):
        with_meta = render_tracks(labeled.scene, 10)
        explicit = render_tracks(
            labeled.scene, 10, ego=labeled.world.ego_poses[10]
        )
        assert with_meta == explicit

    def test_identity_fallback_without_ego(self, labeled):
        from repro.core.model import Scene

        bare = Scene(scene_id="bare", dt=0.2, tracks=list(labeled.scene.tracks))
        text = render_tracks(bare, 10, ego=Pose2D.identity())
        assert "bare" in text
