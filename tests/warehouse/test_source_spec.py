"""SceneSource warehouse= variant + the paths/split serialization fix."""

import json

import pytest

from repro.api import AuditSpec, SceneSource, SpecValidationError
from repro.api import frames
from repro.warehouse import ScenePredicate, SceneWarehouse

from tests.warehouse.conftest import build_corpus


@pytest.fixture(scope="module")
def corpus_db(tmp_path_factory):
    scenes = build_corpus()
    path = tmp_path_factory.mktemp("source") / "corpus.db"
    with SceneWarehouse(path) as warehouse:
        for i, scene in enumerate(scenes):
            warehouse.ingest(scene, tags=("even",) if i % 2 == 0 else ())
    return str(path), scenes


# ------------------------------------------------- serialization satellite


def test_paths_source_to_dict_omits_split(tmp_path):
    source = SceneSource(paths=("a.json", "b.json"))
    data = source.to_dict()
    assert "split" not in data
    assert SceneSource.from_dict(data) == source


def test_profile_source_still_emits_split():
    data = SceneSource(profile="internal").to_dict()
    assert data["split"] == "val"


def test_legacy_paths_dict_with_split_still_loads():
    # Dicts serialized before the fix carried the (meaningless) default
    # split; they must keep loading, and hash equal to the new form.
    legacy = {"paths": ["a.json", "b.json"], "split": "val"}
    source = SceneSource.from_dict(legacy)
    assert source == SceneSource(paths=("a.json", "b.json"))
    old = AuditSpec.from_dict(
        {"kind": "tracks", "scenes": dict(legacy)}
    )
    new = AuditSpec(kind="tracks", scenes=SceneSource(paths=("a.json", "b.json")))
    assert old.spec_hash() == new.spec_hash()


def test_warehouse_source_round_trips_with_predicate(corpus_db):
    path, _ = corpus_db
    source = SceneSource(
        warehouse=path,
        predicate=ScenePredicate.range("n_tracks", low=3),
        batch=4,
    )
    data = json.loads(json.dumps(source.to_dict()))
    clone = SceneSource.from_dict(data)
    assert clone == source
    assert clone.predicate == source.predicate
    spec = AuditSpec(kind="tracks", scenes=source)
    assert AuditSpec.from_dict(spec.to_dict()).spec_hash() == spec.spec_hash()


def test_predicate_dict_coerced_at_construction():
    source = SceneSource(
        warehouse="wh.db", predicate={"tag": "nightly"}
    )
    assert source.predicate == ScenePredicate.tag("nightly")


# -------------------------------------------------------------- validation


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(),
        dict(profile="internal", warehouse="wh.db"),
        dict(paths=("a.json",), warehouse="wh.db"),
        dict(paths=("a.json",), predicate={"tag": "x"}),
        dict(profile="internal", batch=4),
        dict(warehouse="wh.db", batch=0),
        dict(warehouse="wh.db", batch=-3),
        dict(warehouse="wh.db", n_train=2),
    ],
)
def test_invalid_sources_rejected(kwargs):
    with pytest.raises(SpecValidationError):
        SceneSource(**kwargs).validate()


def test_warehouse_source_has_no_training_split(corpus_db):
    path, _ = corpus_db
    with pytest.raises(SpecValidationError):
        SceneSource(warehouse=path).resolve_training_scenes()


# -------------------------------------------------------------- resolution


def test_warehouse_resolve_matches_fingerprint_order(corpus_db):
    path, scenes = corpus_db
    source = SceneSource(warehouse=path)
    resolved = source.resolve()
    by_fp = {
        frames.scene_fingerprint(frames.pack_scene(s)): s for s in scenes
    }
    assert [s.scene_id for s in resolved] == [
        by_fp[fp].scene_id for fp in sorted(by_fp)
    ]
    assert [frames.pack_scene(s) for s in resolved] == [
        frames.pack_scene(by_fp[fp]) for fp in sorted(by_fp)
    ]


def test_resolve_iter_is_lazy_and_equal(corpus_db):
    path, _ = corpus_db
    source = SceneSource(warehouse=path, batch=3)
    iterator = source.resolve_iter()
    first = next(iterator)
    rest = list(iterator)
    eager = source.resolve()
    assert [s.scene_id for s in [first, *rest]] == [
        s.scene_id for s in eager
    ]


def test_predicate_prunes_resolution(corpus_db):
    path, scenes = corpus_db
    source = SceneSource(
        warehouse=path, predicate=ScenePredicate.tag("even")
    )
    resolved = source.resolve()
    assert 0 < len(resolved) < len(scenes)
    even_ids = {s.scene_id for i, s in enumerate(scenes) if i % 2 == 0}
    assert {s.scene_id for s in resolved} == even_ids


def test_indices_apply_to_warehouse_selection(corpus_db):
    path, _ = corpus_db
    all_ids = [s.scene_id for s in SceneSource(warehouse=path).resolve()]
    picked = SceneSource(warehouse=path, indices=(2, 0)).resolve()
    assert [s.scene_id for s in picked] == [all_ids[2], all_ids[0]]
    with pytest.raises(SpecValidationError, match="out of range"):
        SceneSource(warehouse=path, indices=(99,)).resolve()


def test_missing_warehouse_resolution_fails(tmp_path):
    source = SceneSource(warehouse=str(tmp_path / "absent.db"))
    with pytest.raises(Exception):
        source.resolve()
