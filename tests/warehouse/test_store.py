"""SceneWarehouse store tests: round-trips, corruption, compiled sidecars."""

import threading

import pytest

from repro.api import frames
from repro.warehouse import (
    SceneWarehouse,
    UnknownFingerprintError,
    WarehouseCorruptionError,
    WarehouseError,
    pack_compiled,
    restore_compiled,
    scene_metadata,
    warehouse_scorer,
)

from tests.warehouse.conftest import build_corpus, corpus_scene


# ----------------------------------------------------------------- blobs


def test_ingest_roundtrip_bit_identical(warehouse, corpus_scenes):
    for scene in corpus_scenes:
        packed = frames.pack_scene(scene)
        fingerprint = warehouse.ingest(scene)
        assert fingerprint == frames.scene_fingerprint(packed)
        assert warehouse.get_blob(fingerprint) == packed
        restored = warehouse.get(fingerprint)
        assert frames.pack_scene(restored) == packed
    assert len(warehouse) == len(corpus_scenes)


def test_ingest_packed_matches_ingest(warehouse, corpus_scenes):
    scene = corpus_scenes[0]
    packed = frames.pack_scene(scene)
    assert warehouse.ingest_packed(packed) == warehouse.ingest(scene)
    assert len(warehouse) == 1


def test_reingest_idempotent_last_write_wins_tags(warehouse):
    scene = corpus_scene("rewrite")
    fingerprint = warehouse.ingest(scene, tags=("gen", "nightly"))
    assert warehouse.metadata(fingerprint)["tags"] == ["gen", "nightly"]
    assert warehouse.ingest(scene, tags=("other",)) == fingerprint
    assert len(warehouse) == 1
    assert warehouse.metadata(fingerprint)["tags"] == ["other"]


def test_concurrent_ingest_same_scene_idempotent(tmp_path):
    scene = corpus_scene("race")
    path = tmp_path / "race.db"
    errors = []

    def worker(tag):
        try:
            with SceneWarehouse(path) as wh:
                for _ in range(5):
                    wh.ingest(scene, tags=(tag,))
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    with SceneWarehouse(path, create=False) as wh:
        assert len(wh) == 1
        (fingerprint,) = wh.query()
        assert wh.get_blob(fingerprint) == frames.pack_scene(scene)
        # Last writer wins: exactly one worker's tag survives.
        tags = wh.metadata(fingerprint)["tags"]
        assert len(tags) == 1 and tags[0] in {"w0", "w1", "w2", "w3"}


def test_unknown_fingerprint_is_keyerror(warehouse):
    with pytest.raises(UnknownFingerprintError) as exc_info:
        warehouse.get_blob("deadbeef" * 5)
    assert isinstance(exc_info.value, KeyError)
    assert "deadbeef" in str(exc_info.value)


def test_fetch_batches_order_and_size(loaded_warehouse, corpus_scenes):
    fingerprints = loaded_warehouse.query()
    assert fingerprints == sorted(fingerprints)
    batches = list(loaded_warehouse.fetch_batches(fingerprints, batch=3))
    assert [len(b) for b in batches] == [3, 3, 2]
    flat = [fp for batch in batches for fp, _ in batch]
    assert flat == fingerprints
    for batch in batches:
        for fingerprint, scene in batch:
            assert (
                frames.scene_fingerprint(frames.pack_scene(scene))
                == fingerprint
            )


# ------------------------------------------------------------ corruption


def test_truncated_blob_raises_corruption(warehouse):
    scene = corpus_scene("trunc")
    fingerprint = warehouse.ingest(scene)
    blob = warehouse.get_blob(fingerprint)
    with warehouse._lock, warehouse._conn:
        warehouse._conn.execute(
            "UPDATE scenes SET blob = ? WHERE fingerprint = ?",
            (blob[: len(blob) // 2], fingerprint),
        )
    with pytest.raises(WarehouseCorruptionError) as exc_info:
        warehouse.get_blob(fingerprint)
    assert exc_info.value.fingerprint == fingerprint


def test_swapped_blob_fingerprint_mismatch(warehouse):
    fp_a = warehouse.ingest(corpus_scene("swap-a"))
    fp_b = warehouse.ingest(corpus_scene("swap-b", n_tracks=5))
    blob_b = warehouse.get_blob(fp_b)
    with warehouse._lock, warehouse._conn:
        warehouse._conn.execute(
            "UPDATE scenes SET blob = ? WHERE fingerprint = ?",
            (blob_b, fp_a),
        )
    with pytest.raises(WarehouseCorruptionError):
        warehouse.get(fp_a)
    # The untouched row still round-trips.
    assert warehouse.get_blob(fp_b) == blob_b


def test_open_missing_without_create_raises(tmp_path):
    with pytest.raises(WarehouseError):
        SceneWarehouse(tmp_path / "absent.db", create=False)


# ----------------------------------------------------------- metadata


def test_scene_metadata_indexed_fields(corpus_scenes):
    scene = corpus_scenes[0]
    meta = scene_metadata(scene)
    assert meta["scene_id"] == scene.scene_id
    assert meta["n_tracks"] == len(scene.tracks)
    assert meta["n_frames"] >= 1
    assert meta["duration_s"] == pytest.approx(meta["n_frames"] * meta["dt"])


def test_metadata_and_iter_metadata_agree(loaded_warehouse):
    by_iter = {
        fp: (meta, tags) for fp, meta, tags in loaded_warehouse.iter_metadata()
    }
    for fingerprint in loaded_warehouse.query():
        meta = loaded_warehouse.metadata(fingerprint)
        iter_meta, iter_tags = by_iter[fingerprint]
        assert set(meta["tags"]) == set(iter_tags)
        for key, value in iter_meta.items():
            assert meta[key] == value


def test_stats_counts(loaded_warehouse, corpus_scenes):
    stats = loaded_warehouse.stats()
    assert stats["scenes"] == len(corpus_scenes)
    assert stats["blob_bytes"] > 0
    assert stats["compiled"] == 0
    assert stats["schema_version"] == 1


# ------------------------------------------------------- compiled sidecar


def _ranks(scorer, kinds=("tracks", "bundles", "observations")):
    return {kind: scorer.rank(kind, None) for kind in kinds}


def test_sidecar_rank_byte_identity(warehouse, fitted_fixy):
    scene = corpus_scene("sidecar")
    fingerprint = warehouse.ingest(scene)

    cold_scorer, from_sidecar = warehouse_scorer(
        warehouse, fitted_fixy, fingerprint, scene
    )
    assert not from_sidecar
    reference = _ranks(cold_scorer)
    assert warehouse.stats()["compiled"] == 1

    # Evict the engine's in-memory compile cache so the warm path must
    # come from the sidecar, then re-load the scene from the store (a
    # distinct object, as an out-of-core batch would see it).
    fitted_fixy._evict_scene(scene)
    reloaded = warehouse.get(fingerprint)
    warm_scorer, from_sidecar = warehouse_scorer(
        warehouse, fitted_fixy, fingerprint, reloaded
    )
    assert from_sidecar
    warm = _ranks(warm_scorer)
    for kind, items in reference.items():
        assert [i.to_dict() for i in warm[kind]] == [
            i.to_dict() for i in items
        ]
    fitted_fixy._evict_scene(reloaded)


def test_sidecar_keyed_by_model_fingerprint(warehouse, fitted_fixy):
    scene = corpus_scene("keyed")
    fingerprint = warehouse.ingest(scene)
    compiled = fitted_fixy.compile(scene)
    assert warehouse.put_compiled(
        fingerprint, fitted_fixy.learned.fingerprint(), compiled
    )
    # A different model fingerprint is a miss, never a wrong answer.
    assert (
        warehouse.get_compiled(
            fingerprint, "not-this-model", scene, fitted_fixy.features
        )
        is None
    )
    assert (
        warehouse.get_compiled(
            fingerprint,
            fitted_fixy.learned.fingerprint(),
            scene,
            fitted_fixy.features,
        )
        is not None
    )
    fitted_fixy._evict_scene(scene)


def test_sidecar_checksum_corruption_detected(warehouse, fitted_fixy):
    scene = corpus_scene("sidecar-corrupt")
    fingerprint = warehouse.ingest(scene)
    model_fp = fitted_fixy.learned.fingerprint()
    warehouse.put_compiled(fingerprint, model_fp, fitted_fixy.compile(scene))
    import sqlite3

    with warehouse._lock, warehouse._conn:
        (payload,) = warehouse._conn.execute(
            "SELECT payload FROM compiled WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        flipped = bytes(payload[:-1]) + bytes([payload[-1] ^ 0xFF])
        warehouse._conn.execute(
            "UPDATE compiled SET payload = ? WHERE fingerprint = ?",
            (sqlite3.Binary(flipped), fingerprint),
        )
    with pytest.raises(WarehouseCorruptionError):
        warehouse.get_compiled(
            fingerprint, model_fp, scene, fitted_fixy.features
        )
    fitted_fixy._evict_scene(scene)


def test_sidecar_missing_feature_is_miss(warehouse, fitted_fixy):
    scene = corpus_scene("sidecar-feat")
    compiled = fitted_fixy.compile(scene)
    payload = pack_compiled(compiled.columns)
    # Restoring against an engine lacking one of the recorded features
    # must recompile (None), not mis-map factor columns.
    subset = list(fitted_fixy.features)[:-1]
    assert restore_compiled(payload, scene, subset) is None
    assert (
        restore_compiled(payload, scene, fitted_fixy.features) is not None
    )
    fitted_fixy._evict_scene(scene)


def test_sidecar_matrix_access_raises(warehouse, fitted_fixy):
    scene = corpus_scene("sidecar-matrix")
    compiled = fitted_fixy.compile(scene)
    restored = restore_compiled(
        pack_compiled(compiled.columns), scene, fitted_fixy.features
    )
    with pytest.raises(WarehouseError, match="re-compile"):
        restored.columns.matrix.shape
    fitted_fixy._evict_scene(scene)


def test_put_compiled_without_columns_is_noop(warehouse, fitted_fixy):
    scene = corpus_scene("no-columns")
    fingerprint = warehouse.ingest(scene)
    assert not warehouse.put_compiled(fingerprint, None, object())
    assert warehouse.stats()["compiled"] == 0


# ------------------------------------------------------------------- gc


def test_gc_compiled_drops_rotated_models_only(warehouse, fitted_fixy):
    scenes = [corpus_scene(f"gc-{i}") for i in range(3)]
    live_fp = fitted_fixy.learned.fingerprint()
    rotated = "rotated-model-fp"
    for scene in scenes:
        fingerprint = warehouse.ingest(scene)
        compiled = fitted_fixy.compile(scene)
        warehouse.put_compiled(fingerprint, live_fp, compiled)
        warehouse.put_compiled(fingerprint, rotated, compiled)
        fitted_fixy._evict_scene(scene)
    assert warehouse.stats()["compiled"] == 6

    report = warehouse.gc_compiled([live_fp])
    assert report["kept_models"] == [live_fp]
    assert report["dropped_models"] == [rotated]
    assert report["rows_dropped"] == 3
    assert report["rows_kept"] == 3
    assert report["bytes_reclaimed"] > 0
    assert report["bytes_kept"] > 0
    assert warehouse.stats()["compiled"] == 3

    # The kept model's sidecars still restore; the rotated ones are gone.
    for scene in scenes:
        fingerprint = frames.scene_fingerprint(frames.pack_scene(scene))
        assert (
            warehouse.get_compiled(
                fingerprint, live_fp, scene, fitted_fixy.features
            )
            is not None
        )
        assert (
            warehouse.get_compiled(
                fingerprint, rotated, scene, fitted_fixy.features
            )
            is None
        )
        fitted_fixy._evict_scene(scene)


def test_gc_compiled_never_touches_scene_blobs(warehouse, fitted_fixy):
    scene = corpus_scene("gc-blobs")
    fingerprint = warehouse.ingest(scene)
    warehouse.put_compiled(
        fingerprint, "old-model", fitted_fixy.compile(scene)
    )
    fitted_fixy._evict_scene(scene)
    before = warehouse.stats()

    report = warehouse.gc_compiled(["brand-new-model"])
    assert report["rows_dropped"] == 1 and report["rows_kept"] == 0
    after = warehouse.stats()
    assert after["scenes"] == before["scenes"]
    assert after["blob_bytes"] == before["blob_bytes"]
    assert after["compiled"] == 0
    assert warehouse.get_blob(fingerprint) is not None


def test_gc_compiled_empty_store_reports_zeroes(warehouse):
    report = warehouse.gc_compiled(["anything"])
    assert report["rows_dropped"] == 0
    assert report["bytes_reclaimed"] == 0
    assert report["dropped_models"] == []
    assert report["kept_models"] == []
