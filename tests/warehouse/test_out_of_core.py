"""The warehouse equivalence property: out-of-core == in-memory, byte for
byte — inline and remote, cold sidecars and warm, pruned and full."""

import pytest

from repro.api import Audit, AuditSpec, SceneSource
from repro.serving.tcp import TcpWorker
from repro.warehouse import ScenePredicate, SceneWarehouse

from tests.warehouse.conftest import build_corpus

KINDS = ("tracks", "bundles", "observations")


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(10)


@pytest.fixture()
def corpus_db(tmp_path, corpus):
    path = tmp_path / "corpus.db"
    with SceneWarehouse(path) as warehouse:
        for i, scene in enumerate(corpus):
            warehouse.ingest(
                scene, tags=("even",) if i % 2 == 0 else ("odd",)
            )
    return str(path)


def rendered(result):
    return [item.to_dict(result.spec.kind) for item in result.items]


def reference(fitted_fixy, corpus, kind, predicate=None):
    """The in-memory ground truth: resolve everything, rank inline."""
    scenes = corpus
    if predicate is not None:
        from repro.warehouse import scene_metadata

        tagged = [
            ("even",) if i % 2 == 0 else ("odd",) for i in range(len(corpus))
        ]
        scenes = [
            s
            for s, tags in zip(corpus, tagged)
            if predicate.matches(scene_metadata(s), set(tags))
        ]
    spec = AuditSpec(kind=kind, top_k=12)
    return rendered(Audit(spec, fixy=fitted_fixy).run(scenes=scenes))


@pytest.mark.parametrize("kind", KINDS)
def test_inline_out_of_core_byte_identity_cold_and_warm(
    fitted_fixy, corpus, corpus_db, kind
):
    expected = reference(fitted_fixy, corpus, kind)
    spec = AuditSpec(
        kind=kind, top_k=12, scenes=SceneSource(warehouse=corpus_db, batch=3)
    )

    cold = Audit(spec, fixy=fitted_fixy).run()
    assert rendered(cold) == expected
    stream = cold.provenance.stream
    assert stream["out_of_core"] is True
    assert stream["peak_resident_scenes"] <= 3
    assert stream["compile_cold"] == len(corpus)
    assert stream["compile_warm"] == 0

    warm = Audit(spec, fixy=fitted_fixy).run()
    assert rendered(warm) == expected
    stream = warm.provenance.stream
    assert stream["compile_cold"] == 0
    assert stream["compile_warm"] == len(corpus)
    assert stream["peak_resident_scenes"] <= 3


def test_pruned_audit_equals_pruned_in_memory(fitted_fixy, corpus, corpus_db):
    predicate = ScenePredicate.tag("even")
    expected = reference(fitted_fixy, corpus, "tracks", predicate)
    spec = AuditSpec(
        kind="tracks",
        top_k=12,
        scenes=SceneSource(
            warehouse=corpus_db, predicate=predicate, batch=4
        ),
    )
    result = Audit(spec, fixy=fitted_fixy).run()
    assert rendered(result) == expected
    stream = result.provenance.stream
    assert stream["corpus_scenes"] == len(corpus)
    assert stream["selected_scenes"] == len(corpus) // 2
    assert stream["pruned_scenes"] == len(corpus) - len(corpus) // 2


def test_pruning_never_drops_a_matching_scene(fitted_fixy, corpus, corpus_db):
    """Every scene the predicate accepts in a full scan contributes to
    the pruned audit exactly as it does to the in-memory audit over the
    full-scan selection — pruning is selection, never loss."""
    predicate = ScenePredicate.any_of(
        ScenePredicate.tag("odd"),
        ScenePredicate.range("n_tracks", low=4),
    )
    with SceneWarehouse(corpus_db, create=False) as warehouse:
        scan = [
            fp
            for fp, meta, tags in warehouse.iter_metadata()
            if predicate.matches(meta, tags)
        ]
        assert sorted(scan) == warehouse.query(predicate)
    expected = reference(fitted_fixy, corpus, "tracks", predicate)
    spec = AuditSpec(
        kind="tracks",
        top_k=12,
        scenes=SceneSource(warehouse=corpus_db, predicate=predicate),
    )
    result = Audit(spec, fixy=fitted_fixy).run()
    assert rendered(result) == expected
    assert result.provenance.stream["selected_scenes"] == len(scan)


def test_remote_out_of_core_byte_identity_mixed_pool(
    fitted_fixy, corpus, corpus_db
):
    """A warehouse-sharing worker and a plain worker in one pool: the
    sharing worker gets hashes only, the plain worker refills via need,
    and the merged ranking is byte-identical to inline in-memory."""
    expected = reference(fitted_fixy, corpus, "tracks")
    with TcpWorker(fitted_fixy, warehouse=corpus_db) as sharing, TcpWorker(
        fitted_fixy
    ) as plain:
        spec = AuditSpec(
            kind="tracks",
            top_k=12,
            scenes=SceneSource(warehouse=corpus_db, batch=4),
        ).with_backend(
            "remote", workers=[sharing.address, plain.address]
        )
        audit = Audit(spec, fixy=fitted_fixy)
        try:
            result = audit.run()
        finally:
            audit.close()
    assert rendered(result) == expected
    stream = result.provenance.stream
    assert stream["out_of_core"] is True
    assert stream["peak_resident_scenes"] == 0
    assert stream["warehouse_workers"] == 1
    workers = {w["worker"]: w for w in result.provenance.workers}
    assert len(workers) == 2


def test_remote_pruned_warm_rerun(fitted_fixy, corpus, corpus_db):
    predicate = ScenePredicate.tag("even")
    expected = reference(fitted_fixy, corpus, "bundles", predicate)
    with TcpWorker(fitted_fixy, warehouse=corpus_db) as worker:
        spec = AuditSpec(
            kind="bundles",
            top_k=12,
            scenes=SceneSource(warehouse=corpus_db, predicate=predicate),
        ).with_backend("remote", workers=[worker.address])
        audit = Audit(spec, fixy=fitted_fixy)
        try:
            cold = audit.run()
            warm = audit.run()
        finally:
            audit.close()
    assert rendered(cold) == expected
    assert rendered(warm) == expected
    assert warm.provenance.stream["pruned_scenes"] == len(corpus) - len(
        corpus
    ) // 2
