"""ScenePredicate algebra: JSON round-trip, validation, SQL == full scan."""

import random

import pytest

from repro.warehouse import (
    INDEXED_FIELDS,
    PredicateError,
    ScenePredicate,
    SceneWarehouse,
)

from tests.warehouse.conftest import corpus_scene

P = ScenePredicate


# --------------------------------------------------------- construction


@pytest.mark.parametrize(
    "build",
    [
        lambda: P.eq("nope", 1),
        lambda: P.range("nope", low=1),
        lambda: P.eq("n_tracks", "three"),
        lambda: P.eq("scene_id", 7),
        lambda: P.range("scene_id", low=1),
        lambda: P.range("n_tracks"),
        lambda: P.range("n_tracks", low=5, high=2),
        lambda: P.range("n_tracks", low=True),
        lambda: P.tag(""),
        lambda: P.tag(7),
        lambda: P.all_of(),
        lambda: P.any_of(),
        lambda: P(op="and", children=("not a predicate",)),
        lambda: P(op="between", field="n_tracks"),
    ],
)
def test_invalid_predicates_raise(build):
    with pytest.raises(PredicateError):
        build()


@pytest.mark.parametrize(
    "data",
    [
        "not a dict",
        {},
        {"eq": {"field": "n_tracks"}},
        {"eq": {"field": "n_tracks", "value": 1, "extra": 2}},
        {"range": {"low": 1}},
        {"and": {"field": "n_tracks"}},
        {"between": []},
        {"eq": {"field": "n_tracks", "value": 1}, "tag": "x"},
    ],
)
def test_invalid_dicts_raise(data):
    with pytest.raises(PredicateError):
        P.from_dict(data)


def _sample_predicates():
    return [
        P.eq("n_tracks", 3),
        P.eq("scene_id", "corpus-01"),
        P.range("n_frames", low=6),
        P.range("duration_s", high=1.5),
        P.range("n_observations", low=10, high=40),
        P.tag("even"),
        P.all_of(P.range("n_tracks", low=3), P.tag("all")),
        P.any_of(P.eq("n_tracks", 2), P.eq("n_tracks", 5)),
        P.any_of(
            P.all_of(P.tag("odd"), P.range("n_frames", high=6)),
            P.eq("scene_id", "corpus-00"),
        ),
    ]


@pytest.mark.parametrize(
    "predicate", _sample_predicates(), ids=lambda p: p.op
)
def test_json_round_trip(predicate):
    data = predicate.to_dict()
    assert P.from_dict(data) == predicate
    # to_dict output is itself pure JSON (no predicate objects nested).
    import json

    assert P.from_dict(json.loads(json.dumps(data))) == predicate


def test_predicates_are_hashable_value_objects():
    assert P.tag("x") == P.tag("x")
    assert hash(P.eq("n_tracks", 3)) == hash(P.eq("n_tracks", 3))
    assert P.tag("x") != P.tag("y")


# ----------------------------------------- SQL plan == full-scan reference


def _full_scan(warehouse, predicate):
    return sorted(
        fingerprint
        for fingerprint, meta, tags in warehouse.iter_metadata()
        if predicate.matches(meta, tags)
    )


@pytest.mark.parametrize(
    "predicate", _sample_predicates(), ids=lambda p: p.op
)
def test_query_matches_full_scan(loaded_warehouse, predicate):
    assert loaded_warehouse.query(predicate) == _full_scan(
        loaded_warehouse, predicate
    )


def _random_predicate(rng, depth=0):
    numeric = [f for f, t in INDEXED_FIELDS.items() if t is not str]
    roll = rng.random()
    if depth < 2 and roll < 0.35:
        op = P.all_of if rng.random() < 0.5 else P.any_of
        return op(
            *(
                _random_predicate(rng, depth + 1)
                for _ in range(rng.randint(1, 3))
            )
        )
    if roll < 0.5:
        return P.tag(rng.choice(["even", "odd", "all", "absent"]))
    if roll < 0.7:
        if rng.random() < 0.5:
            return P.eq("n_tracks", rng.randint(1, 6))
        return P.eq("scene_id", f"rand-{rng.randint(0, 20):02d}")
    field = rng.choice(numeric)
    lo = rng.uniform(0, 30)
    hi = lo + rng.uniform(0, 30)
    pick = rng.random()
    if pick < 0.33:
        return P.range(field, low=lo)
    if pick < 0.66:
        return P.range(field, high=hi)
    return P.range(field, low=lo, high=hi)


def test_randomized_corpus_query_never_diverges_from_scan(tmp_path):
    """Property: for random corpora and predicates, the indexed SQL plan
    returns exactly the fingerprints the pure-Python reference accepts —
    pruning never drops (or invents) a matching scene."""
    rng = random.Random(20260808)
    for trial in range(3):
        with SceneWarehouse(tmp_path / f"prop-{trial}.db") as warehouse:
            for i in range(12):
                tags = [rng.choice(["even", "odd"]), "all"]
                warehouse.ingest(
                    corpus_scene(
                        f"rand-{rng.randint(0, 20):02d}",
                        n_tracks=rng.randint(1, 6),
                        n_frames=rng.randint(4, 9),
                        seed=trial * 100 + i,
                    ),
                    tags=tags,
                )
            for _ in range(25):
                predicate = _random_predicate(rng)
                assert warehouse.query(predicate) == _full_scan(
                    warehouse, predicate
                ), predicate.to_dict()


def test_empty_predicate_is_full_corpus(loaded_warehouse):
    assert loaded_warehouse.query() == loaded_warehouse.query(None)
    assert loaded_warehouse.count() == len(loaded_warehouse)
