"""Shared fixtures for warehouse tests: a corpus, a store, a fitted engine."""

import pytest

from repro.core import Fixy, default_features
from repro.warehouse import SceneWarehouse

from tests.core.conftest import moving_track, scene_of
from tests.serving.conftest import build_training_scenes, model_scene


def corpus_scene(scene_id, n_tracks=4, n_frames=6, seed=0):
    """A rankable model-track scene whose shape varies with the arguments."""
    return scene_of(
        [
            moving_track(
                f"{scene_id}-t{i}",
                n_frames=n_frames,
                source="model",
                conf=0.8,
                start_x=6.0 * i,
                jitter=0.02,
                seed=seed * 101 + 7 * i + 1,
            )
            for i in range(n_tracks)
        ],
        scene_id=scene_id,
    )


def build_corpus(n=8):
    """A corpus with varied n_tracks/n_frames so predicates can split it."""
    return [
        corpus_scene(
            f"corpus-{i:02d}",
            n_tracks=2 + (i % 4),
            n_frames=5 + (i % 3),
            seed=i,
        )
        for i in range(n)
    ]


@pytest.fixture(scope="session")
def warehouse_training_scenes():
    return build_training_scenes()


@pytest.fixture(scope="session")
def fitted_fixy(warehouse_training_scenes):
    """A fitted engine with warmed density grids (deterministic ranking)."""
    fixy = Fixy(default_features()).fit(warehouse_training_scenes)
    fixy.warmup_fast_eval()
    return fixy


@pytest.fixture(scope="session")
def corpus_scenes():
    return build_corpus()


@pytest.fixture()
def warehouse(tmp_path):
    """A fresh empty warehouse on disk, closed after the test."""
    with SceneWarehouse(tmp_path / "wh.db") as wh:
        yield wh


@pytest.fixture()
def loaded_warehouse(tmp_path, corpus_scenes):
    """A warehouse pre-loaded with the corpus; even indexes tagged 'even'."""
    with SceneWarehouse(tmp_path / "loaded.db") as wh:
        for i, scene in enumerate(corpus_scenes):
            tags = ("even",) if i % 2 == 0 else ("odd",)
            wh.ingest(scene, tags=tags + ("all",))
        yield wh


__all__ = [
    "build_corpus",
    "build_training_scenes",
    "corpus_scene",
    "model_scene",
]
