"""Tests for the object taxonomy and physical priors."""

import numpy as np
import pytest

from repro.datagen import CLASS_PRIORS, ObjectClass, sample_dimensions
from repro.datagen.objects import sample_speed


class TestObjectClass:
    def test_all_paper_classes_present(self):
        values = {c.value for c in ObjectClass}
        assert values == {"car", "truck", "pedestrian", "motorcycle"}

    def test_from_string(self):
        assert ObjectClass.from_string("car") is ObjectClass.CAR
        assert ObjectClass.from_string("TRUCK") is ObjectClass.TRUCK

    def test_from_string_invalid(self):
        with pytest.raises(ValueError, match="unknown object class"):
            ObjectClass.from_string("bicycle")

    def test_priors_cover_all_classes(self):
        assert set(CLASS_PRIORS) == set(ObjectClass)


class TestPriors:
    @pytest.mark.parametrize("cls", list(ObjectClass))
    def test_prior_values_sane(self, cls):
        prior = CLASS_PRIORS[cls]
        assert prior.length_mean > 0
        assert prior.width_mean > 0
        assert prior.height_mean > 0
        assert 0 <= prior.stationary_prob <= 1
        assert prior.speed_mean > 0

    def test_truck_bigger_than_car(self):
        car = CLASS_PRIORS[ObjectClass.CAR]
        truck = CLASS_PRIORS[ObjectClass.TRUCK]
        car_vol = car.length_mean * car.width_mean * car.height_mean
        truck_vol = truck.length_mean * truck.width_mean * truck.height_mean
        assert truck_vol > 2 * car_vol

    def test_pedestrian_slowest(self):
        ped = CLASS_PRIORS[ObjectClass.PEDESTRIAN]
        for cls in (ObjectClass.CAR, ObjectClass.TRUCK, ObjectClass.MOTORCYCLE):
            assert ped.speed_mean < CLASS_PRIORS[cls].speed_mean


class TestSampling:
    @pytest.mark.parametrize("cls", list(ObjectClass))
    def test_dimensions_positive(self, cls):
        rng = np.random.default_rng(0)
        for _ in range(50):
            l, w, h = sample_dimensions(cls, rng)
            assert l > 0 and w > 0 and h > 0

    def test_dimensions_concentrate_near_mean(self):
        rng = np.random.default_rng(1)
        samples = np.array(
            [sample_dimensions(ObjectClass.CAR, rng) for _ in range(500)]
        )
        prior = CLASS_PRIORS[ObjectClass.CAR]
        assert samples[:, 0].mean() == pytest.approx(prior.length_mean, rel=0.05)
        assert samples[:, 1].mean() == pytest.approx(prior.width_mean, rel=0.05)

    def test_dimensions_deterministic_given_seed(self):
        a = sample_dimensions(ObjectClass.CAR, np.random.default_rng(3))
        b = sample_dimensions(ObjectClass.CAR, np.random.default_rng(3))
        assert a == b

    def test_classes_separable_by_volume(self):
        """Class volumes should form distinct clusters (Fixy relies on it)."""
        rng = np.random.default_rng(2)
        vols = {}
        for cls in ObjectClass:
            dims = [sample_dimensions(cls, rng) for _ in range(200)]
            vols[cls] = np.array([l * w * h for l, w, h in dims])
        assert np.percentile(vols[ObjectClass.TRUCK], 5) > np.percentile(
            vols[ObjectClass.CAR], 95
        )
        assert np.percentile(vols[ObjectClass.CAR], 5) > np.percentile(
            vols[ObjectClass.PEDESTRIAN], 95
        )

    def test_speed_positive(self):
        rng = np.random.default_rng(4)
        for cls in ObjectClass:
            for _ in range(100):
                assert sample_speed(cls, rng) > 0
