"""Tests for motion models."""

import math

import numpy as np
import pytest

from repro.datagen import (
    ConstantTurnModel,
    ConstantVelocityModel,
    ParkedModel,
    StopAndGoModel,
    WanderModel,
    simulate_trajectory,
)
from repro.geometry import Pose2D


START = Pose2D(1.0, 2.0, 0.5)


def run(model, n=50, dt=0.2, seed=0):
    return simulate_trajectory(model, START, n, dt, np.random.default_rng(seed))


class TestParked:
    def test_never_moves(self):
        poses = run(ParkedModel())
        assert all(p == START for p in poses)


class TestConstantVelocity:
    def test_speed_matches(self):
        dt = 0.2
        poses = run(ConstantVelocityModel(speed=5.0), dt=dt)
        for a, b in zip(poses, poses[1:]):
            assert a.distance_to(b) == pytest.approx(5.0 * dt)

    def test_straight_line(self):
        poses = run(ConstantVelocityModel(speed=5.0))
        # All points collinear with the heading.
        for p in poses:
            dx, dy = p.x - START.x, p.y - START.y
            cross = dx * math.sin(START.theta) - dy * math.cos(START.theta)
            assert cross == pytest.approx(0.0, abs=1e-9)

    def test_heading_noise_wobbles(self):
        poses = run(ConstantVelocityModel(speed=5.0, heading_noise=0.1))
        headings = {round(p.theta, 6) for p in poses}
        assert len(headings) > 1


class TestConstantTurn:
    def test_zero_yaw_rate_is_straight(self):
        a = run(ConstantTurnModel(speed=5.0, yaw_rate=0.0))
        b = run(ConstantVelocityModel(speed=5.0))
        for pa, pb in zip(a, b):
            assert pa.x == pytest.approx(pb.x)
            assert pa.y == pytest.approx(pb.y)

    def test_turns_accumulate_heading(self):
        dt = 0.2
        poses = run(ConstantTurnModel(speed=5.0, yaw_rate=0.1), n=10, dt=dt)
        assert poses[-1].theta == pytest.approx(START.theta + 9 * 0.1 * dt)

    def test_full_circle_returns_near_start(self):
        # speed*T = 2*pi*R with yaw_rate = speed/R; choose yaw_rate so one
        # full revolution fits in the trajectory.
        dt = 0.05
        n = 401  # 20 s
        yaw_rate = 2 * math.pi / 20.0
        poses = simulate_trajectory(
            ConstantTurnModel(speed=3.0, yaw_rate=yaw_rate),
            START,
            n,
            dt,
            np.random.default_rng(0),
        )
        assert poses[-1].distance_to(poses[0]) < 1.0


class TestStopAndGo:
    def test_contains_stopped_and_moving_phases(self):
        dt = 0.2
        poses = run(StopAndGoModel(cruise_speed=8.0), n=200, dt=dt, seed=3)
        speeds = [a.distance_to(b) / dt for a, b in zip(poses, poses[1:])]
        assert min(speeds) == pytest.approx(0.0, abs=1e-9)
        assert max(speeds) == pytest.approx(8.0, rel=0.01)

    def test_speed_never_exceeds_cruise(self):
        dt = 0.2
        poses = run(StopAndGoModel(cruise_speed=8.0), n=300, dt=dt, seed=5)
        speeds = [a.distance_to(b) / dt for a, b in zip(poses, poses[1:])]
        assert all(s <= 8.0 + 1e-9 for s in speeds)

    def test_heading_constant(self):
        poses = run(StopAndGoModel(cruise_speed=8.0), n=100, seed=7)
        assert all(p.theta == pytest.approx(START.theta) for p in poses)


class TestWander:
    def test_moves_at_speed(self):
        dt = 0.2
        poses = run(WanderModel(speed=1.4), dt=dt)
        for a, b in zip(poses, poses[1:]):
            assert a.distance_to(b) == pytest.approx(1.4 * dt, rel=1e-6)

    def test_heading_diffuses(self):
        poses = run(WanderModel(speed=1.4, heading_diffusion=0.5), n=100, seed=9)
        assert abs(poses[-1].theta - START.theta) > 1e-3


class TestSimulateTrajectory:
    def test_length_and_start(self):
        poses = run(ConstantVelocityModel(speed=1.0), n=17)
        assert len(poses) == 17
        assert poses[0] == START

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            simulate_trajectory(ParkedModel(), START, 0, 0.2, rng)
        with pytest.raises(ValueError):
            simulate_trajectory(ParkedModel(), START, 10, 0.0, rng)

    def test_deterministic_given_seed(self):
        a = run(WanderModel(speed=1.0), seed=42)
        b = run(WanderModel(speed=1.0), seed=42)
        assert a == b
