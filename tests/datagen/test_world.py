"""Tests for world objects, scenes, and scene generation."""

import math

import numpy as np
import pytest

from repro.datagen import (
    ObjectClass,
    SceneConfig,
    SceneGenerator,
    WorldObject,
    WorldScene,
)
from repro.geometry import Pose2D


def simple_object(object_id="obj0", n_frames=5, gap=None):
    poses = [Pose2D(float(i), 0.0, 0.0) for i in range(n_frames)]
    if gap is not None:
        for g in gap:
            poses[g] = None
    return WorldObject(
        object_id=object_id,
        object_class=ObjectClass.CAR,
        length=4.5,
        width=1.9,
        height=1.7,
        z_center=0.85,
        poses=poses,
    )


def simple_scene(n_frames=5, dt=0.2):
    return WorldScene(
        scene_id="s0",
        dt=dt,
        ego_poses=[Pose2D(0.0, float(i), math.pi / 2) for i in range(n_frames)],
        objects=[simple_object()],
    )


class TestWorldObject:
    def test_box_at_present_frame(self):
        obj = simple_object()
        box = obj.box_at(2)
        assert box is not None
        assert box.x == 2.0
        assert box.volume == pytest.approx(4.5 * 1.9 * 1.7)

    def test_box_at_absent_frame(self):
        obj = simple_object(gap=[1])
        assert obj.box_at(1) is None

    def test_present_frames(self):
        obj = simple_object(n_frames=5, gap=[0, 4])
        assert obj.present_frames == [1, 2, 3]
        assert obj.n_present == 3

    def test_speed_at(self):
        obj = simple_object()
        assert obj.speed_at(0, dt=0.2) == pytest.approx(5.0)

    def test_speed_at_gap_is_none(self):
        obj = simple_object(gap=[2])
        assert obj.speed_at(1, dt=0.2) is None
        assert obj.speed_at(2, dt=0.2) is None

    def test_speed_at_last_frame_is_none(self):
        obj = simple_object(n_frames=3)
        assert obj.speed_at(2, dt=0.2) is None

    def test_serialization_roundtrip(self):
        obj = simple_object(gap=[1])
        clone = WorldObject.from_dict(obj.to_dict())
        assert clone.object_id == obj.object_id
        assert clone.object_class is obj.object_class
        assert clone.poses == obj.poses


class TestWorldScene:
    def test_frame_counts(self):
        scene = simple_scene(n_frames=7, dt=0.5)
        assert scene.n_frames == 7
        assert scene.duration_s == pytest.approx(3.5)

    def test_boxes_at(self):
        scene = simple_scene()
        pairs = scene.boxes_at(0)
        assert len(pairs) == 1
        obj, box = pairs[0]
        assert obj.object_id == "obj0"
        assert box.x == 0.0

    def test_object_by_id(self):
        scene = simple_scene()
        assert scene.object_by_id("obj0").object_class is ObjectClass.CAR
        with pytest.raises(KeyError):
            scene.object_by_id("missing")

    def test_serialization_roundtrip(self):
        scene = simple_scene()
        clone = WorldScene.from_dict(scene.to_dict())
        assert clone.scene_id == scene.scene_id
        assert clone.n_frames == scene.n_frames
        assert clone.objects[0].poses == scene.objects[0].poses


class TestSceneConfig:
    def test_defaults_are_15s_at_5hz(self):
        cfg = SceneConfig()
        assert cfg.n_frames * cfg.dt == pytest.approx(15.0)

    def test_rejects_too_few_frames(self):
        with pytest.raises(ValueError):
            SceneConfig(n_frames=1)

    def test_rejects_bad_class_mix(self):
        with pytest.raises(ValueError):
            SceneConfig(class_mix=((ObjectClass.CAR, 0.5),))


class TestSceneGenerator:
    @pytest.fixture(scope="class")
    def scene(self):
        return SceneGenerator().generate("test-scene", seed=123)

    def test_deterministic(self, scene):
        again = SceneGenerator().generate("test-scene", seed=123)
        assert again.to_dict() == scene.to_dict()

    def test_different_seeds_differ(self, scene):
        other = SceneGenerator().generate("test-scene", seed=124)
        assert other.to_dict() != scene.to_dict()

    def test_object_count_in_range(self, scene):
        cfg = SceneConfig()
        assert cfg.n_objects_range[0] <= len(scene.objects) <= cfg.n_objects_range[1]

    def test_frame_count(self, scene):
        assert scene.n_frames == SceneConfig().n_frames
        assert all(len(o.poses) == scene.n_frames for o in scene.objects)

    def test_ego_moves(self, scene):
        assert scene.ego_poses[0].distance_to(scene.ego_poses[-1]) > 10.0

    def test_class_mix_present(self):
        scenes = SceneGenerator().generate_many(12, seed=5)
        classes = {o.object_class for s in scenes for o in s.objects}
        assert classes == set(ObjectClass)

    def test_some_objects_partial_presence(self):
        scenes = SceneGenerator().generate_many(10, seed=6)
        partial = [
            o
            for s in scenes
            for o in s.objects
            if 0 < o.n_present < s.n_frames
        ]
        assert partial, "expected some objects with partial presence"
        cfg = SceneConfig()
        for obj in partial:
            assert obj.n_present >= cfg.min_presence_frames
            # Presence should be one contiguous window.
            frames = obj.present_frames
            assert frames == list(range(frames[0], frames[-1] + 1))

    def test_generate_many_ids_unique(self):
        scenes = SceneGenerator().generate_many(5, seed=7, prefix="lyft")
        ids = [s.scene_id for s in scenes]
        assert len(set(ids)) == 5
        assert all(i.startswith("lyft-") for i in ids)

    def test_objects_within_plausible_range(self, scene):
        anchor = scene.ego_poses[len(scene.ego_poses) // 2]
        cfg = SceneConfig()
        for obj in scene.objects:
            first = next(p for p in obj.poses if p is not None)
            assert anchor.distance_to(first) <= cfg.spawn_radius + 1e-6
