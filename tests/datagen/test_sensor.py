"""Tests for the LIDAR visibility/occlusion model."""

import math

import pytest

from repro.datagen import (
    ObjectClass,
    SceneGenerator,
    VisibilityModel,
    WorldObject,
    WorldScene,
    visible_objects,
)
from repro.datagen.sensor import AngularInterval
from repro.geometry import Box3D, Pose2D


EGO = Pose2D(0.0, 0.0, 0.0)


def car_box(x, y, yaw=0.0):
    return Box3D(x=x, y=y, z=0.85, length=4.5, width=1.9, height=1.7, yaw=yaw)


class TestAngularInterval:
    def test_covers_center(self):
        iv = AngularInterval(center=0.0, half_width=0.2)
        assert iv.covers(0.0)
        assert iv.covers(0.19)
        assert not iv.covers(0.3)

    def test_covers_wraps(self):
        iv = AngularInterval(center=math.pi - 0.05, half_width=0.2)
        assert iv.covers(-math.pi + 0.05)

    def test_overlap_fraction_full(self):
        a = AngularInterval(0.0, 0.1)
        b = AngularInterval(0.0, 0.5)
        assert a.overlap_fraction(b) == pytest.approx(1.0)

    def test_overlap_fraction_none(self):
        a = AngularInterval(0.0, 0.1)
        b = AngularInterval(1.0, 0.1)
        assert a.overlap_fraction(b) == 0.0

    def test_overlap_fraction_half(self):
        a = AngularInterval(0.0, 0.2)
        b = AngularInterval(0.2, 0.2)
        assert a.overlap_fraction(b) == pytest.approx(0.5)


class TestVisibilityModel:
    def test_unobstructed_visible(self):
        model = VisibilityModel()
        assert model.visible_fraction(EGO, car_box(20, 0), []) == 1.0

    def test_beyond_range_invisible(self):
        model = VisibilityModel(max_range=50.0)
        assert model.visible_fraction(EGO, car_box(60, 0), []) == 0.0

    def test_fully_occluded_by_near_identical_object(self):
        model = VisibilityModel()
        target = car_box(40, 0)
        occluder = car_box(10, 0)  # same bearing, much closer -> wider shadow
        assert model.visible_fraction(EGO, target, [occluder]) < 0.2
        assert not model.is_visible(EGO, target, [occluder])

    def test_occluder_behind_does_not_block(self):
        model = VisibilityModel()
        target = car_box(10, 0)
        farther = car_box(40, 0)
        assert model.visible_fraction(EGO, target, [farther]) == 1.0

    def test_occluder_off_bearing_does_not_block(self):
        model = VisibilityModel()
        target = car_box(30, 0)
        side = car_box(0, 20)  # 90 degrees away
        assert model.visible_fraction(EGO, target, [side]) == 1.0

    def test_partial_occlusion(self):
        model = VisibilityModel()
        target = car_box(40, 0, yaw=math.pi / 2)
        # Slightly offset occluder shadows part of the interval.
        occluder = car_box(15, 1.8)
        frac = model.visible_fraction(EGO, target, [occluder])
        assert 0.0 < frac < 1.0

    def test_shadow_union_not_double_counted(self):
        model = VisibilityModel()
        target = car_box(40, 0)
        # Two identical occluders cast the same shadow; fraction must match
        # the single-occluder case.
        occ = car_box(10, 0)
        single = model.visible_fraction(EGO, target, [occ])
        double = model.visible_fraction(EGO, target, [occ, occ])
        assert double == pytest.approx(single)

    def test_ego_inside_object(self):
        model = VisibilityModel()
        giant = Box3D(x=0.5, y=0, z=1, length=10, width=10, height=2)
        assert model.visible_fraction(EGO, giant, []) == 1.0


class TestSceneVisibility:
    def test_visibility_table_covers_present_pairs(self):
        scene = SceneGenerator().generate("vis", seed=11)
        table = VisibilityModel().visibility_table(scene)
        expected_keys = {
            (o.object_id, f)
            for o in scene.objects
            for f in o.present_frames
        }
        assert set(table) == expected_keys

    def test_visible_objects_subset_of_present(self):
        scene = SceneGenerator().generate("vis2", seed=12)
        vis = visible_objects(scene, 0)
        present_ids = {o.object_id for o, _ in scene.boxes_at(0)}
        assert {o.object_id for o, _ in vis} <= present_ids

    def test_occlusion_hides_something_sometimes(self):
        # Across several dense scenes, at least one present object should be
        # occluded at some frame (otherwise the model is vacuous).
        gen = SceneGenerator()
        hidden = 0
        for seed in range(6):
            scene = gen.generate(f"vis3-{seed}", seed=seed)
            table = VisibilityModel().visibility_table(scene)
            hidden += sum(1 for v in table.values() if not v)
        assert hidden > 0

    def test_handcrafted_occlusion_scene(self):
        # Ego at origin; a truck directly blocks a motorcycle behind it.
        truck = WorldObject(
            object_id="truck",
            object_class=ObjectClass.TRUCK,
            length=8.5,
            width=2.6,
            height=3.2,
            z_center=1.6,
            poses=[Pose2D(10.0, 0.0, 0.0)] * 3,
        )
        moto = WorldObject(
            object_id="moto",
            object_class=ObjectClass.MOTORCYCLE,
            length=2.2,
            width=0.9,
            height=1.4,
            z_center=0.7,
            poses=[Pose2D(30.0, 0.0, 0.0)] * 3,
        )
        scene = WorldScene(
            scene_id="occl",
            dt=0.2,
            ego_poses=[EGO] * 3,
            objects=[truck, moto],
        )
        vis = visible_objects(scene, 0)
        ids = {o.object_id for o, _ in vis}
        assert "truck" in ids
        assert "moto" not in ids
