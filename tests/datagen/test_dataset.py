"""Tests for scene collections and serialization."""

import pytest

from repro.datagen import SceneCollection, SceneGenerator, train_val_split


@pytest.fixture(scope="module")
def collection():
    scenes = SceneGenerator().generate_many(6, seed=20, prefix="coll")
    return SceneCollection(name="test", scenes=scenes, metadata={"seed": 20})


class TestSceneCollection:
    def test_len_iter_getitem(self, collection):
        assert len(collection) == 6
        assert [s.scene_id for s in collection] == [
            collection[i].scene_id for i in range(6)
        ]

    def test_scene_by_id(self, collection):
        target = collection[2].scene_id
        assert collection.scene_by_id(target).scene_id == target
        with pytest.raises(KeyError):
            collection.scene_by_id("nope")

    def test_totals(self, collection):
        assert collection.total_objects == sum(len(s.objects) for s in collection)
        assert collection.total_frames == sum(s.n_frames for s in collection)

    def test_json_roundtrip(self, collection, tmp_path):
        path = tmp_path / "coll.json"
        collection.save(path)
        loaded = SceneCollection.load(path)
        assert loaded.to_dict() == collection.to_dict()

    def test_gzip_roundtrip(self, collection, tmp_path):
        path = tmp_path / "coll.json.gz"
        collection.save(path)
        loaded = SceneCollection.load(path)
        assert loaded.to_dict() == collection.to_dict()
        # gzip should actually compress
        raw = tmp_path / "raw.json"
        collection.save(raw)
        assert path.stat().st_size < raw.stat().st_size


class TestTrainValSplit:
    def test_split_sizes(self, collection):
        train, val = train_val_split(collection, val_fraction=0.25)
        assert len(train) + len(val) == len(collection)
        assert len(val) == 2  # round(6 * 0.25) = 2

    def test_split_disjoint_and_ordered(self, collection):
        train, val = train_val_split(collection, val_fraction=0.2)
        train_ids = [s.scene_id for s in train]
        val_ids = [s.scene_id for s in val]
        assert not set(train_ids) & set(val_ids)
        assert train_ids + val_ids == [s.scene_id for s in collection]

    def test_bad_fraction(self, collection):
        for frac in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                train_val_split(collection, val_fraction=frac)

    def test_names(self, collection):
        train, val = train_val_split(collection)
        assert train.name.endswith("-train")
        assert val.name.endswith("-val")
