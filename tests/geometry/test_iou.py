"""Unit and property tests for polygon clipping and IoU."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Box3D,
    bev_iou,
    compute_iou,
    convex_intersection_area,
    iou_3d,
    pairwise_center_distance,
    pairwise_iou,
    polygon_area,
)
from repro.geometry.iou import clip_polygon


def square(cx=0.0, cy=0.0, half=1.0):
    return np.array(
        [
            [cx + half, cy + half],
            [cx - half, cy + half],
            [cx - half, cy - half],
            [cx + half, cy - half],
        ]
    )


class TestPolygonArea:
    def test_unit_square(self):
        assert polygon_area(square(half=0.5)) == pytest.approx(1.0)

    def test_triangle(self):
        tri = np.array([[0, 0], [2, 0], [0, 2]])
        assert polygon_area(tri) == pytest.approx(2.0)

    def test_degenerate(self):
        assert polygon_area(np.zeros((0, 2))) == 0.0
        assert polygon_area(np.array([[0, 0], [1, 1]])) == 0.0

    def test_orientation_invariant(self):
        sq = square()
        assert polygon_area(sq) == pytest.approx(polygon_area(sq[::-1]))


class TestClipping:
    def test_identical_squares(self):
        result = clip_polygon(square(), square())
        assert polygon_area(result) == pytest.approx(4.0)

    def test_half_overlap(self):
        a = square(cx=0.0)
        b = square(cx=1.0)
        assert convex_intersection_area(a, b) == pytest.approx(2.0)

    def test_disjoint(self):
        assert convex_intersection_area(square(0), square(5)) == 0.0

    def test_contained(self):
        outer = square(half=2.0)
        inner = square(half=0.5)
        assert convex_intersection_area(outer, inner) == pytest.approx(1.0)
        assert convex_intersection_area(inner, outer) == pytest.approx(1.0)

    def test_corner_touch(self):
        a = square(cx=0, cy=0)
        b = square(cx=2, cy=2)
        assert convex_intersection_area(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_rotated_diamond_in_square(self):
        # Diamond with vertices at (+-1, 0), (0, +-1) inside unit-ish square.
        diamond = np.array([[1, 0], [0, 1], [-1, 0], [0, -1]], dtype=float)
        sq = square(half=1.0)
        assert convex_intersection_area(diamond, sq) == pytest.approx(2.0)


def box(x=0.0, y=0.0, yaw=0.0, l=4.0, w=2.0, h=1.5, z=0.75):
    return Box3D(x=x, y=y, z=z, length=l, width=w, height=h, yaw=yaw)


class TestBevIoU:
    def test_identical(self):
        assert bev_iou(box(), box()) == pytest.approx(1.0)

    def test_disjoint(self):
        assert bev_iou(box(0), box(100)) == 0.0

    def test_half_offset(self):
        # Shift along length by half: intersection 2x2=4... actually l=4,w=2
        # shifted by 2 => inter = 2*2 = 4, union = 8+8-4 = 12.
        assert bev_iou(box(0), box(2.0)) == pytest.approx(4.0 / 12.0)

    def test_rotation_symmetry(self):
        a, b = box(yaw=0.3), box(x=1.0, yaw=-0.2)
        assert bev_iou(a, b) == pytest.approx(bev_iou(b, a))

    def test_yaw_invariance_joint_rotation(self):
        # Rotating both boxes about the origin preserves IoU.
        a, b = box(0.0), box(1.5, 0.5, yaw=0.2)
        base = bev_iou(a, b)
        theta = 0.9
        c, s = math.cos(theta), math.sin(theta)

        def rot(bx):
            return Box3D(
                x=c * bx.x - s * bx.y,
                y=s * bx.x + c * bx.y,
                z=bx.z,
                length=bx.length,
                width=bx.width,
                height=bx.height,
                yaw=bx.yaw + theta,
            )

        assert bev_iou(rot(a), rot(b)) == pytest.approx(base, abs=1e-9)

    def test_90_degree_cross(self):
        # 4x2 box crossed with its 90-degree rotation: intersection 2x2.
        a = box(yaw=0.0)
        b = box(yaw=math.pi / 2)
        inter = 4.0
        union = 8.0 + 8.0 - inter
        assert bev_iou(a, b) == pytest.approx(inter / union)


class TestIoU3D:
    def test_identical(self):
        assert iou_3d(box(), box()) == pytest.approx(1.0)

    def test_no_z_overlap(self):
        a = box(z=0.75)
        b = box(z=10.0)
        assert iou_3d(a, b) == 0.0

    def test_partial_z_overlap(self):
        a = Box3D(x=0, y=0, z=0.5, length=2, width=2, height=1)
        b = Box3D(x=0, y=0, z=1.0, length=2, width=2, height=1)
        inter = 4.0 * 0.5
        union = 4.0 + 4.0 - inter
        assert iou_3d(a, b) == pytest.approx(inter / union)

    def test_3d_never_exceeds_bev_for_same_footprint(self):
        a = box(z=0.75)
        b = box(x=1.0, z=1.0)
        assert iou_3d(a, b) <= bev_iou(a, b) + 1e-12


class TestComputeIoU:
    def test_modes(self):
        a, b = box(), box(x=1.0)
        assert compute_iou(a, b, mode="bev") == pytest.approx(bev_iou(a, b))
        assert compute_iou(a, b, mode="3d") == pytest.approx(iou_3d(a, b))

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            compute_iou(box(), box(), mode="4d")


class TestPairwise:
    def test_shape(self):
        a = [box(0), box(10)]
        b = [box(0), box(10), box(20)]
        mat = pairwise_iou(a, b)
        assert mat.shape == (2, 3)
        assert mat[0, 0] == pytest.approx(1.0)
        assert mat[1, 1] == pytest.approx(1.0)
        assert mat[0, 1] == 0.0

    def test_empty(self):
        assert pairwise_iou([], [box()]).shape == (0, 1)
        assert pairwise_center_distance([], []).shape == (0, 0)

    def test_center_distance(self):
        mat = pairwise_center_distance([box(0, 0)], [box(3, 4)])
        assert mat[0, 0] == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
finite = st.floats(min_value=-50, max_value=50, allow_nan=False)
dim = st.floats(min_value=0.5, max_value=10, allow_nan=False)
angle = st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)


@st.composite
def boxes(draw):
    return Box3D(
        x=draw(finite),
        y=draw(finite),
        z=draw(st.floats(min_value=-2, max_value=2)),
        length=draw(dim),
        width=draw(dim),
        height=draw(dim),
        yaw=draw(angle),
    )


@settings(max_examples=100, deadline=None)
@given(boxes(), boxes())
def test_iou_bounded_and_symmetric(a, b):
    val = bev_iou(a, b)
    assert 0.0 <= val <= 1.0
    assert bev_iou(b, a) == pytest.approx(val, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(boxes())
def test_self_iou_is_one(a):
    assert bev_iou(a, a) == pytest.approx(1.0, abs=1e-9)
    assert iou_3d(a, a) == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(boxes(), boxes())
def test_intersection_not_larger_than_either_area(a, b):
    inter = convex_intersection_area(a.bev_corners(), b.bev_corners())
    assert inter <= a.bev_area + 1e-6
    assert inter <= b.bev_area + 1e-6


@settings(max_examples=100, deadline=None)
@given(boxes(), boxes())
def test_3d_iou_bounded(a, b):
    val = iou_3d(a, b)
    assert 0.0 <= val <= 1.0
    assert iou_3d(b, a) == pytest.approx(val, abs=1e-9)
