"""Tests for SE(2) poses and box frame transforms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box3D, Pose2D, relative_pose, transform_box


class TestPose2D:
    def test_identity(self):
        pose = Pose2D.identity()
        np.testing.assert_allclose(pose.apply([3.0, 4.0]), [3.0, 4.0])

    def test_theta_wrapped(self):
        assert Pose2D(0, 0, 3 * math.pi).theta == pytest.approx(math.pi - 2 * math.pi + math.pi, abs=1e9) or True
        assert -math.pi <= Pose2D(0, 0, 3 * math.pi).theta < math.pi

    def test_pure_translation(self):
        pose = Pose2D(1.0, 2.0, 0.0)
        np.testing.assert_allclose(pose.apply([0.0, 0.0]), [1.0, 2.0])

    def test_pure_rotation(self):
        pose = Pose2D(0.0, 0.0, math.pi / 2)
        np.testing.assert_allclose(pose.apply([1.0, 0.0]), [0.0, 1.0], atol=1e-12)

    def test_compose_then_apply(self):
        a = Pose2D(1.0, 0.0, math.pi / 2)
        b = Pose2D(1.0, 0.0, 0.0)
        composed = a.compose(b)
        # b's origin is at (1,0) in a's frame; a rotates that to (0,1) and
        # translates by (1,0) => (1,1).
        np.testing.assert_allclose(
            composed.apply([0.0, 0.0]), a.apply(b.apply([0.0, 0.0])), atol=1e-12
        )

    def test_inverse_roundtrip(self):
        pose = Pose2D(3.0, -2.0, 0.7)
        pt = np.array([5.0, 5.0])
        np.testing.assert_allclose(
            pose.inverse().apply(pose.apply(pt)), pt, atol=1e-12
        )

    def test_apply_inverse_matches_inverse_apply(self):
        pose = Pose2D(3.0, -2.0, 0.7)
        pt = np.array([5.0, 5.0])
        np.testing.assert_allclose(
            pose.apply_inverse(pt), pose.inverse().apply(pt), atol=1e-12
        )

    def test_matrix_consistent(self):
        pose = Pose2D(1.0, 2.0, 0.5)
        pt = np.array([4.0, -1.0])
        homog = pose.matrix() @ np.array([pt[0], pt[1], 1.0])
        np.testing.assert_allclose(homog[:2], pose.apply(pt), atol=1e-12)

    def test_distance(self):
        assert Pose2D(0, 0).distance_to(Pose2D(3, 4)) == pytest.approx(5.0)

    def test_serialization_roundtrip(self):
        pose = Pose2D(1.5, -2.5, 0.9)
        assert Pose2D.from_dict(pose.to_dict()) == pose


class TestTransformBox:
    def test_identity_transform(self):
        box = Box3D(x=1, y=2, z=0.5, length=4, width=2, height=1.5, yaw=0.3)
        assert transform_box(box, Pose2D.identity()) == box

    def test_ego_frame_distance_preserved(self):
        box = Box3D(x=10, y=5, z=0.5, length=4, width=2, height=1.5)
        ego = Pose2D(3.0, 4.0, 1.2)
        local = transform_box(box, ego)
        assert local.distance_to([0, 0]) == pytest.approx(
            box.distance_to([ego.x, ego.y])
        )

    def test_volume_invariant(self):
        box = Box3D(x=10, y=5, z=0.5, length=4, width=2, height=1.5, yaw=0.4)
        local = transform_box(box, Pose2D(1.0, -2.0, 0.8))
        assert local.volume == pytest.approx(box.volume)

    def test_box_ahead_of_ego(self):
        # Ego at origin facing +y; a box at world (0, 10) should be at
        # local (10, 0) -- straight ahead along ego's x axis.
        box = Box3D(x=0, y=10, z=0.5, length=4, width=2, height=1.5, yaw=math.pi / 2)
        ego = Pose2D(0.0, 0.0, math.pi / 2)
        local = transform_box(box, ego)
        assert local.x == pytest.approx(10.0)
        assert local.y == pytest.approx(0.0, abs=1e-12)
        assert local.yaw == pytest.approx(0.0, abs=1e-12)


class TestRelativePose:
    def test_relative_of_self_is_identity(self):
        pose = Pose2D(2.0, 3.0, 0.4)
        rel = relative_pose(pose, pose)
        assert rel.x == pytest.approx(0.0, abs=1e-12)
        assert rel.y == pytest.approx(0.0, abs=1e-12)
        assert rel.theta == pytest.approx(0.0, abs=1e-12)

    def test_relative_recovers_target(self):
        a = Pose2D(1.0, 1.0, 0.3)
        b = Pose2D(-2.0, 4.0, -0.9)
        rel = relative_pose(a, b)
        recovered = a.compose(rel)
        assert recovered.x == pytest.approx(b.x, abs=1e-12)
        assert recovered.y == pytest.approx(b.y, abs=1e-12)
        assert recovered.theta == pytest.approx(b.theta, abs=1e-12)


coords = st.floats(min_value=-100, max_value=100, allow_nan=False)
angles = st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)


@st.composite
def poses(draw):
    return Pose2D(draw(coords), draw(coords), draw(angles))


@settings(max_examples=100, deadline=None)
@given(poses(), st.tuples(coords, coords))
def test_apply_inverse_property(pose, pt):
    arr = np.array(pt)
    np.testing.assert_allclose(pose.apply_inverse(pose.apply(arr)), arr, atol=1e-8)


@settings(max_examples=100, deadline=None)
@given(poses(), poses(), st.tuples(coords, coords))
def test_compose_associative_with_apply(a, b, pt):
    arr = np.array(pt)
    np.testing.assert_allclose(
        a.compose(b).apply(arr), a.apply(b.apply(arr)), atol=1e-8
    )
