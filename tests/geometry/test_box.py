"""Unit tests for Box3D."""

import math

import numpy as np
import pytest

from repro.geometry import Box3D, centroid, wrap_angle
from repro.geometry.box import box_from_dict


def make_box(**overrides):
    params = dict(x=1.0, y=2.0, z=0.5, length=4.0, width=2.0, height=1.5, yaw=0.0)
    params.update(overrides)
    return Box3D(**params)


class TestConstruction:
    def test_basic_fields(self):
        box = make_box()
        assert box.x == 1.0
        assert box.length == 4.0
        assert box.yaw == 0.0

    @pytest.mark.parametrize("dim", ["length", "width", "height"])
    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_nonpositive_dimensions_rejected(self, dim, value):
        with pytest.raises(ValueError):
            make_box(**{dim: value})

    def test_yaw_wrapped_on_construction(self):
        box = make_box(yaw=3 * math.pi)
        assert -math.pi <= box.yaw < math.pi
        assert box.yaw == pytest.approx(wrap_angle(3 * math.pi))

    def test_frozen(self):
        box = make_box()
        with pytest.raises(Exception):
            box.x = 10.0


class TestDerivedQuantities:
    def test_volume(self):
        assert make_box().volume == pytest.approx(4.0 * 2.0 * 1.5)

    def test_bev_area(self):
        assert make_box().bev_area == pytest.approx(8.0)

    def test_z_extent(self):
        box = make_box(z=1.0, height=2.0)
        assert box.z_min == pytest.approx(0.0)
        assert box.z_max == pytest.approx(2.0)

    def test_center_arrays(self):
        box = make_box()
        np.testing.assert_allclose(box.center, [1.0, 2.0, 0.5])
        np.testing.assert_allclose(box.center_xy, [1.0, 2.0])

    def test_distance_to_point(self):
        box = make_box(x=3.0, y=4.0)
        assert box.distance_to([0.0, 0.0]) == pytest.approx(5.0)

    def test_distance_ignores_z(self):
        box = make_box(x=3.0, y=4.0, z=100.0)
        assert box.distance_to([0.0, 0.0, -50.0]) == pytest.approx(5.0)

    def test_distance_to_box(self):
        a = make_box(x=0.0, y=0.0)
        b = make_box(x=6.0, y=8.0)
        assert a.distance_to_box(b) == pytest.approx(10.0)


class TestCorners:
    def test_axis_aligned_corners(self):
        box = Box3D(x=0, y=0, z=0, length=4, width=2, height=1, yaw=0)
        corners = box.bev_corners()
        expected = {(2, 1), (-2, 1), (-2, -1), (2, -1)}
        got = {tuple(np.round(c, 9)) for c in corners}
        assert got == expected

    def test_rotation_90_degrees_swaps_extents(self):
        box = Box3D(x=0, y=0, z=0, length=4, width=2, height=1, yaw=math.pi / 2)
        corners = box.bev_corners()
        assert np.max(np.abs(corners[:, 0])) == pytest.approx(1.0)
        assert np.max(np.abs(corners[:, 1])) == pytest.approx(2.0)

    def test_corners_ccw(self):
        box = make_box(yaw=0.3)
        corners = box.bev_corners()
        x, y = corners[:, 0], corners[:, 1]
        signed = np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))
        assert signed > 0  # counter-clockwise

    def test_corners_3d_shape_and_heights(self):
        box = make_box(z=1.0, height=2.0)
        corners = box.corners_3d()
        assert corners.shape == (8, 3)
        np.testing.assert_allclose(corners[:4, 2], 0.0)
        np.testing.assert_allclose(corners[4:, 2], 2.0)

    def test_contains_center(self):
        box = make_box(yaw=0.7)
        assert box.contains_point_bev(box.center_xy)

    def test_contains_corner_inclusive(self):
        box = make_box(yaw=0.0)
        for corner in box.bev_corners():
            assert box.contains_point_bev(corner)

    def test_excludes_far_point(self):
        box = make_box()
        assert not box.contains_point_bev([100.0, 100.0])


class TestManipulation:
    def test_translated(self):
        box = make_box().translated(1.0, -2.0, 0.5)
        assert (box.x, box.y, box.z) == (2.0, 0.0, 1.0)

    def test_rotated_wraps(self):
        box = make_box(yaw=math.pi - 0.1).rotated(0.2)
        assert box.yaw == pytest.approx(-math.pi + 0.1)

    def test_scaled(self):
        box = make_box().scaled(2.0)
        assert box.volume == pytest.approx(make_box().volume * 8.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_box().scaled(0.0)

    def test_jittered_zero_sigma_is_identity(self):
        rng = np.random.default_rng(0)
        box = make_box(yaw=0.4)
        assert box.jittered(rng) == box

    def test_jittered_perturbs_with_sigma(self):
        rng = np.random.default_rng(0)
        box = make_box()
        jit = box.jittered(rng, pos_sigma=0.5, dim_sigma=0.1, yaw_sigma=0.1)
        assert jit != box
        assert jit.length > 0 and jit.width > 0 and jit.height > 0

    def test_jittered_deterministic_under_seed(self):
        box = make_box()
        a = box.jittered(np.random.default_rng(7), pos_sigma=0.5)
        b = box.jittered(np.random.default_rng(7), pos_sigma=0.5)
        assert a == b


class TestSerialization:
    def test_roundtrip(self):
        box = make_box(yaw=1.1)
        assert Box3D.from_dict(box.to_dict()) == box

    def test_from_dict_defaults_yaw(self):
        data = make_box().to_dict()
        del data["yaw"]
        assert box_from_dict(data).yaw == 0.0


class TestHelpers:
    def test_wrap_angle_range(self):
        for theta in np.linspace(-20, 20, 101):
            wrapped = wrap_angle(theta)
            assert -math.pi <= wrapped < math.pi
            # Same direction modulo 2*pi.
            assert math.isclose(
                math.cos(theta), math.cos(wrapped), abs_tol=1e-9
            ) and math.isclose(math.sin(theta), math.sin(wrapped), abs_tol=1e-9)

    def test_centroid(self):
        boxes = [make_box(x=0, y=0, z=0), make_box(x=2, y=4, z=2)]
        np.testing.assert_allclose(centroid(boxes), [1.0, 2.0, 1.0])

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])
