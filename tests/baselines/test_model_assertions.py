"""Tests for the ad-hoc model assertion baselines."""

import pytest

from repro.baselines import (
    AppearAssertion,
    ConsistencyAssertion,
    FlickerAssertion,
    MultiboxAssertion,
    run_assertions,
)
from repro.core import Scene
from repro.core.model import Observation, ObservationBundle, Track
from repro.geometry import Box3D, Pose2D


def obs(frame, x=0.0, source="model", cls="car", conf=0.9, l=4.5, w=1.9, h=1.7):
    return Observation(
        frame=frame,
        box=Box3D(x=x, y=0, z=0.85, length=l, width=w, height=h),
        object_class=cls,
        source=source,
        confidence=conf if source == "model" else None,
    )


def track_of(track_id, observations):
    bundles = {}
    for o in observations:
        bundles.setdefault(o.frame, ObservationBundle(frame=o.frame)).add(o)
    return Track(track_id=track_id, bundles=list(bundles.values()))


def scene_of(*tracks):
    return Scene(scene_id="s", dt=0.2, tracks=list(tracks))


class TestConsistencyAssertion:
    def test_flags_model_only_tracks(self):
        clean = track_of("clean", [obs(f, x=0.4 * f) for f in range(5)])
        labeled = track_of(
            "labeled",
            [obs(f) for f in range(5)] + [obs(f, source="human") for f in range(5)],
        )
        flags = ConsistencyAssertion().check_scene(scene_of(clean, labeled))
        assert [f.track_id for f in flags] == ["clean"]

    def test_severity_increases_with_inconsistency(self):
        steady = track_of("steady", [obs(f, x=0.4 * f) for f in range(6)])
        flipping = track_of(
            "flipping",
            [obs(f, x=0.4 * f, cls="car" if f % 2 else "truck") for f in range(6)],
        )
        gappy = track_of("gappy", [obs(f, x=0.4 * f) for f in (0, 1, 4, 5)])
        flags = {
            f.track_id: f.severity
            for f in ConsistencyAssertion().check_scene(
                scene_of(steady, flipping, gappy)
            )
        }
        assert flags["flipping"] > flags["steady"]
        assert flags["gappy"] > flags["steady"]

    def test_volume_jump_severity(self):
        pumping = track_of(
            "pumping", [obs(f, x=0.2 * f, l=4.5 * (2.0 if f % 2 else 1.0)) for f in range(6)]
        )
        steady = track_of("steady", [obs(f, x=0.2 * f) for f in range(6)])
        flags = {
            f.track_id: f.severity
            for f in ConsistencyAssertion().check_scene(scene_of(pumping, steady))
        }
        assert flags["pumping"] > flags["steady"]

    def test_single_obs_tracks_skipped(self):
        lone = track_of("lone", [obs(0)])
        assert ConsistencyAssertion().check_scene(scene_of(lone)) == []


class TestAppearAssertion:
    def test_flags_short_tracks(self):
        short = track_of("short", [obs(0), obs(1)])
        long = track_of("long", [obs(f) for f in range(6)])
        flags = AppearAssertion(min_frames=3).check_scene(scene_of(short, long))
        assert [f.track_id for f in flags] == ["short"]

    def test_severity_shorter_is_worse(self):
        one = track_of("one", [obs(0)])
        two = track_of("two", [obs(0), obs(1)])
        flags = {
            f.track_id: f.severity
            for f in AppearAssertion(min_frames=3).check_scene(scene_of(one, two))
        }
        assert flags["one"] > flags["two"]

    def test_human_tracks_skipped(self):
        human_short = track_of("hs", [obs(0, source="human")])
        assert AppearAssertion().check_scene(scene_of(human_short)) == []


class TestFlickerAssertion:
    def test_flags_gappy_tracks(self):
        gappy = track_of("gappy", [obs(f) for f in (0, 1, 3, 4, 6)])
        solid = track_of("solid", [obs(f) for f in range(5)])
        flags = FlickerAssertion().check_scene(scene_of(gappy, solid))
        assert [f.track_id for f in flags] == ["gappy"]
        assert flags[0].metadata["gaps"] == 2


class TestMultiboxAssertion:
    def test_flags_triple_overlap(self):
        a = track_of("a", [obs(0, x=0.0)])
        b = track_of("b", [obs(0, x=0.3)])
        c = track_of("c", [obs(0, x=0.6)])
        flags = MultiboxAssertion().check_scene(scene_of(a, b, c))
        assert len(flags) == 1
        assert flags[0].metadata["frame"] == 0
        assert set(flags[0].track_id.split("+")) == {"a", "b", "c"}

    def test_two_boxes_not_flagged(self):
        a = track_of("a", [obs(0, x=0.0)])
        b = track_of("b", [obs(0, x=0.3)])
        assert MultiboxAssertion().check_scene(scene_of(a, b)) == []

    def test_disjoint_boxes_not_flagged(self):
        tracks = [track_of(f"t{i}", [obs(0, x=20.0 * i)]) for i in range(4)]
        assert MultiboxAssertion().check_scene(scene_of(*tracks)) == []


class TestRunAssertions:
    def test_concatenates_across_assertions_and_scenes(self):
        short = track_of("short", [obs(0)])
        gappy = track_of("gappy", [obs(f) for f in (0, 2, 4)])
        scene_a = scene_of(short)
        scene_b = scene_of(gappy)
        flags = run_assertions(
            [AppearAssertion(min_frames=2), FlickerAssertion()], [scene_a, scene_b]
        )
        assertions = {f.assertion for f in flags}
        assert assertions == {"appear", "flicker"}

    def test_accepts_single_scene(self):
        short = track_of("short", [obs(0)])
        flags = run_assertions([AppearAssertion(min_frames=2)], scene_of(short))
        assert len(flags) == 1
