"""Tests for flag orderings and uncertainty sampling."""

import pytest

from repro.baselines import (
    FlaggedItem,
    item_confidence,
    order_by_confidence,
    order_by_severity,
    order_randomly,
    uncertainty_sample_observations,
    uncertainty_sample_tracks,
)
from repro.core import Scene
from repro.core.model import Observation, ObservationBundle, Track
from repro.geometry import Box3D


def obs(frame, conf=0.9, source="model"):
    return Observation(
        frame=frame,
        box=Box3D(x=0, y=0, z=0.85, length=4.5, width=1.9, height=1.7),
        object_class="car",
        source=source,
        confidence=conf if source == "model" else None,
    )


def track_of(track_id, observations):
    bundles = {}
    for o in observations:
        bundles.setdefault(o.frame, ObservationBundle(frame=o.frame)).add(o)
    return Track(track_id=track_id, bundles=list(bundles.values()))


def flag(track_id, confs, severity=1.0):
    track = track_of(track_id, [obs(f, conf=c) for f, c in enumerate(confs)])
    return FlaggedItem(
        item=track, severity=severity, assertion="test",
        scene_id="s", track_id=track_id,
    )


class TestItemConfidence:
    def test_mean_of_track(self):
        assert item_confidence(flag("t", [0.8, 0.6])) == pytest.approx(0.7)

    def test_no_confidence_is_zero(self):
        human = track_of("h", [obs(0, source="human")])
        f = FlaggedItem(item=human, severity=1.0, assertion="a",
                        scene_id="s", track_id="h")
        assert item_confidence(f) == 0.0

    def test_list_item(self):
        f = FlaggedItem(item=[obs(0, conf=0.5), obs(1, conf=0.7)],
                        severity=1.0, assertion="a", scene_id="s", track_id="g")
        assert item_confidence(f) == pytest.approx(0.6)


class TestOrderings:
    def test_random_is_deterministic_per_seed(self):
        flags = [flag(f"t{i}", [0.5]) for i in range(10)]
        a = order_randomly(flags, seed=3)
        b = order_randomly(flags, seed=3)
        c = order_randomly(flags, seed=4)
        assert [f.track_id for f in a] == [f.track_id for f in b]
        assert [f.track_id for f in a] != [f.track_id for f in c]

    def test_random_is_permutation(self):
        flags = [flag(f"t{i}", [0.5]) for i in range(10)]
        shuffled = order_randomly(flags, seed=0)
        assert sorted(f.track_id for f in shuffled) == sorted(
            f.track_id for f in flags
        )

    def test_confidence_order(self):
        flags = [flag("low", [0.3]), flag("high", [0.9]), flag("mid", [0.6])]
        ordered = order_by_confidence(flags)
        assert [f.track_id for f in ordered] == ["high", "mid", "low"]

    def test_severity_order(self):
        flags = [flag("a", [0.5], severity=1.0), flag("b", [0.5], severity=5.0)]
        assert [f.track_id for f in order_by_severity(flags)] == ["b", "a"]


class TestUncertaintySampling:
    def scene(self):
        certain = track_of("certain", [obs(f, conf=0.95) for f in range(3)])
        uncertain = track_of("uncertain", [obs(f, conf=0.52) for f in range(3)])
        confident_low = track_of("low", [obs(f, conf=0.1) for f in range(3)])
        return Scene(scene_id="s", dt=0.2,
                     tracks=[certain, uncertain, confident_low])

    def test_observations_ordered_by_threshold_distance(self):
        sampled = uncertainty_sample_observations(self.scene(), threshold=0.5)
        assert sampled[0].track_id == "uncertain"
        assert sampled[0].uncertainty > sampled[-1].uncertainty

    def test_tracks_ordered(self):
        sampled = uncertainty_sample_tracks(self.scene(), threshold=0.5)
        assert sampled[0].track_id == "uncertain"

    def test_human_tracks_excluded(self):
        human = track_of("h", [obs(0, source="human")])
        scene = Scene(scene_id="s", dt=0.2, tracks=[human])
        assert uncertainty_sample_tracks(scene) == []
        assert uncertainty_sample_observations(scene) == []

    def test_high_confidence_errors_missed(self):
        """The §8.4 structural point: a 0.95-confidence item ranks at the
        bottom of uncertainty sampling."""
        sampled = uncertainty_sample_tracks(self.scene(), threshold=0.5)
        assert sampled[-1].track_id == "certain"
