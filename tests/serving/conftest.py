"""Shared fixtures for serving-layer tests: a fitted engine + scenes."""

import pytest

from repro.core import Fixy, default_features

from tests.core.conftest import moving_track, scene_of


def build_training_scenes():
    """Clean human-labeled scenes (cars + trucks), KDE-fittable per class."""
    scenes = []
    for s in range(3):
        tracks = [
            moving_track(
                f"car-{s}-{i}", n_frames=12, speed=2.0 + 0.1 * i,
                start_x=float(10 * i), y=float(3 * s), jitter=0.02,
                seed=s * 10 + i,
            )
            for i in range(6)
        ]
        tracks += [
            moving_track(
                f"truck-{s}-{i}", n_frames=12, speed=1.5, cls="truck",
                start_x=float(100 + 12 * i), y=float(3 * s),
                l=8.5, w=2.6, h=3.2, jitter=0.02, seed=100 + s * 10 + i,
            )
            for i in range(3)
        ]
        scenes.append(scene_of(tracks, scene_id=f"serve-train-{s}"))
    return scenes


@pytest.fixture(scope="session")
def serving_training_scenes():
    return build_training_scenes()


@pytest.fixture(scope="session")
def fitted_fixy(serving_training_scenes):
    """A fitted engine with warmed density grids (deterministic serving)."""
    fixy = Fixy(default_features()).fit(serving_training_scenes)
    fixy.warmup_fast_eval()
    return fixy


def model_scene(scene_id="live", n_tracks=4, n_frames=6):
    """A scene of model-only tracks (rankable by the default feature set)."""
    return scene_of(
        [
            moving_track(
                f"{scene_id}-t{i}", n_frames=n_frames, source="model",
                conf=0.8, start_x=6.0 * i, jitter=0.02, seed=7 * i + 1,
            )
            for i in range(n_tracks)
        ],
        scene_id=scene_id,
    )
