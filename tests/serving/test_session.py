"""SceneSession delta recompilation ≡ from-scratch compile (ISSUE 2).

The from-scratch ``compile_scene`` is the executable reference; these
tests drive randomized edit sequences through a session and assert the
spliced state matches a clean recompile — structurally (factor names,
member rows, track slices via ``SceneSession.verify``) and numerically
(every component score to 1e-9, via the same comparators the columnar
pipeline is property-tested with).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    FeatureDistributionLearner,
    Scorer,
    VolumeAspectFeature,
    compile_scene,
    default_features,
)
from repro.core.features import ObservationFeature
from repro.core.model import ObservationBundle, Scene
from repro.serving import (
    InsertBundle,
    InsertObservation,
    InsertTrack,
    RemoveBundle,
    RemoveObservation,
    RemoveTrack,
    ReplaceObservation,
    SceneSession,
)

from tests.core.conftest import make_obs, make_track, moving_track, scene_of
from tests.core.test_columnar import (
    assert_same_compiled,
    assert_same_scores,
    random_scene,
)

MAX_FRAME = 20  # ego poses exist for frames < 40; stay well inside


def random_edit(rng: np.random.Generator, scene: Scene, counter: list):
    """One random valid edit against the scene's current state."""
    ops = ["insert_track"]
    if scene.tracks:
        ops += ["remove_track", "insert_observation", "insert_bundle"]
        if any(t.bundles for t in scene.tracks):
            ops += ["remove_bundle", "remove_observation", "replace_observation"]
    op = ops[rng.integers(len(ops))]
    cls = ["car", "truck"][rng.integers(2)]
    source = ["human", "model"][rng.integers(2)]
    conf = float(rng.uniform(0.3, 1.0)) if source == "model" else None

    if op == "insert_track":
        counter[0] += 1
        return InsertTrack(
            moving_track(
                f"new-{counter[0]}",
                n_frames=int(rng.integers(1, 6)),
                start_x=float(rng.uniform(-40, 40)),
                cls=cls,
                source=source,
                conf=conf,
                jitter=0.03,
                seed=int(rng.integers(1 << 30)),
            )
        )
    track = scene.tracks[rng.integers(len(scene.tracks))]
    if op == "remove_track":
        return RemoveTrack(track.track_id)
    if op == "insert_observation":
        frame = int(rng.integers(0, MAX_FRAME))
        return InsertObservation(
            track.track_id,
            make_obs(
                frame, float(rng.uniform(-40, 40)), cls=cls, source=source,
                conf=conf, yaw=float(rng.uniform(-3, 3)),
            ),
        )
    if op == "insert_bundle":
        free = sorted(set(range(MAX_FRAME)) - set(track.frames))
        if not free:
            return RemoveTrack(track.track_id)
        frame = free[rng.integers(len(free))]
        obs = [
            make_obs(frame, float(rng.uniform(-40, 40)), cls=cls,
                     source=source, conf=conf)
            for _ in range(int(rng.integers(1, 3)))
        ]
        return InsertBundle(
            track.track_id, ObservationBundle(frame=frame, observations=obs)
        )
    tracks_with_bundles = [t for t in scene.tracks if t.bundles]
    track = tracks_with_bundles[rng.integers(len(tracks_with_bundles))]
    if op == "remove_bundle":
        frame = track.frames[rng.integers(len(track.frames))]
        return RemoveBundle(track.track_id, frame)
    observations = track.observations
    obs = observations[rng.integers(len(observations))]
    if op == "remove_observation":
        return RemoveObservation(track.track_id, obs.obs_id)
    return ReplaceObservation(
        track.track_id,
        obs.obs_id,
        make_obs(
            obs.frame, float(rng.uniform(-40, 40)), cls=cls, source=source,
            conf=conf, l=float(rng.uniform(3.5, 9.0)),
        ),
    )


@pytest.fixture(scope="module")
def learned(serving_training_scenes):
    return FeatureDistributionLearner(default_features()).fit(
        serving_training_scenes
    )


EXTENDED = default_features() + [VolumeAspectFeature()]


@pytest.fixture(scope="module")
def learned_extended(serving_training_scenes):
    return FeatureDistributionLearner(EXTENDED).fit(serving_training_scenes)


def assert_session_matches_scratch(session: SceneSession):
    """Spliced state ≡ from-scratch compile: structure, scores, graph."""
    session.verify(tol=1e-9)
    scratch = compile_scene(
        session.scene,
        session.features,
        learned=session.learned,
        aofs=session.aofs,
        context=session.context,
    )
    assert_same_scores(session.scene, session.compiled, scratch)
    assert_same_compiled(session.compiled, scratch)


class TestRandomizedEditSequences:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_default_features(self, seed, learned):
        rng = np.random.default_rng(seed)
        scene = random_scene(seed, scene_id=f"sess-{seed}")
        session = SceneSession(scene, default_features(), learned=learned)
        counter = [0]
        for _ in range(int(rng.integers(2, 7))):
            session.apply(random_edit(rng, scene, counter))
        assert_session_matches_scratch(session)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_extended_features_with_d2(self, seed, learned_extended):
        """The d=2 (volume, aspect) feature rides the same delta path."""
        rng = np.random.default_rng(seed + 1)
        scene = random_scene(seed, scene_id=f"sess2-{seed}")
        session = SceneSession(scene, EXTENDED, learned=learned_extended)
        counter = [0]
        for _ in range(int(rng.integers(2, 6))):
            session.apply(random_edit(rng, scene, counter))
        assert_session_matches_scratch(session)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_verify_after_every_edit(self, seed, learned):
        rng = np.random.default_rng(seed + 2)
        scene = random_scene(seed, scene_id=f"sess3-{seed}")
        session = SceneSession(scene, default_features(), learned=learned)
        counter = [0]
        for _ in range(3):
            session.apply(random_edit(rng, scene, counter))
            session.verify(tol=1e-9)


class TestDirectedEdits:
    def test_empty_scene_grows_and_shrinks(self, learned):
        scene = scene_of([], scene_id="empty")
        session = SceneSession(scene, default_features(), learned=learned)
        assert session.compiled.columns.n_factors == 0
        session.apply(InsertTrack(moving_track("a", n_frames=5)))
        assert_session_matches_scratch(session)
        session.apply(RemoveTrack("a"))
        assert session.compiled.columns.n_factors == 0
        assert_session_matches_scratch(session)

    def test_track_emptied_by_observation_removals(self, learned):
        track = moving_track("solo", n_frames=2)
        scene = scene_of([track], scene_id="drain")
        session = SceneSession(scene, default_features(), learned=learned)
        for obs in list(track.observations):
            session.apply(RemoveObservation("solo", obs.obs_id))
        assert track.bundles == []
        assert_session_matches_scratch(session)

    def test_class_flip_moves_conditioning_group(self, learned):
        """Replacing observations flips the majority class; the segment
        recompiles against the other class's distributions."""
        track = moving_track("flip", n_frames=5)
        scene = scene_of([track], scene_id="flip")
        session = SceneSession(scene, default_features(), learned=learned)
        for obs in list(track.observations):
            session.apply(
                ReplaceObservation(
                    "flip", obs.obs_id,
                    make_obs(obs.frame, obs.box.x, cls="truck",
                             l=8.5, w=2.6, h=3.2),
                )
            )
        assert track.majority_class() == "truck"
        assert_session_matches_scratch(session)

    def test_noncolumnar_and_override_features_splice(self, learned):
        """Fallback columns (custom compute) and non-contiguous member
        overrides (custom observations_of) survive the splice."""

        class EndpointsFeature(ObservationFeature):
            name = "endpoints"
            learnable = False
            kind = "track"

            def compute(self, track, context):
                return 0.5

            def items_of(self, track):
                return [track]

            def observations_of(self, track):
                obs = track.observations
                return [obs[0], obs[-1]] if obs else []

        features = default_features() + [EndpointsFeature()]
        scene = scene_of(
            [moving_track("a", n_frames=5),
             moving_track("b", n_frames=4, start_x=40.0)],
            scene_id="override",
        )
        session = SceneSession(scene, features, learned=learned)
        session.apply(InsertObservation("a", make_obs(9, 3.0)))
        session.apply(InsertTrack(moving_track("c", n_frames=3, start_x=80.0)))
        session.verify(tol=1e-9)
        scratch = compile_scene(
            scene, features, learned=learned, context=session.context
        )
        assert_same_scores(scene, session.compiled, scratch)
        assert_same_compiled(session.compiled, scratch)

    def test_subset_items_of_fallback_feature_splices(self, learned):
        """A fallback column carrying fewer rows than the table has
        items of its kind (custom items_of subset) must splice with
        column-length offsets, not kind counts."""

        class ModelObsVolume(ObservationFeature):
            name = "model_obs_volume"
            learnable = False

            def compute(self, obs, context):
                return min(1.0, 1.0 / max(obs.box.volume, 1e-6))

            def items_of(self, track):
                return [o for o in track.observations if o.is_model]

        features = default_features() + [ModelObsVolume()]
        tracks = [
            make_track(
                "mixed",
                {f: [make_obs(f, 1.0 * f),
                     make_obs(f, 1.1 * f, source="model", conf=0.8)]
                 for f in range(4)},
            ),
            moving_track("human-only", n_frames=3, start_x=40.0),
            moving_track("models", n_frames=4, start_x=80.0, source="model",
                         conf=0.7),
        ]
        scene = scene_of(tracks, scene_id="subset")
        session = SceneSession(scene, features, learned=learned)
        session.apply(InsertObservation("human-only", make_obs(9, 41.0, source="model", conf=0.9)))
        session.apply(RemoveTrack("mixed"))
        session.apply(InsertTrack(moving_track("late", n_frames=3, start_x=120.0, source="model", conf=0.6)))
        session.verify(tol=1e-9)
        scratch = compile_scene(
            scene, features, learned=learned, context=session.context
        )
        assert_same_scores(scene, session.compiled, scratch)
        assert_same_compiled(session.compiled, scratch)

    def test_mutating_scene_directly_is_detected(self, learned):
        scene = scene_of([moving_track("a", n_frames=3)], scene_id="direct")
        session = SceneSession(scene, default_features(), learned=learned)
        scene.tracks.append(moving_track("rogue", n_frames=2))
        with pytest.raises(RuntimeError, match="without apply"):
            session.compiled
        session.invalidate(["rogue"])
        assert_session_matches_scratch(session)

    def test_duplicate_obs_id_across_tracks_rejected_at_edit(self, learned):
        """The edit that introduces a duplicate id fails — same invariant
        the from-scratch compile enforces, caught eagerly."""
        scene = scene_of([moving_track("a", n_frames=3)], scene_id="dup")
        session = SceneSession(scene, default_features(), learned=learned)
        stolen = scene.track_by_id("a").observations[0]
        clone = make_track("thief", {stolen.frame: [stolen]})
        with pytest.raises(ValueError, match="already exists"):
            session.apply(InsertTrack(clone))
        # The bad state stays un-servable (retried, fails again) rather
        # than silently serving the pre-edit ranking.
        with pytest.raises(ValueError, match="already exists"):
            session.rank_tracks()
        # Undoing the bad edit restores service.
        session.apply(RemoveTrack("thief"))
        assert_session_matches_scratch(session)

    def test_failed_recompile_never_serves_stale_state(self, learned):
        """If a segment recompile blows up mid-edit, subsequent queries
        must not return the pre-edit ranking as if nothing happened."""
        scene = scene_of([moving_track("a", n_frames=4)], scene_id="fail")
        session = SceneSession(scene, default_features(), learned=learned)
        session.rank_tracks()  # warm pre-edit state
        obs = scene.track_by_id("a").observations[0]
        dup = make_track("x", {obs.frame: [obs]})
        with pytest.raises(ValueError):
            session.apply(InsertTrack(dup))
        with pytest.raises(ValueError):
            session.rank_tracks()  # refuses, not stale results
        session.apply(RemoveTrack("x"))
        assert_session_matches_scratch(session)


class TestSessionBehavior:
    def test_stats_and_versioning(self, learned):
        scene = scene_of(
            [moving_track("a", n_frames=4),
             moving_track("b", n_frames=4, start_x=30.0)],
            scene_id="stats",
        )
        session = SceneSession(scene, default_features(), learned=learned)
        assert session.version == 0
        assert session.stats.tracks_recompiled == 2
        session.apply(InsertObservation("a", make_obs(9, 1.0)))
        assert session.version == 1
        assert session.stats.tracks_recompiled == 3  # only "a" recompiled
        session.compiled
        session.compiled  # cached — no second splice
        assert session.stats.splices == 1
        session.apply(RemoveTrack("b"))
        assert session.stats.segments_dropped == 1
        assert session.stats.edits_applied == 2

    def test_rank_methods_and_top_k(self, fitted_fixy):
        from tests.serving.conftest import model_scene

        scene = model_scene("rank", n_tracks=4)
        session = fitted_fixy.session(scene)
        ranked = session.rank_tracks()
        assert len(ranked) == 4
        assert ranked == sorted(ranked, key=lambda s: s.score, reverse=True)
        assert session.rank_tracks(top_k=2) == ranked[:2]
        assert len(session.rank_observations(top_k=3)) == 3
        bundles = session.rank_bundles()
        assert all(b.scene_id == "rank" for b in bundles)

    def test_engine_session_requires_fit(self):
        from repro.core import Fixy

        fixy = Fixy(default_features())
        with pytest.raises(RuntimeError, match="fit"):
            fixy.session(scene_of([moving_track("a")], scene_id="x"))

    def test_engine_session_rejects_scalar_pipeline(self, serving_training_scenes):
        from repro.core import Fixy

        fixy = Fixy(default_features(), vectorized=False).fit(
            serving_training_scenes
        )
        with pytest.raises(ValueError, match="vectorized=False"):
            fixy.session(scene_of([moving_track("a")], scene_id="x"))

    def test_session_edits_evict_engine_compile_cache(self, fitted_fixy):
        """fixy.rank_* on a session-edited scene must not serve the
        cached pre-edit compile (scenes are cached by object identity)."""
        from tests.serving.conftest import model_scene

        scene = model_scene("evict", n_tracks=3)
        before = {s.track_id: s.score for s in fitted_fixy.rank_tracks(scene)}
        session = fitted_fixy.session(scene)
        obs = scene.track_by_id("evict-t0").observations[2]
        session.apply(
            ReplaceObservation(
                "evict-t0", obs.obs_id,
                make_obs(obs.frame, obs.box.x + 500.0, source="model", conf=0.8),
            )
        )
        after = {s.track_id: s.score for s in fitted_fixy.rank_tracks(scene)}
        assert after["evict-t0"] < before["evict-t0"]

    def test_scores_track_live_edits(self, fitted_fixy):
        """An edit visibly moves a track's score — the streaming story."""
        from tests.serving.conftest import model_scene

        scene = model_scene("live", n_tracks=3)
        session = fitted_fixy.session(scene)
        before = {
            s.track_id: s.score for s in session.rank_tracks()
        }
        # Teleport one observation far away: velocity becomes implausible.
        target = scene.track_by_id("live-t0")
        obs = target.observations[2]
        session.apply(
            ReplaceObservation(
                "live-t0", obs.obs_id,
                make_obs(obs.frame, obs.box.x + 500.0, source="model", conf=0.8),
            )
        )
        after = {s.track_id: s.score for s in session.rank_tracks()}
        assert after["live-t0"] < before["live-t0"]
        for other in ("live-t1", "live-t2"):
            assert after[other] == before[other]  # untouched tracks: bit-equal
