"""SessionStore eviction + StreamingService protocol + CLI serve loop."""

import io
import json

import pytest

from repro.serving import InsertObservation, RemoveTrack, SessionStore, StreamingService

from tests.core.conftest import make_obs
from tests.serving.conftest import model_scene


class TestSessionStore:
    def test_open_get_apply_rank(self, fitted_fixy):
        store = SessionStore(fitted_fixy, max_sessions=4)
        scene = model_scene("st-a", n_tracks=3)
        session = store.open(scene)
        assert store.get("st-a") is session
        changed = store.apply("st-a", InsertObservation("st-a-t0", make_obs(9, 1.0, source="model", conf=0.9)))
        assert changed == {"st-a-t0"}
        ranked = store.rank("st-a", "tracks", top_k=2)
        assert len(ranked) == 2
        assert store.rank("st-a", "observations") != []

    def test_lru_eviction_prefers_recently_used(self, fitted_fixy):
        store = SessionStore(fitted_fixy, max_sessions=2)
        store.open(model_scene("s1"))
        store.open(model_scene("s2"))
        store.get("s1")  # refresh s1 — s2 becomes the eviction candidate
        store.open(model_scene("s3"))
        assert "s1" in store and "s3" in store
        assert "s2" not in store
        assert store.sessions_evicted == 1
        with pytest.raises(KeyError, match="no live session"):
            store.get("s2")

    def test_close_and_stats(self, fitted_fixy):
        store = SessionStore(fitted_fixy, max_sessions=4)
        store.open(model_scene("c1"))
        assert store.close("c1") is True
        assert store.close("c1") is False
        stats = store.stats()
        assert stats["live_sessions"] == 0
        assert stats["sessions_opened"] == 1

    def test_bad_rank_kind(self, fitted_fixy):
        store = SessionStore(fitted_fixy, max_sessions=2)
        store.open(model_scene("k1"))
        with pytest.raises(ValueError, match="unknown rank kind"):
            store.rank("k1", "galaxies")

    def test_requires_fitted_engine(self):
        from repro.core import Fixy, default_features

        with pytest.raises(RuntimeError, match="fit"):
            SessionStore(Fixy(default_features()))


class TestStreamingService:
    @pytest.fixture
    def service(self, fitted_fixy):
        return StreamingService(fitted_fixy, max_sessions=4)

    def test_open_edit_rank_close(self, service):
        scene = model_scene("svc", n_tracks=3)
        opened = service.handle({"op": "open", "scene": scene.to_dict()})
        assert opened["ok"] and opened["session_id"] == "svc"
        assert opened["n_tracks"] == 3

        edit = InsertObservation(
            "svc-t0", make_obs(9, 1.0, source="model", conf=0.9)
        )
        edited = service.handle(
            {"op": "edit", "session_id": "svc", "edit": edit.to_dict()}
        )
        assert edited["ok"] and edited["changed"] == ["svc-t0"]
        assert edited["version"] == 1

        ranked = service.handle(
            {"op": "rank", "session_id": "svc", "kind": "tracks", "top_k": 2}
        )
        assert ranked["ok"] and len(ranked["results"]) == 2
        top = ranked["results"][0]
        assert top["kind"] == "track" and "score" in top and "track_id" in top
        json.dumps(ranked)  # whole response JSON-safe

        removed = service.handle(
            {"op": "edit", "session_id": "svc",
             "edit": RemoveTrack("svc-t2").to_dict()}
        )
        assert removed["ok"]
        closed = service.handle({"op": "close", "session_id": "svc"})
        assert closed["ok"] and closed["closed"] is True

    def test_rank_kinds(self, service):
        service.handle(
            {"op": "open", "scene": model_scene("kinds").to_dict()}
        )
        for kind, id_field in (
            ("bundles", "frame"), ("observations", "obs_id")
        ):
            response = service.handle(
                {"op": "rank", "session_id": "kinds", "kind": kind, "top_k": 1}
            )
            assert response["ok"]
            assert id_field in response["results"][0]

    def test_errors_are_responses_not_exceptions(self, service):
        assert service.handle({"op": "warp"})["ok"] is False
        assert "unknown op" in service.handle({"op": "warp"})["error"]
        assert service.handle({"op": "rank", "session_id": "ghost"})["ok"] is False
        assert service.handle({"op": "open"})["ok"] is False

    def test_stats_op(self, service):
        service.handle({"op": "open", "scene": model_scene("stat").to_dict()})
        stats = service.handle({"op": "stats"})
        assert stats["ok"] and stats["live_sessions"] == 1

    def test_serve_loop(self, service):
        scene = model_scene("loop")
        lines = [
            json.dumps({"op": "open", "scene": scene.to_dict()}),
            "",  # blank lines skipped
            json.dumps({"op": "rank", "session_id": "loop", "top_k": 1}),
            "not json",
        ]
        out = io.StringIO()
        handled = service.serve(lines, out)
        assert handled == 3
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [r["ok"] for r in responses] == [True, True, False]
        assert "bad JSON" in responses[2]["error"]


class TestCliServe:
    def test_serve_command_round_trip(self, fitted_fixy, tmp_path, capsys):
        """`repro.cli serve --model ...` speaks the protocol over stdio."""
        from repro.cli import build_parser, _cmd_serve

        model_path = tmp_path / "model.json"
        fitted_fixy.learned.save(model_path)

        scene = model_scene("cli", n_tracks=2)
        requests = "\n".join(
            [
                json.dumps({"op": "open", "scene": scene.to_dict()}),
                json.dumps({"op": "rank", "session_id": "cli", "top_k": 1}),
                json.dumps({"op": "stats"}),
            ]
        )
        args = build_parser().parse_args(
            ["serve", "--model", str(model_path), "--max-sessions", "2"]
        )
        out = io.StringIO()
        code = _cmd_serve(args, stdin=io.StringIO(requests), stdout=out)
        assert code == 0
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert len(responses) == 3
        assert all(r["ok"] for r in responses)
        assert responses[1]["results"][0]["track_id"].startswith("cli-")
        assert responses[2]["live_sessions"] == 1
        assert "served 3 requests" in capsys.readouterr().err

    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.max_sessions == 32
        assert args.model is None


class TestLegacyShims:
    def test_scored_item_to_dict_shim_warns_and_matches(self, fitted_fixy):
        from repro.serving.service import scored_item_to_dict

        scene = model_scene("shim", n_tracks=2)
        scored = fitted_fixy.rank(scene, "tracks")[0]
        with pytest.warns(DeprecationWarning, match="scored_item_to_dict"):
            legacy = scored_item_to_dict(scored, "tracks")
        assert legacy == scored.to_dict("tracks")

    def test_v0_requests_warn_but_work(self, fitted_fixy):
        """The acceptance check: pre-versioning requests keep working,
        now through a deprecation shim."""
        service = StreamingService(fitted_fixy, max_sessions=2)
        scene = model_scene("v0", n_tracks=2)
        with pytest.warns(DeprecationWarning, match="version-less"):
            opened = service.handle({"op": "open", "scene": scene.to_dict()})
            ranked = service.handle(
                {"op": "rank", "session_id": "v0", "top_k": 1}
            )
        assert opened["ok"] and ranked["ok"]
        assert len(ranked["results"]) == 1
        assert "v" not in opened and "v" not in ranked

    def test_serve_strict_flag(self, fitted_fixy, tmp_path):
        from repro.cli import build_parser, _cmd_serve

        model_path = tmp_path / "model.json"
        fitted_fixy.learned.save(model_path)
        args = build_parser().parse_args(
            ["serve", "--model", str(model_path), "--strict"]
        )
        out = io.StringIO()
        code = _cmd_serve(
            args, stdin=io.StringIO(json.dumps({"op": "stats"})), stdout=out
        )
        assert code == 0
        response = json.loads(out.getvalue())
        assert response["ok"] is False
        assert response["error"]["code"] == "unsupported_version"
