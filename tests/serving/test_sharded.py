"""ShardedRanker: process-pool rankings ≡ thread-pool rankings, byte for byte."""

import struct

import pytest

from repro.core import Fixy, LearnedModel, default_features
from repro.serving import ShardedRanker

from tests.serving.conftest import model_scene


def signature(ranked):
    """Bit-exact ranking fingerprint (scores as raw float64 bytes)."""
    return [
        (s.scene_id, s.track_id, s.n_factors, struct.pack("<d", s.score))
        for s in ranked
    ]


def long_tracks_only(track):
    """A picklable rank filter (lambdas cannot cross process boundaries)."""
    return track.n_observations >= 6


@pytest.fixture(scope="module")
def scenes():
    return [model_scene(f"shard-{i}", n_tracks=3) for i in range(4)]


@pytest.fixture(scope="module")
def ranker(fitted_fixy):
    with ShardedRanker(fitted_fixy, n_workers=2, cache_size=8) as r:
        yield r


class TestByteIdentical:
    def test_rank_tracks_identical(self, fitted_fixy, scenes, ranker):
        threaded = fitted_fixy.rank_tracks(scenes)
        sharded = ranker.rank_tracks(scenes)
        assert signature(sharded) == signature(threaded)
        assert len(sharded) == 3 * len(scenes)

    def test_rank_bundles_and_observations_identical(
        self, fitted_fixy, scenes, ranker
    ):
        for method in ("rank_bundles", "rank_observations"):
            threaded = getattr(fitted_fixy, method)(scenes)
            sharded = getattr(ranker, method)(scenes)
            assert signature(sharded) == signature(threaded), method

    def test_single_scene_and_top_k(self, fitted_fixy, scenes, ranker):
        threaded = fitted_fixy.rank_tracks(scenes[0], top_k=2)
        sharded = ranker.rank_tracks(scenes[0], top_k=2)
        assert signature(sharded) == signature(threaded)
        assert len(sharded) == 2

    def test_picklable_filter(self, fitted_fixy, scenes, ranker):
        threaded = fitted_fixy.rank_tracks(scenes, track_filter=long_tracks_only)
        sharded = ranker.rank_tracks(scenes, track_filter=long_tracks_only)
        assert signature(sharded) == signature(threaded)

    def test_items_round_trip_by_value(self, fitted_fixy, scenes, ranker):
        """Worker-side items deserialize equal to the originals."""
        threaded = fitted_fixy.rank_tracks(scenes)
        sharded = ranker.rank_tracks(scenes)
        for a, b in zip(sharded, threaded):
            assert a.item.track_id == b.item.track_id
            assert [o.obs_id for o in a.item.observations] == [
                o.obs_id for o in b.item.observations
            ]


class TestWorkerCache:
    def test_repeat_traffic_hits_worker_caches(self, fitted_fixy, scenes):
        with ShardedRanker(fitted_fixy, n_workers=2, cache_size=8) as ranker:
            ranker.rank_tracks(scenes)
            first = ranker.cache_stats()
            # Same fingerprints again: compiled scenes should be reused
            # (scheduling may land a scene on the other worker, so hits
            # are not guaranteed per-scene — but a second identical
            # sweep with misses == first sweep's would mean no caching).
            ranker.rank_tracks(scenes)
            ranker.rank_tracks(scenes)
            final = ranker.cache_stats()
        assert first["misses"] >= len(scenes) / 2
        assert final["hits"] > 0
        assert final["misses"] <= 2 * len(scenes)

    def test_cache_keyed_by_content_not_identity(self, fitted_fixy, scenes):
        from repro.core.model import Scene
        from repro.serving.sharded import scene_fingerprint

        clone = Scene.from_dict(scenes[0].to_dict())
        assert scene_fingerprint(clone) == scene_fingerprint(scenes[0])
        edited = Scene.from_dict(scenes[0].to_dict())
        edited.tracks.pop()
        assert scene_fingerprint(edited) != scene_fingerprint(scenes[0])


class TestPayloadTransport:
    def test_payload_round_trip_ranks_identically(self, fitted_fixy, scenes):
        clone = Fixy.from_payload(fitted_fixy.to_payload())
        assert signature(clone.rank_tracks(scenes)) == signature(
            fitted_fixy.rank_tracks(scenes)
        )

    def test_payload_learned_is_json_safe(self, fitted_fixy):
        import json

        payload = fitted_fixy.to_payload()
        json.dumps(payload["learned"])  # model + grids must be JSON-safe

    def test_payload_carries_ready_grids(self, fitted_fixy):
        payload = fitted_fixy.to_payload()
        restored = LearnedModel.from_dict(payload["learned"])
        states = [
            lfd._fast_state
            for groups in restored.distributions.values()
            for lfd in groups.values()
        ]
        assert "ready" in states  # warmed grids arrive pre-built

    def test_unfitted_engine_rejected(self):
        with pytest.raises(RuntimeError, match="fit"):
            ShardedRanker(Fixy(default_features()), n_workers=1)

    def test_engine_shard_convenience(self, fitted_fixy, scenes):
        with fitted_fixy.shard(n_workers=1) as ranker:
            assert signature(ranker.rank_tracks(scenes[:2])) == signature(
                fitted_fixy.rank_tracks(scenes[:2])
            )
