"""Threaded TCP front tests: listener lifecycle and connection cleanup."""

import json
import socket
import threading

from repro.api.client import AuditClient, parse_address
from repro.serving import TcpWorker


def test_stop_closes_live_connections(fitted_fixy):
    """`stop()` must end accepted conversations, not just the listener.

    A client parked on an idle read used to keep its handler thread
    (and both sockets) alive forever after shutdown; now it sees a
    prompt EOF.
    """
    worker = TcpWorker(fitted_fixy)
    sock = socket.create_connection(parse_address(worker.address), timeout=30)
    stream = sock.makefile("rwb")
    try:
        stream.write(
            (json.dumps({"v": 1, "op": "stats"}) + "\n").encode("utf-8")
        )
        stream.flush()
        assert json.loads(stream.readline())["ok"] is True
        # The client now sits idle; the handler thread is parked on its
        # read. Stopping the worker must unblock it and close the socket.
        worker.stop()
        sock.settimeout(10)  # a hang here is the bug this test pins
        assert stream.readline() == b""
    finally:
        stream.close()
        sock.close()
    assert not worker.thread.is_alive()


def test_close_is_stop_alias(fitted_fixy):
    worker = TcpWorker(fitted_fixy)
    with AuditClient.connect(worker.address) as client:
        assert client.stats()["live_sessions"] == 0
    worker.close()
    assert not worker.thread.is_alive()


def test_stop_leaves_no_handler_threads(fitted_fixy):
    worker = TcpWorker(fitted_fixy)
    clients = [AuditClient.connect(worker.address) for _ in range(3)]
    for client in clients:
        client.stats()
    before = {t.name for t in threading.enumerate()}
    assert any(name.startswith("Thread-") for name in before)
    worker.stop()
    for client in clients:
        client.close()
    # Handler threads exit promptly once their sockets are shut down.
    for thread in threading.enumerate():
        if thread.name.startswith("Thread-") and thread.is_alive():
            thread.join(timeout=10)
            assert not thread.is_alive(), thread.name
