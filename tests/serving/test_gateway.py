"""Async gateway tests: wires, admission, coalescing, drain, identity.

The gateway's contract is that it *is* the threaded front, minus the
thread-per-connection: every response byte-identical, both wires
spoken, v0 requests still shimmed — plus the new admission behavior
(typed ``overloaded`` shedding, never a hang or a silent drop) and
compile coalescing for concurrent same-scene audits.
"""

import json
import socket
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import frames, protocol
from repro.api.client import AuditClient, parse_address
from repro.api.protocol import OverloadedError
from repro.serving import GatewayWorker, StreamingService, TcpWorker
from repro.serving.edits import InsertObservation, RemoveTrack

from tests.core.conftest import make_obs
from tests.serving.conftest import model_scene


class GatedService(StreamingService):
    """A service whose handlers park on an event when asked to.

    A request carrying ``"gate": true`` blocks inside the executor
    thread until :meth:`release` — the deterministic way to hold the
    gateway's admission window open while a test probes shedding,
    coalescing, or drain.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.entered = threading.Event()
        self._release = threading.Event()

    def release(self):
        self._release.set()

    def handle(self, request):
        if isinstance(request, dict) and request.get("gate"):
            self.entered.set()
            assert self._release.wait(timeout=30), "gate never released"
        return super().handle(request)


def _raw_connect(address):
    sock = socket.create_connection(parse_address(address), timeout=30)
    return sock, sock.makefile("rwb")


def _raw_call(stream, request: dict) -> dict:
    stream.write((json.dumps(request) + "\n").encode("utf-8"))
    stream.flush()
    return json.loads(stream.readline())


# ------------------------------------------------------------------ wires


class TestWires:
    def test_line_json_round_trip(self, fitted_fixy):
        with GatewayWorker(fitted_fixy) as worker:
            with AuditClient.connect(worker.address) as client:
                session_id = client.open_session(model_scene("gw-line"))
                assert session_id == "gw-line"
                edited = client.edit(
                    session_id,
                    InsertObservation(
                        "gw-line-t0",
                        make_obs(9, 1.0, source="model", conf=0.9),
                    ),
                )
                assert edited["changed"] == ["gw-line-t0"]
                ranked = client.rank(session_id, kind="tracks", top_k=2)
                assert len(ranked) == 2
                assert client.close_session(session_id) is True
                stats = client.stats()
                assert stats["live_sessions"] == 0

    def test_framed_wire_round_trip(self, fitted_fixy):
        from repro.api import AuditSpec

        scene = model_scene("gw-framed")
        packed = frames.pack_scene(scene)
        fingerprint = frames.scene_fingerprint(packed)
        with GatewayWorker(fitted_fixy) as worker:
            with AuditClient.connect(worker.address, wire="frames") as client:
                hello = client.hello()
                assert hello["protocol_version"] == protocol.PROTOCOL_VERSION
                client.send_request(
                    "audit",
                    blobs=(packed,),
                    spec=AuditSpec(kind="tracks", top_k=2).to_dict(),
                    scene_hashes=[fingerprint],
                )
                response = client.recv_response()
                assert len(response["result"]["items"]) == 2
                # The body is cached now: hash-only audit, no blob.
                client.send_request(
                    "audit",
                    spec=AuditSpec(kind="tracks", top_k=2).to_dict(),
                    scene_hashes=[fingerprint],
                )
                warm = client.recv_response()
                assert warm["result"]["items"] == response["result"]["items"]
                assert warm["scene_cache"]["hits"] == 1

    def test_both_wires_one_listener(self, fitted_fixy):
        with GatewayWorker(fitted_fixy) as worker:
            with AuditClient.connect(worker.address) as lines, \
                    AuditClient.connect(worker.address, wire="frames") as framed:
                assert lines.hello()["protocol_version"] >= 1
                assert framed.hello()["protocol_version"] == 2

    def test_v0_legacy_shim(self, fitted_fixy):
        scene = model_scene("gw-v0")
        with GatewayWorker(fitted_fixy) as worker:
            sock, stream = _raw_connect(worker.address)
            try:
                opened = _raw_call(
                    stream, {"op": "open", "scene": scene.to_dict()}
                )
                # v0 dialect: plain ok payload, no version marker.
                assert opened["ok"] is True and "v" not in opened
                bad = _raw_call(stream, {"op": "warp"})
                assert bad["ok"] is False
                assert isinstance(bad["error"], str)  # string, not struct
            finally:
                stream.close()
                sock.close()

    def test_bad_json_line(self, fitted_fixy):
        with GatewayWorker(fitted_fixy) as worker:
            sock, stream = _raw_connect(worker.address)
            try:
                stream.write(b"this is not json\n")
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"] is False
                assert "bad JSON" in response["error"]
                # The connection survives, like the threaded serve loop.
                assert _raw_call(stream, {"op": "stats"})["ok"] is True
            finally:
                stream.close()
                sock.close()

    def test_strict_service_rejects_v0_with_structured_error(
        self, fitted_fixy
    ):
        service = StreamingService(fitted_fixy, accept_legacy=False)
        with GatewayWorker(service=service) as worker:
            sock, stream = _raw_connect(worker.address)
            try:
                response = _raw_call(stream, {"op": "stats"})
                assert response["ok"] is False
                assert response["error"]["code"] == protocol.UNSUPPORTED_VERSION
            finally:
                stream.close()
                sock.close()

    def test_blank_lines_skipped(self, fitted_fixy):
        with GatewayWorker(fitted_fixy) as worker:
            sock, stream = _raw_connect(worker.address)
            try:
                stream.write(b"\n\n")
                stream.flush()
                assert _raw_call(stream, {"op": "stats"})["ok"] is True
            finally:
                stream.close()
                sock.close()


# -------------------------------------------------------------- admission


class TestAdmission:
    def test_queue_full_sheds_typed_overloaded(self, fitted_fixy):
        service = GatedService(fitted_fixy)
        with GatewayWorker(
            service=service, max_inflight=1, max_queue=0, client_budget=8
        ) as worker:
            sock, stream = _raw_connect(worker.address)
            try:
                # Park the only executor thread on the gate.
                stream.write(
                    (json.dumps({"v": 1, "op": "stats", "gate": True}) + "\n")
                    .encode("utf-8")
                )
                stream.flush()
                assert service.entered.wait(timeout=10)
                # The window (1 inflight + 0 queue) is now full.
                with AuditClient.connect(worker.address) as other:
                    with pytest.raises(OverloadedError) as excinfo:
                        other.stats()
                    assert excinfo.value.code == protocol.OVERLOADED
                    assert (
                        excinfo.value.details["reason"] == "queue_full"
                    )
                    assert excinfo.value.details["max_queue"] == 0
                service.release()
                parked = json.loads(stream.readline())
                assert parked["ok"] is True  # the gated request completed
            finally:
                stream.close()
                sock.close()

    def test_overloaded_is_v0_string_error_for_legacy_clients(
        self, fitted_fixy
    ):
        service = GatedService(fitted_fixy)
        with GatewayWorker(
            service=service, max_inflight=1, max_queue=0
        ) as worker:
            sock, stream = _raw_connect(worker.address)
            try:
                stream.write(
                    (json.dumps({"v": 1, "op": "stats", "gate": True}) + "\n")
                    .encode("utf-8")
                )
                stream.flush()
                assert service.entered.wait(timeout=10)
                other_sock, other = _raw_connect(worker.address)
                try:
                    shed = _raw_call(other, {"op": "stats"})  # version-less
                    assert shed["ok"] is False
                    assert isinstance(shed["error"], str)
                    assert "full" in shed["error"]
                finally:
                    other.close()
                    other_sock.close()
                service.release()
                assert json.loads(stream.readline())["ok"] is True
            finally:
                stream.close()
                sock.close()

    def test_client_budget_sheds_pipelined_requests(self, fitted_fixy):
        service = GatedService(fitted_fixy)
        with GatewayWorker(
            service=service, max_inflight=1, max_queue=8, client_budget=1
        ) as worker:
            with AuditClient.connect(worker.address, wire="frames") as client:
                client.send_request("stats", gate=True)
                assert service.entered.wait(timeout=10)
                # Second pipelined request from the same connection:
                # past its budget of 1 in-flight.
                client.send_request("stats")
                service.release()
                assert client.recv_response()["ok"] is True
                with pytest.raises(OverloadedError) as excinfo:
                    client.recv_response()
                assert excinfo.value.details["reason"] == "client_budget"

    def test_shed_counter_advances(self, fitted_fixy):
        from repro.serving.gateway import _SHED

        service = GatedService(fitted_fixy)
        before = _SHED.value(reason="queue_full")
        with GatewayWorker(
            service=service, max_inflight=1, max_queue=0
        ) as worker:
            sock, stream = _raw_connect(worker.address)
            try:
                stream.write(
                    (json.dumps({"v": 1, "op": "stats", "gate": True}) + "\n")
                    .encode("utf-8")
                )
                stream.flush()
                assert service.entered.wait(timeout=10)
                with AuditClient.connect(worker.address) as other:
                    with pytest.raises(OverloadedError):
                        other.stats()
                assert worker.gateway.requests_shed == 1
                service.release()
                json.loads(stream.readline())
            finally:
                stream.close()
                sock.close()
        assert _SHED.value(reason="queue_full") == before + 1


# -------------------------------------------------------------- coalescing


class TestCoalescing:
    def _audit_request(self, fingerprint, **extra):
        from repro.api import AuditSpec

        return {
            "v": 2,
            "op": "audit",
            "spec": AuditSpec(kind="tracks", top_k=2).to_dict(),
            "scene_hashes": [fingerprint],
            **extra,
        }

    def test_identical_inflight_audits_share_one_execution(
        self, fitted_fixy
    ):
        from repro.serving.gateway import _COALESCE

        scene = model_scene("gw-coalesce")
        packed = frames.pack_scene(scene)
        fingerprint = frames.scene_fingerprint(packed)
        service = GatedService(fitted_fixy, scene_cache=4)
        service.scene_cache.ingest(packed)
        handled_before = service.requests_handled
        leads_before = _COALESCE.value(outcome="lead")
        hits_before = _COALESCE.value(outcome="hit")
        with GatewayWorker(
            service=service, max_inflight=1, max_queue=16, client_budget=4
        ) as worker:
            request = self._audit_request(fingerprint, gate=True)
            streams = []
            for _ in range(3):
                sock, stream = _raw_connect(worker.address)
                streams.append((sock, stream))
                stream.write((json.dumps(request) + "\n").encode("utf-8"))
                stream.flush()
            try:
                assert service.entered.wait(timeout=10)
                # All three are in flight on one future; release the lead.
                service.release()
                bodies = {streams[i][1].readline() for i in range(3)}
                assert len(bodies) == 1  # byte-identical shared response
                assert json.loads(bodies.pop())["ok"] is True
            finally:
                for sock, stream in streams:
                    stream.close()
                    sock.close()
        assert _COALESCE.value(outcome="lead") == leads_before + 1
        assert _COALESCE.value(outcome="hit") == hits_before + 2
        # The service executed the audit exactly once.
        assert service.requests_handled == handled_before + 1

    def test_different_requests_do_not_coalesce(self, fitted_fixy):
        gateway = GatewayWorker(fitted_fixy).gateway
        scene = model_scene("gw-key")
        fingerprint = frames.scene_fingerprint(frames.pack_scene(scene))
        base = self._audit_request(fingerprint)
        key = gateway._coalesce_key(base, None)
        assert key is not None
        assert gateway._coalesce_key(dict(base, extra=1), None) != key
        # Stateful or body-shipping variants never coalesce.
        assert gateway._coalesce_key(dict(base, session_id="s"), None) is None
        assert gateway._coalesce_key(dict(base, trace_id="t"), None) is None
        assert (
            gateway._coalesce_key(dict(base, scene_hashes=[]), None) is None
        )
        assert gateway._coalesce_key({"op": "stats"}, None) is None

    def test_sequential_audits_do_not_coalesce(self, fitted_fixy):
        """Coalescing shares *in-flight* work only — a finished response
        is never replayed to a later request."""
        scene = model_scene("gw-seq")
        packed = frames.pack_scene(scene)
        fingerprint = frames.scene_fingerprint(packed)
        service = StreamingService(fitted_fixy, scene_cache=4)
        service.scene_cache.ingest(packed)
        handled_before = service.requests_handled
        with GatewayWorker(service=service) as worker:
            sock, stream = _raw_connect(worker.address)
            try:
                first = _raw_call(stream, self._audit_request(fingerprint))
                second = _raw_call(stream, self._audit_request(fingerprint))
                assert first["ok"] and second["ok"]
            finally:
                stream.close()
                sock.close()
        assert service.requests_handled == handled_before + 2


# ------------------------------------------------------------------ drain


class TestDrain:
    def test_stop_answers_inflight_before_closing(self, fitted_fixy):
        service = GatedService(fitted_fixy)
        worker = GatewayWorker(service=service, drain_timeout=10)
        sock, stream = _raw_connect(worker.address)
        try:
            stream.write(
                (json.dumps({"v": 1, "op": "stats", "gate": True}) + "\n")
                .encode("utf-8")
            )
            stream.flush()
            assert service.entered.wait(timeout=10)
            stopper = threading.Thread(target=worker.stop)
            stopper.start()
            # The gateway is draining but the parked request must still
            # be answered once it completes — never silently dropped.
            service.release()
            response = json.loads(stream.readline())
            assert response["ok"] is True
            stopper.join(timeout=30)
            assert not stopper.is_alive()
            # After the drain the connection is closed: clean EOF.
            assert stream.readline() == b""
        finally:
            stream.close()
            sock.close()

    def test_stop_twice_is_safe(self, fitted_fixy):
        worker = GatewayWorker(fitted_fixy)
        worker.stop()
        worker.stop()
        assert not worker.thread.is_alive()

    def test_connections_gauge_returns_to_zero(self, fitted_fixy):
        from repro.serving.gateway import _CONNECTIONS

        with GatewayWorker(fitted_fixy) as worker:
            with AuditClient.connect(worker.address) as client:
                client.stats()
                assert _CONNECTIONS.value() >= 1
        assert _CONNECTIONS.value() == 0


# ---------------------------------------------- concurrent byte identity


def _client_ops(client_index: int, op_codes: list[str]) -> list[dict]:
    """A deterministic per-session op sequence from drawn op codes."""
    scene_id = f"ident-{client_index}"
    scene = model_scene(scene_id, n_tracks=3)
    requests = [{"v": 1, "op": "open", "scene": scene.to_dict()}]
    for step, code in enumerate(op_codes):
        if code == "edit":
            requests.append(
                {
                    "v": 1,
                    "op": "edit",
                    "session_id": scene_id,
                    "edit": InsertObservation(
                        f"{scene_id}-t0",
                        make_obs(
                            10 + step, 1.0 + 0.1 * step,
                            source="model", conf=0.9,
                        ),
                    ).to_dict(),
                }
            )
        elif code == "remove":
            requests.append(
                {
                    "v": 1,
                    "op": "edit",
                    "session_id": scene_id,
                    "edit": RemoveTrack(f"{scene_id}-t2").to_dict(),
                }
            )
        elif code == "rank":
            requests.append(
                {
                    "v": 1,
                    "op": "rank",
                    "session_id": scene_id,
                    "kind": "tracks",
                    "top_k": 2,
                }
            )
        elif code == "audit":
            from repro.api import AuditSpec

            requests.append(
                {
                    "v": 1,
                    "op": "audit",
                    "session_id": scene_id,
                    "spec": AuditSpec(kind="tracks", top_k=2).to_dict(),
                }
            )
        elif code == "standing":
            from repro.api import AuditSpec

            requests.append(
                {
                    "v": 1,
                    "op": "subscribe",
                    "session_id": scene_id,
                    "audit_id": f"{scene_id}-watch",
                    "spec": AuditSpec(kind="tracks", top_k=2).to_dict(),
                }
            )
            requests.append(
                {
                    "v": 1,
                    "op": "standing",
                    "session_id": scene_id,
                    "audit_id": f"{scene_id}-watch",
                }
            )
    requests.append({"v": 1, "op": "close", "session_id": scene_id})
    return requests


#: Wall-clock payload fields — everything else must match bit-for-bit.
_VOLATILE_KEYS = ("timings", "maintain_ms")


def _strip_timings(obj):
    if isinstance(obj, dict):
        return {
            k: _strip_timings(v)
            for k, v in obj.items()
            if k not in _VOLATILE_KEYS
        }
    if isinstance(obj, list):
        return [_strip_timings(v) for v in obj]
    return obj


def _run_interleaved(address, per_client_requests):
    """Each client on its own connection+thread: real interleaving."""
    responses = [None] * len(per_client_requests)
    errors = []

    def run(index, requests):
        try:
            sock, stream = _raw_connect(address)
            try:
                responses[index] = [_raw_call(stream, r) for r in requests]
            finally:
                stream.close()
                sock.close()
        except Exception as exc:  # pragma: no cover - surfaced by assert
            errors.append((index, exc))

    threads = [
        threading.Thread(target=run, args=(i, reqs))
        for i, reqs in enumerate(per_client_requests)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors
    return _strip_timings(responses)


class TestConcurrentByteIdentity:
    @settings(max_examples=5, deadline=None)
    @given(
        schedules=st.lists(
            st.lists(
                st.sampled_from(
                    ["edit", "remove", "rank", "audit", "standing"]
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=2,
            max_size=4,
        )
    )
    def test_interleaved_clients_match_threaded_and_serial(
        self, fitted_fixy, schedules
    ):
        """N interleaved clients, mixed audit/edit/standing ops: the
        gateway, the threaded front, and plain serial execution all
        produce identical responses (hypothesis draws the schedule)."""
        per_client = [
            _client_ops(i, codes) for i, codes in enumerate(schedules)
        ]

        def fresh():
            return StreamingService(fitted_fixy, max_sessions=16)

        with GatewayWorker(service=fresh(), max_inflight=3) as worker:
            via_gateway = _run_interleaved(worker.address, per_client)
        threaded = TcpWorker(service=fresh())
        try:
            via_threads = _run_interleaved(threaded.address, per_client)
        finally:
            threaded.stop()
        serial_service = fresh()
        via_serial = _strip_timings(
            [
                [serial_service.handle(request) for request in requests]
                for requests in per_client
            ]
        )
        assert via_gateway == via_serial
        assert via_threads == via_serial
