"""Edit semantics: application, invalidation sets, dict round-trips."""

import pytest

from repro.core.model import Observation, ObservationBundle
from repro.serving import (
    InsertBundle,
    InsertObservation,
    InsertTrack,
    RemoveBundle,
    RemoveObservation,
    RemoveTrack,
    ReplaceObservation,
    edit_from_dict,
)

from tests.core.conftest import make_obs, moving_track, scene_of


@pytest.fixture
def scene():
    return scene_of(
        [moving_track("a", n_frames=4), moving_track("b", n_frames=3, start_x=30.0)],
        scene_id="edits",
    )


class TestApply:
    def test_insert_track(self, scene):
        track = moving_track("c", n_frames=2, start_x=60.0)
        assert InsertTrack(track).apply(scene) == {"c"}
        assert scene.track_by_id("c") is track

    def test_insert_duplicate_track_rejected(self, scene):
        with pytest.raises(ValueError, match="already exists"):
            InsertTrack(moving_track("a", n_frames=2)).apply(scene)

    def test_remove_track(self, scene):
        assert RemoveTrack("a").apply(scene) == {"a"}
        assert [t.track_id for t in scene.tracks] == ["b"]
        with pytest.raises(KeyError):
            RemoveTrack("a").apply(scene)

    def test_insert_bundle(self, scene):
        bundle = ObservationBundle(frame=9, observations=[make_obs(9, 5.0)])
        assert InsertBundle("a", bundle).apply(scene) == {"a"}
        assert scene.track_by_id("a").bundle_at(9) is bundle

    def test_insert_bundle_duplicate_frame_rejected(self, scene):
        bundle = ObservationBundle(frame=0, observations=[make_obs(0, 5.0)])
        with pytest.raises(ValueError):
            InsertBundle("a", bundle).apply(scene)

    def test_remove_bundle(self, scene):
        assert RemoveBundle("a", 1).apply(scene) == {"a"}
        assert scene.track_by_id("a").bundle_at(1) is None
        with pytest.raises(KeyError, match="no bundle at frame"):
            RemoveBundle("a", 1).apply(scene)

    def test_insert_observation_new_frame_creates_bundle(self, scene):
        obs = make_obs(7, 2.0)
        assert InsertObservation("a", obs).apply(scene) == {"a"}
        assert scene.track_by_id("a").bundle_at(7).observations == [obs]

    def test_insert_observation_joins_existing_bundle(self, scene):
        obs = make_obs(0, 0.2, source="model", conf=0.9)
        InsertObservation("a", obs).apply(scene)
        assert obs in scene.track_by_id("a").bundle_at(0).observations

    def test_remove_observation_drops_empty_bundle(self, scene):
        track = scene.track_by_id("a")
        obs = track.bundle_at(2).observations[0]
        assert RemoveObservation("a", obs.obs_id).apply(scene) == {"a"}
        assert track.bundle_at(2) is None

    def test_remove_unknown_observation(self, scene):
        with pytest.raises(KeyError, match="no observation"):
            RemoveObservation("a", "nope").apply(scene)

    def test_replace_observation(self, scene):
        track = scene.track_by_id("a")
        old = track.bundle_at(1).observations[0]
        new = make_obs(1, 99.0)
        assert ReplaceObservation("a", old.obs_id, new).apply(scene) == {"a"}
        assert track.bundle_at(1).observations == [new]

    def test_replace_across_frames_rejected(self, scene):
        old = scene.track_by_id("a").bundle_at(1).observations[0]
        with pytest.raises(ValueError, match="use RemoveObservation"):
            ReplaceObservation("a", old.obs_id, make_obs(2, 1.0)).apply(scene)

    def test_unknown_track(self, scene):
        with pytest.raises(KeyError, match="no track"):
            InsertObservation("zz", make_obs(0, 0.0)).apply(scene)


class TestDictRoundTrip:
    @pytest.mark.parametrize(
        "edit",
        [
            InsertTrack(moving_track("c", n_frames=2)),
            RemoveTrack("a"),
            InsertBundle(
                "a", ObservationBundle(frame=8, observations=[make_obs(8, 1.0)])
            ),
            RemoveBundle("a", 1),
            InsertObservation("a", make_obs(9, 2.0)),
            RemoveObservation("a", "obs-x"),
            ReplaceObservation("a", "obs-x", make_obs(1, 3.0)),
        ],
        ids=lambda e: e.op,
    )
    def test_roundtrip_applies_identically(self, edit):
        import json

        payload = edit.to_dict()
        json.dumps(payload)  # must be JSON-safe
        clone = edit_from_dict(payload)
        assert type(clone) is type(edit)
        assert clone.op == edit.op

    def test_roundtrip_preserves_application(self, scene):
        obs = make_obs(7, 2.0)
        edit = edit_from_dict(InsertObservation("a", obs).to_dict())
        edit.apply(scene)
        restored = scene.track_by_id("a").bundle_at(7).observations[0]
        assert restored == obs

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unknown edit op"):
            edit_from_dict({"op": "teleport"})
