"""Standing audits: incremental top-k ≡ full rescore (ISSUE 6).

The spliced full rescore (``session.rank``) is the executable
reference; these tests drive randomized edit sequences through a
session with :class:`~repro.serving.standing.StandingAudit`
subscriptions attached and assert the incrementally maintained top-k
stays **byte-identical** (``StandingAudit.verify`` compares raw
float64 bytes and item identity) — including removals that evict
top-k members and score ties straddling the k boundary.
"""

import pytest
from hypothesis import given, settings, strategies as st

import numpy as np

from repro.api import AuditSpec, FilterSpec
from repro.core import FeatureDistributionLearner, default_features
from repro.serving import (
    InsertTrack,
    RemoveTrack,
    SceneSession,
    SessionStore,
    StreamingService,
)

from tests.core.conftest import make_obs, make_track, moving_track, scene_of
from tests.core.test_columnar import random_scene
from tests.serving.conftest import model_scene
from tests.serving.test_session import random_edit


@pytest.fixture(scope="module")
def learned(serving_training_scenes):
    return FeatureDistributionLearner(default_features()).fit(
        serving_training_scenes
    )


class TestRandomizedEditSequences:
    """Property suite: any edit stream, any k, byte-identical top-k."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_incremental_topk_matches_full_rescore(self, seed, learned):
        rng = np.random.default_rng(seed)
        scene = random_scene(seed, scene_id=f"standing-{seed}")
        session = SceneSession(scene, default_features(), learned=learned)
        audits = [
            session.subscribe(AuditSpec(kind="tracks", top_k=3), audit_id="k3"),
            session.subscribe(AuditSpec(kind="tracks"), audit_id="all"),
            session.subscribe(
                AuditSpec(kind="observations", top_k=5), audit_id="obs5"
            ),
        ]
        counter = [0]
        for _ in range(int(rng.integers(2, 7))):
            session.apply(random_edit(rng, scene, counter))
            for audit in audits:
                assert audit.verify()
        session.verify(tol=1e-9)  # also re-verifies every subscription

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_bounded_k_survives_churn(self, seed, learned):
        """k=1 maximizes eviction/refill traffic through the heap."""
        rng = np.random.default_rng(seed + 7)
        scene = random_scene(seed, scene_id=f"churn-{seed}")
        session = SceneSession(scene, default_features(), learned=learned)
        audit = session.subscribe(AuditSpec(kind="tracks", top_k=1))
        counter = [0]
        for _ in range(6):
            session.apply(random_edit(rng, scene, counter))
            assert audit.verify()


class TestDirectedStanding:
    def test_removal_evicts_topk_member(self, learned):
        # Enough tracks that the candidate set exceeds the shrink bound
        # (max(2k, k+8)) and most items get demoted to the overflow
        # heap; removing a top-k member must then refill from it.
        scene = scene_of(
            [moving_track(f"t{i}", n_frames=4, start_x=20.0 * i,
                          source="model", conf=0.8,
                          jitter=0.05 * (i + 1), seed=i)
             for i in range(14)],
            scene_id="evict",
        )
        session = SceneSession(scene, default_features(), learned=learned)
        audit = session.subscribe(AuditSpec(kind="tracks", top_k=2))
        top = audit.results()
        assert len(top) == 2
        assert audit.stats.heap_demotions > 0
        refills_before = audit.stats.heap_refills
        session.apply(RemoveTrack(top[0].track_id))
        promoted = audit.results()
        assert len(promoted) == 2
        assert top[0].track_id not in {s.track_id for s in promoted}
        # The replacement came out of the overflow heap, not a rescan.
        assert audit.stats.heap_refills > refills_before
        assert audit.verify()

    def test_ties_at_k_boundary(self, learned):
        """Identical geometry → bit-identical scores; the k cut lands
        inside the tie group and must reproduce the reference's
        scene-order tie-break exactly."""
        twins = [
            moving_track(f"twin-{i}", n_frames=4, start_x=0.0,
                         source="model", conf=0.8, jitter=0.0)
            for i in range(3)
        ]
        scene = scene_of(
            twins + [moving_track("odd", n_frames=6, start_x=40.0,
                                  source="model", conf=0.8,
                                  jitter=0.4, seed=9)],
            scene_id="ties",
        )
        session = SceneSession(scene, default_features(), learned=learned)
        audit = session.subscribe(AuditSpec(kind="tracks", top_k=2))
        scores = {s.track_id: s.score for s in session.rank_tracks()}
        assert scores["twin-0"] == scores["twin-1"] == scores["twin-2"]
        assert audit.verify()
        # Removing one tied member promotes the next twin in scene
        # order — still byte-identical to the reference.
        first = audit.results()[0].track_id
        session.apply(RemoveTrack(first))
        assert audit.verify()
        # A new identical twin appends last in scene order, extending
        # the tie group at the boundary.
        session.apply(
            InsertTrack(
                moving_track("twin-late", n_frames=4, start_x=0.0,
                             source="model", conf=0.8, jitter=0.0)
            )
        )
        assert audit.verify()

    def test_insertion_enters_topk(self, learned):
        scene = scene_of(
            [moving_track(f"m{i}", n_frames=5, start_x=15.0 * i,
                          source="model", conf=0.8, jitter=0.5, seed=40 + i)
             for i in range(4)],
            scene_id="enter",
        )
        session = SceneSession(scene, default_features(), learned=learned)
        audit = session.subscribe(AuditSpec(kind="tracks", top_k=3))
        session.apply(
            InsertTrack(moving_track("clean", n_frames=6, start_x=80.0,
                                     source="model", conf=0.8, jitter=0.0))
        )
        assert audit.verify()

    def test_filtered_standing_audit(self, fitted_fixy):
        scene = model_scene("filt", n_tracks=4)
        session = fitted_fixy.session(scene)
        audit = session.subscribe(
            AuditSpec(
                kind="tracks", top_k=2,
                filters=FilterSpec(track_has_model=True, track_has_human=False),
            )
        )
        assert len(audit.results()) == 2
        assert audit.verify()
        session.apply(RemoveTrack("filt-t0"))
        assert audit.verify()

    def test_duplicate_audit_id_rejected(self, learned):
        scene = scene_of([moving_track("a", n_frames=3)], scene_id="dup-id")
        session = SceneSession(scene, default_features(), learned=learned)
        session.subscribe(AuditSpec(kind="tracks"), audit_id="same")
        with pytest.raises(ValueError, match="already subscribed"):
            session.subscribe(AuditSpec(kind="bundles"), audit_id="same")

    def test_max_standing_limit(self, learned):
        scene = scene_of([moving_track("a", n_frames=3)], scene_id="limit")
        session = SceneSession(
            scene, default_features(), learned=learned, max_standing=1
        )
        session.subscribe(AuditSpec(kind="tracks"))
        with pytest.raises(RuntimeError, match="standing-audit limit"):
            session.subscribe(AuditSpec(kind="bundles"))

    def test_unsubscribe_and_lookup(self, learned):
        scene = scene_of([moving_track("a", n_frames=3)], scene_id="unsub")
        session = SceneSession(scene, default_features(), learned=learned)
        audit = session.subscribe(AuditSpec(kind="tracks"), audit_id="x")
        assert session.standing_audit("x") is audit
        assert session.unsubscribe("x") is True
        assert session.unsubscribe("x") is False
        with pytest.raises(KeyError, match="no standing audit"):
            session.standing_audit("x")

    def test_failed_edit_retries_before_serving(self, learned):
        """A failed recompile must not leave the standing top-k stale:
        queries refuse until the bad edit is undone, then the retried
        rescore catches the audit up."""
        scene = scene_of([moving_track("a", n_frames=4)], scene_id="retry")
        session = SceneSession(scene, default_features(), learned=learned)
        audit = session.subscribe(AuditSpec(kind="tracks", top_k=1))
        stolen = scene.track_by_id("a").observations[0]
        with pytest.raises(ValueError, match="already exists"):
            session.apply(InsertTrack(make_track("thief", {stolen.frame: [stolen]})))
        with pytest.raises(ValueError, match="already exists"):
            audit.results()  # refuses, not stale results
        session.apply(RemoveTrack("thief"))
        assert audit.verify()

    def test_stats_count_only_changed_tracks(self, fitted_fixy):
        from repro.serving import ReplaceObservation

        scene = model_scene("delta", n_tracks=4)
        session = fitted_fixy.session(scene)
        audit = session.subscribe(AuditSpec(kind="tracks", top_k=2))
        assert audit.stats.tracks_rescored == 4  # initial full scoring
        obs = scene.track_by_id("delta-t1").observations[0]
        session.apply(
            ReplaceObservation(
                "delta-t1", obs.obs_id,
                make_obs(obs.frame, obs.box.x + 1.0, source="model", conf=0.8),
            )
        )
        assert audit.stats.edits_seen == 1
        assert audit.stats.tracks_rescored == 5  # only the edited track
        assert audit.last_rescored == 1
        assert audit.verify()


class TestServiceOps:
    @pytest.fixture
    def service(self, fitted_fixy):
        return StreamingService(fitted_fixy, max_sessions=4)

    def test_subscribe_edit_standing_unsubscribe(self, service):
        from repro.serving import InsertObservation

        scene = model_scene("ops", n_tracks=3)
        assert service.handle(
            {"op": "open", "scene": scene.to_dict(), "v": 2}
        )["ok"]
        sub = service.handle(
            {
                "op": "subscribe", "session_id": "ops", "v": 2,
                "spec": AuditSpec(kind="tracks", top_k=2).to_dict(),
                "audit_id": "watch",
            }
        )
        assert sub["ok"] and sub["audit_id"] == "watch"
        assert len(sub["results"]) == 2

        edit = InsertObservation(
            "ops-t0", make_obs(9, 1.0, source="model", conf=0.9)
        )
        edited = service.handle(
            {"op": "edit", "session_id": "ops", "edit": edit.to_dict(), "v": 2}
        )
        assert edited["ok"] and edited["changed"] == ["ops-t0"]
        standing = edited["standing"]["watch"]
        assert standing["rescored"] == 1
        ranked = service.handle(
            {"op": "rank", "session_id": "ops", "kind": "tracks",
             "top_k": 2, "v": 2}
        )
        assert standing["results"] == ranked["results"]

        polled = service.handle(
            {"op": "standing", "session_id": "ops", "audit_id": "watch",
             "v": 2}
        )
        assert polled["ok"] and polled["results"] == ranked["results"]
        assert polled["stats"]["edits_seen"] == 1

        # Opt out of the piggybacked results.
        quiet = service.handle(
            {"op": "edit", "session_id": "ops",
             "edit": RemoveTrack("ops-t2").to_dict(),
             "standing": False, "v": 2}
        )
        assert quiet["ok"] and "standing" not in quiet

        assert service.handle(
            {"op": "unsubscribe", "session_id": "ops", "audit_id": "watch",
             "v": 2}
        )["unsubscribed"] is True
        gone = service.handle(
            {"op": "standing", "session_id": "ops", "audit_id": "watch",
             "v": 2}
        )
        assert gone["ok"] is False
        assert gone["error"]["code"] == "unknown_subscription"

    def test_subscribe_error_paths(self, service):
        missing = service.handle(
            {"op": "subscribe", "session_id": "ghost", "v": 2,
             "spec": AuditSpec(kind="tracks").to_dict()}
        )
        assert missing["ok"] is False
        assert missing["error"]["code"] == "unknown_session"

        service.handle(
            {"op": "open", "scene": model_scene("bad").to_dict(), "v": 2}
        )
        bad = service.handle(
            {"op": "subscribe", "session_id": "bad", "v": 2,
             "spec": {"kind": "galaxies"}}
        )
        assert bad["ok"] is False
        assert bad["error"]["code"] == "unknown_rank_kind"

    def test_standing_limit_is_bad_request(self, fitted_fixy):
        service = StreamingService(fitted_fixy, max_sessions=2, max_standing=1)
        service.handle(
            {"op": "open", "scene": model_scene("full").to_dict(), "v": 2}
        )
        spec = AuditSpec(kind="tracks").to_dict()
        assert service.handle(
            {"op": "subscribe", "session_id": "full", "spec": spec, "v": 2}
        )["ok"]
        refused = service.handle(
            {"op": "subscribe", "session_id": "full", "spec": spec,
             "audit_id": "two", "v": 2}
        )
        assert refused["ok"] is False
        assert refused["error"]["code"] == "bad_request"
        assert "standing-audit limit" in refused["error"]["message"]

    def test_hello_advertises_standing_ops(self, service):
        hello = service.handle({"op": "hello", "v": 2})
        assert {"subscribe", "unsubscribe", "standing"} <= set(hello["ops"])

    def test_store_stats_count_standing(self, fitted_fixy):
        store = SessionStore(fitted_fixy, max_sessions=4)
        store.open(model_scene("sa"))
        store.subscribe("sa", AuditSpec(kind="tracks", top_k=2))
        stats = store.stats()
        assert stats["standing_audits"] == 1
        assert stats["standing_tracks_rescored"] == 4
