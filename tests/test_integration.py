"""Cross-module integration tests: determinism and end-to-end coherence."""

import math

import pytest

from repro.core import (
    Fixy,
    MissingTrackFinder,
    Scorer,
    compile_scene,
    default_features,
)
from repro.datasets import SYNTHETIC_INTERNAL, build_dataset
from repro.factorgraph import log_score


class TestDeterminism:
    def test_full_pipeline_bit_identical(self):
        """Same profile, same seeds → identical rankings, run to run."""

        def run():
            dataset = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=2,
                                    n_val_scenes=2)
            finder = MissingTrackFinder().fit(dataset.train_scenes)
            out = []
            for ls in dataset.val_scenes:
                for scored in finder.rank(ls.scene, top_k=10):
                    out.append((scored.scene_id, scored.track_id, scored.score))
            return out

        assert run() == run()


class TestScorerAgreesWithFactorGraph:
    def test_track_score_equals_normalized_graph_log_score(self):
        """The Scorer's component score must equal the factor graph's
        evidence log-score over the component's factors, divided by the
        factor count — Eq. 2 + §6 normalization."""
        dataset = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=2,
                                n_val_scenes=1)
        fixy = Fixy(default_features()).fit(dataset.train_scenes)
        scene = dataset.val_scenes[0].scene
        compiled = fixy.compile(scene)
        scorer = Scorer(compiled)

        checked = 0
        for track in scene.tracks:
            score = scorer.score_track(track)
            if score is None or score == -math.inf:
                continue
            factor_names = compiled.factors_of_observations(track.observations)
            total = sum(
                math.log(max(compiled.factors[name].value, 1e-12))
                for name in factor_names
            )
            assert score == pytest.approx(total / len(factor_names))
            checked += 1
        assert checked > 0

    def test_whole_graph_log_score_is_sum_over_factors(self):
        """repro.factorgraph.log_score over a compiled scene equals the
        unnormalized sum of all factor log-potentials (when none is 0)."""
        dataset = build_dataset(SYNTHETIC_INTERNAL, n_train_scenes=2,
                                n_val_scenes=1)
        features = [f for f in default_features() if f.name != "model_only"]
        fixy = Fixy(features).fit(dataset.train_scenes)
        scene = dataset.val_scenes[0].scene
        compiled = fixy.compile(scene)

        total = log_score(compiled.graph, {})
        if any(f.value == 0.0 for f in compiled.factors.values()):
            # A zeroed potential (e.g. the count filter on a short track)
            # makes the whole-scene evidence impossible.
            assert total == -math.inf
        else:
            expected = sum(
                math.log(max(f.value, 1e-12)) for f in compiled.factors.values()
            )
            assert total == pytest.approx(expected)


class TestLayering:
    def test_core_has_no_simulator_dependencies(self):
        """repro.core must not import the simulator packages (a user with
        real data should not need them)."""
        import subprocess
        import sys

        code = (
            "import sys\n"
            "import repro.core\n"
            "bad = [m for m in sys.modules if m.startswith(('repro.datagen',"
            " 'repro.labelers', 'repro.datasets', 'repro.eval'))]\n"
            "assert not bad, bad\n"
            "print('clean')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr
        assert "clean" in result.stdout
