"""Figure 2: compiling a scene into its factor graph.

The paper's Figure 2 shows the compiled graph for one track: variable
nodes per observation, unary feature factors, bundle factors, and
transition factors. This bench times full-scene compilation and asserts
the compiled structure matches the schematic.
"""

from repro.core import Fixy, default_features
from repro.datasets import SYNTHETIC_INTERNAL
from repro.eval import get_dataset


def test_compile_scene(benchmark):
    dataset = get_dataset(SYNTHETIC_INTERNAL)
    fixy = Fixy(default_features()).fit(dataset.train_scenes)
    scene = dataset.val_scenes[0].scene

    compiled = benchmark(fixy.compile, scene)

    # Figure 2 structure: one variable per observation, bipartite edges
    # from each feature distribution to the observations it covers.
    assert compiled.graph.n_variables == len(scene.observations)
    assert compiled.graph.n_factors == len(compiled.factors)
    compiled.graph.validate()
    kinds = {f.feature_name for f in compiled.factors.values()}
    assert {"volume", "velocity", "count"} <= kinds
