"""Serving-layer benchmarks: delta recompilation and process sharding (ISSUE 2).

Asserts the streaming serving layer's acceptance floors:

- editing 1 of ≥25 tracks through a
  :class:`~repro.serving.session.SceneSession` (one-track segment
  recompile + array splice) must be **≥5×** faster than a from-scratch
  ``compile_scene`` of the same post-edit scene — and the spliced state
  must still verify against the reference compile;
- :class:`~repro.serving.sharded.ShardedRanker` (ProcessPoolExecutor,
  ``Scene.to_dict`` transport, per-worker caches) must produce rankings
  **byte-identical** to the in-process thread-pool path.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_delta_recompile.py --benchmark-only -s
"""

from repro.eval.serving_perf import (
    delta_vs_full,
    render_serving_report,
    sharding_report,
)


def test_delta_recompile_speedup_at_25_tracks(benchmark):
    report = benchmark.pedantic(
        delta_vs_full,
        kwargs={"n_tracks": 25, "repeats": 5},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_serving_report(report, None))
    assert report["n_tracks"] >= 25
    assert report["speedup"] >= 5.0


def test_sharded_ranking_byte_identical_to_threaded(benchmark):
    report = benchmark.pedantic(
        sharding_report,
        kwargs={"n_scenes": 4, "n_objects": 20, "worker_counts": (1, 2)},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_serving_report(None, report))
    assert report["byte_identical"]
    assert all(case["byte_identical"] for case in report["process_cases"])
