"""Scaling sweep: Fixy runtime vs scene density.

Not a paper table — this is the workload-generator parameter sweep that
backs the §8.1 runtime claim: per-scene latency must stay within the
5-second budget as traffic density grows well past the datasets'
defaults.
"""

import time

import pytest

from repro.core import MissingTrackFinder
from repro.datagen import SceneConfig, SceneGenerator
from repro.datasets import SYNTHETIC_INTERNAL, build_labeled_scene
from repro.eval import get_dataset

DENSITIES = [10, 25, 50]


@pytest.mark.parametrize("n_objects", DENSITIES)
def test_rank_time_scales_with_density(benchmark, n_objects):
    config = SceneConfig(n_objects_range=(n_objects, n_objects))
    world = SceneGenerator(config).generate(f"scale-{n_objects}", seed=n_objects)
    labeled = build_labeled_scene(
        world, SYNTHETIC_INTERNAL.vendor, SYNTHETIC_INTERNAL.detector, seed=1
    )
    dataset = get_dataset(SYNTHETIC_INTERNAL)
    finder = MissingTrackFinder().fit(dataset.train_scenes)

    benchmark(finder.rank, labeled.scene)
    # Even at ~3x the evaluation density the paper's budget holds.
    assert benchmark.stats["mean"] < 5.0
