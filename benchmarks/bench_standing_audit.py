"""Standing-audit benchmarks: incremental top-k maintenance (ISSUE 6).

Asserts the standing-audit acceptance floors:

- streaming edits into a :class:`~repro.serving.session.SceneSession`
  with a :class:`~repro.serving.standing.StandingAudit` subscribed, the
  amortized per-edit top-k maintenance (rescore only the invalidated
  track, re-heap in O(changed·log k)) must be **≥5×** faster than a
  full rescore (``session.rank``: splice, scorer rebuild, score + sort
  every track) at ≥100 tracks;
- the incrementally maintained top-k must be **byte-identical** to the
  full rescore after every single edit, and ``StandingAudit.verify()``
  must hold at the end of the stream.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_standing_audit.py --benchmark-only -s
"""

from repro.eval.serving_perf import render_serving_report, standing_report


def test_standing_maintenance_speedup_at_100_tracks(benchmark):
    report = benchmark.pedantic(
        standing_report,
        kwargs={"n_tracks": 100, "n_edits": 40, "top_k": 10},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_serving_report(None, None, standing=report))
    assert report["n_tracks"] >= 100
    assert report["byte_identical"]
    assert report["speedup"] >= 5.0
    # Amortized O(changed): each edit touches one track, so the audit
    # must not be rescoring the whole scene behind the scenes.
    assert report["tracks_rescored_per_edit"] <= 2.0
