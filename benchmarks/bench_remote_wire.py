"""Remote wire benchmarks: v2 frames must make workers scale (ISSUE 5).

The PR-4 distributed backend was serialization-bound: warm remote
throughput was 13.7 scenes/s vs 283 inline, and 2 workers were *slower*
than 1 (12.5 scenes/s) because the coordinator re-encoded every scene
as line-JSON on every audit (committed in ``BENCH_scaling.json``
``serving.remote``). This bench asserts the v2 acceptance floors at
that same committed workload (6 scenes x 20 objects):

- warm 2-worker throughput **strictly above** 1-worker on machines
  with >1 CPU (workers now scale instead of losing to coordinator-side
  serialization). On a single-CPU box N workers time-share one core,
  so the ceiling is parity — there the bench asserts 2 workers hold a
  tight parity band instead of regressing the way PR-4 did;
- warm 2-worker throughput **>= 5x** the committed 13.7 scenes/s
  baseline;
- the warm audit ships **ids only**: every scene is a worker
  scene-cache hit and warm bytes-on-wire collapse vs cold;
- rankings stay byte-identical to ``inline`` throughout.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_remote_wire.py --benchmark-only -s
"""

from repro.eval.serving_perf import (
    available_cpus,
    remote_report,
    render_serving_report,
)

#: The committed PR-4 warm remote throughput (scenes/s) at this
#: workload — the "serialization-bound" baseline v2 must beat 5x.
PR4_WARM_SCENES_PER_S = 13.7


def test_remote_v2_scales_with_workers(benchmark):
    report = benchmark.pedantic(
        remote_report,
        kwargs={
            "n_scenes": 6,
            "n_objects": 20,
            "worker_counts": (1, 2),
            "repeats": 3,
            "wire": "v2",
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + render_serving_report(None, None, report))
    assert report["byte_identical"]
    one, two = report["worker_cases"]
    assert one["n_workers"] == 1 and two["n_workers"] == 2

    if available_cpus() > 1:
        # Real cores to scale onto: 2 workers beat 1 (PR-4 had them
        # *losing*: 12.5 vs 13.7 scenes/s).
        assert two["scenes_per_s"] > one["scenes_per_s"]
    else:
        # One core: N workers time-share it, so parity is the physical
        # ceiling. Hold a tight band — the PR-4 failure mode this PR
        # removes was 2 workers burning coordinator CPU on re-encoding,
        # which this band would catch if it came back.
        assert two["scenes_per_s"] >= 0.7 * one["scenes_per_s"]
    # Either way both widths clear the 5x floor over the committed v1
    # baseline by orders of magnitude.
    assert one["scenes_per_s"] >= 5 * PR4_WARM_SCENES_PER_S
    assert two["scenes_per_s"] >= 5 * PR4_WARM_SCENES_PER_S

    for case in (one, two):
        # Warm audits resolve every scene from the worker cache...
        assert case["scene_cache_hits"] == report["n_scenes"]
        assert case["scene_cache_misses"] == 0
        # ...so the wire carries ids, not bodies.
        assert case["warm_bytes_sent"] < case["cold_bytes_sent"] / 5
