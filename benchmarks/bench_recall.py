"""§8.2 recall: the exhaustively-audited ("vetted") scene.

Paper: the vetted 15-second internal scene contained 24 missing tracks;
Fixy recalled 75% (18) within the top-10 ranked errors per class.

Shape targets: a comparably dense bad scene (≥15 missing tracks) with
recall ≥ 50%.
"""

from repro.eval import recall_experiment


def test_recall(run_once):
    result = run_once(recall_experiment)
    assert result.n_missing_tracks >= 15
    assert result.recall >= 0.5
