"""§8.1 runtime: Fixy on one 15-second scene.

Paper: "Fixy executes in under five seconds on a single CPU core for
processing a 15 second scene of data."

This is a true timing benchmark (multiple rounds) of the online phase:
compile the scene's factor graph and rank every track.
"""

from repro.core import MissingTrackFinder
from repro.datasets import SYNTHETIC_INTERNAL
from repro.eval import get_dataset


def test_runtime_rank_scene(benchmark):
    dataset = get_dataset(SYNTHETIC_INTERNAL)
    finder = MissingTrackFinder().fit(dataset.train_scenes)
    scene = dataset.val_scenes[0].scene

    ranked = benchmark(finder.rank, scene)
    assert benchmark.stats["mean"] < 5.0  # the paper's budget
    assert isinstance(ranked, list)
