"""A/B benchmark: columnar fast path vs scalar reference (ISSUE 1).

Verifies the tentpole target of the columnar compilation refactor:
compile+rank through the vectorized pipeline (columnar extraction,
batched densities over warmed grids, array scoring) must be at least 5x
faster than the scalar reference at 100 tracks per scene — while the
two paths rank identically (score agreement is property-tested in
``tests/core/test_columnar.py``).
"""

from repro.eval.perf import ab_compile_rank, render_report


def test_vectorized_speedup_at_100_tracks(benchmark):
    report = benchmark.pedantic(
        ab_compile_rank,
        kwargs={"densities": (100,), "repeats": 3},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_report(report))
    case = report["cases"][0]
    assert case["n_tracks"] >= 100
    assert case["speedup"] >= 5.0


def test_vectorized_speedup_scaling(benchmark):
    """Speedup should hold (and grow) across the density sweep."""
    report = benchmark.pedantic(
        ab_compile_rank,
        kwargs={"densities": (10, 50, 100), "repeats": 3},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_report(report))
    speedups = [case["speedup"] for case in report["cases"]]
    assert all(s >= 2.0 for s in speedups)
    # Densest scene benefits the most.
    assert speedups[-1] >= max(speedups[0] * 0.5, 5.0)
