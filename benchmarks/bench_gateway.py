#!/usr/bin/env python
"""Async-gateway benchmark: sustained load, shedding, coalescing floors.

Drives :func:`repro.eval.gateway_perf.gateway_report` and asserts the
acceptance floors of the asyncio serving front:

- **sustained**: every request from the client fleet is answered — no
  hangs, no silently dropped connections — and p99 stays bounded;
- **shed**: once the admission window (``max_inflight + max_queue``)
  is exceeded, overflow is refused with the *typed* ``overloaded``
  protocol code, and every burst request still gets a response;
- **coalesce**: a concurrent burst of identical audits against a cold
  scene shares one compile — ≥50% attach to the in-flight future and
  all responses carry the identical body;
- **byte identity**: a mixed op sequence through the gateway matches
  the threaded TCP front byte-for-byte (wall-clock timings stripped).

Run the full fleet (≥1k concurrent clients) or the CI smoke::

    PYTHONPATH=src python benchmarks/bench_gateway.py
    PYTHONPATH=src python benchmarks/bench_gateway.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients", type=int, default=1000,
        help="concurrent closed-loop clients in the sustained phase "
        "(default 1000 — the ≥1k floor)",
    )
    parser.add_argument(
        "--requests-per-client", type=int, default=2,
        help="requests each client issues back-to-back (default 2)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=4,
        help="gateway executor width for the sustained phase (default 4)",
    )
    parser.add_argument(
        "--p99-budget-ms", type=float, default=30_000.0,
        help="sustained-phase p99 ceiling in ms; closed-loop queueing "
        "behind max_inflight dominates, so the budget scales with the "
        "fleet (default 30000)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the raw report JSON here",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast sanity mode (small fleet, same floors minus the "
        "1k-client scale) — what CI runs on every push",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.clients = min(args.clients, 96)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.eval.gateway_perf import gateway_report, render_gateway_report

    report = gateway_report(
        n_clients=args.clients,
        requests_per_client=args.requests_per_client,
        max_inflight=args.max_inflight,
    )
    print(render_gateway_report(report))
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2), encoding="utf-8"
        )
        print(f"wrote {args.json}")

    failures = []

    def check(ok: bool, message: str) -> None:
        if not ok:
            failures.append(message)

    sustained = report["sustained"]
    if not args.smoke:
        check(
            report["n_clients"] >= 1000,
            f"sustained fleet {report['n_clients']} < 1000 clients",
        )
    check(
        sustained["all_answered"],
        f"sustained dropped requests: {sustained['answered']}"
        f"/{sustained['requests_sent']} answered, "
        f"{sustained['connections_dropped']} connections dropped",
    )
    check(
        sustained["errors"] == 0,
        f"sustained saw {sustained['errors']} error responses",
    )
    check(
        sustained["p99_ms"] is not None
        and sustained["p99_ms"] <= args.p99_budget_ms,
        f"sustained p99 {sustained['p99_ms']} ms over the "
        f"{args.p99_budget_ms} ms budget",
    )

    shed = report["shed"]
    check(
        shed["all_answered"],
        f"shed phase dropped requests: {shed['answered']}/{shed['burst']}",
    )
    check(shed["shed"] > 0, "shed phase never shed — admission untested")
    check(
        shed["typed_overloaded"],
        "shed responses were not all typed `overloaded` errors",
    )

    coalesce = report["coalesce"]
    check(
        coalesce["ok"] == coalesce["burst"],
        f"coalesce burst not fully served: {coalesce['ok']}"
        f"/{coalesce['burst']}",
    )
    check(
        coalesce["hit_ratio"] is not None and coalesce["hit_ratio"] >= 0.5,
        f"coalesce hit ratio {coalesce['hit_ratio']} < 0.5",
    )
    check(
        coalesce["identical_bodies"],
        "coalesced responses were not identical",
    )

    check(
        report["byte_identity"]["byte_identical"],
        "gateway responses diverged from the threaded front",
    )

    if failures:
        for failure in failures:
            print(f"FLOOR VIOLATED: {failure}", file=sys.stderr)
        return 1
    print("all gateway floors hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
