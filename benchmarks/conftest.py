"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at full
size (DESIGN.md §4 maps experiment → bench). Experiments are expensive,
so they run once per benchmark (``rounds=1``) via :func:`run_once`, and
the synthetic datasets are memoized process-wide by
:func:`repro.eval.get_dataset`.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer and echo
    its text rendering (shown with ``-s``; also asserted by each bench)."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        text = (
            "\n\n".join(r.to_text() for r in result)
            if isinstance(result, list)
            else result.to_text()
        )
        print("\n" + text)
        return result

    return _run
