"""Figures 4/5, 6/7, and 9: qualitative case studies as score orderings.

- Figure 4 vs 5: the consistent (occluded) motorcycle track scores above
  the spurious track.
- Figure 6 vs 7: the consistent missing-observation bundle is scored and
  ranked; the volume-inconsistent one scores low.
- Figure 9: the coherent ghost is invisible to appear/flicker/multibox
  but ranked #1 by the model-error finder.
"""

from repro.eval import figure_case_studies


def test_figure_case_studies(run_once):
    studies = {r.name: r for r in run_once(figure_case_studies)}

    fig45 = dict(studies["Figure 4 vs 5"].values)
    assert fig45["occluded motorcycle score"] > fig45["spurious track score"]

    fig9 = dict(studies["Figure 9"].values)
    assert fig9["flagged by appear/flicker/multibox"] == 0.0
    assert fig9["Fixy rank of ghost (1 = top)"] == 1.0
