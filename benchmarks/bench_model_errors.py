"""§8.4: novel ML model prediction errors.

Paper: after excluding errors found by the appear/flicker/multibox
assertions, Fixy achieved precision@10 of 82% vs 42% for uncertainty
sampling, and surfaced errors with model confidence as high as 95%.

Shape targets: Fixy strictly beats uncertainty sampling, and at least
one found error carries confidence ≥ 0.9.
"""

from repro.eval import model_errors_experiment


def test_model_errors(run_once):
    result = run_once(model_errors_experiment)
    assert result.fixy_precision_at_10 > result.uncertainty_precision_at_10
    assert result.max_confidence_of_found_error >= 0.9
    assert result.n_high_conf_errors_found > 0
