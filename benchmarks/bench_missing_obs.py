"""§8.3: missing observations within human-labeled tracks.

Paper: a single such instance existed across both datasets and Fixy
ranked it at the top. Our vendor skips frames more often so the statistic
is meaningful; the analogous claim is that skipped frames rank above the
clean candidates.

Shape targets: ≥ 60% of instances rank above every clean candidate and
the mean adjusted rank stays below 3.
"""

from repro.eval import missing_observation_experiment


def test_missing_observation(run_once):
    result = run_once(missing_observation_experiment)
    assert result.n_instances > 0
    assert result.fraction_rank_1 >= 0.6
    assert result.mean_adjusted_rank < 3.0
