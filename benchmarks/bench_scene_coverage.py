"""§8.2 scene coverage on the Lyft-like dataset.

Paper: errors were found in 32 of 46 Lyft validation scenes, and "LOA
found errors in 100% of the scenes with errors in the top 10 ranked
errors".

Shape target: ≥ 90% of error scenes have a true error in Fixy's top 10.
(Our noisy vendor leaves errors in nearly every scene, so the
scenes-with-errors count is higher than the paper's 32.)
"""

from repro.eval import scene_coverage


def test_scene_coverage(run_once):
    result = run_once(scene_coverage)
    assert result.n_scenes == 46
    assert result.n_scenes_with_errors > 0
    assert result.coverage >= 0.9
