"""Ablations over the design choices DESIGN.md calls out.

1. **Transition-consistency features** (`volume_ratio`, `yaw_rate`): the
   extension features that catch Figure-9-style coherent ghosts. Ablating
   them should not *improve* model-error precision.
2. **Class-conditional volume** (Table 2) vs a pooled volume
   distribution: class conditioning is what lets a truck-sized "car" look
   anomalous.
3. **Transition volume consistency** (`volume_ratio`): separates the
   Figure 6 vs 7 bundles that per-observation volume/velocity alone
   cannot — the Figure 7 box is a perfectly typical box *of its own
   class*, and only the volume jump against its track neighbors gives
   it away.
"""

import numpy as np

from repro.association import TrackBuilder
from repro.core import (
    ClassAgreementFeature,
    VolumeRatioFeature,
    CountFeature,
    Fixy,
    InvertAOF,
    MissingObservationFinder,
    ModelErrorFinder,
    TrackLengthFeature,
    VelocityFeature,
    VolumeFeature,
)
from repro.datasets import SYNTHETIC_LYFT, SYNTHETIC_INTERNAL
from repro.eval import get_dataset, precision_at_k


def _model_error_precision(finder, dataset, n_scenes=3):
    builder = TrackBuilder()
    precisions = []
    for ls in dataset.val_scenes[:n_scenes]:
        scene = builder.build_scene(
            ls.scene_id + "-abl", ls.world.dt, list(ls.model_observations)
        )
        scene.metadata["ego_poses"] = list(ls.world.ego_poses)
        auditor = ls.auditor()
        ranked = finder.rank(scene, top_k=10)
        hits = [auditor.audit_model_error(s.item).is_error for s in ranked]
        precisions.append(precision_at_k(hits, 10))
    return float(np.mean(precisions))


def test_transition_consistency_features(benchmark):
    """Full §8.4 feature set vs Table-2-only (no volume_ratio/yaw_rate)."""
    dataset = get_dataset(SYNTHETIC_LYFT)

    def run():
        full = ModelErrorFinder().fit(dataset.train_scenes)
        reduced_features = [
            VolumeFeature(), VelocityFeature(), CountFeature(), TrackLengthFeature(),
        ]
        reduced = ModelErrorFinder(features=reduced_features).fit(dataset.train_scenes)
        return (
            _model_error_precision(full, dataset),
            _model_error_precision(reduced, dataset),
        )

    full_p, reduced_p = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nmodel-error P@10: full features {full_p:.0%}, "
          f"without transition-consistency {reduced_p:.0%}")
    # The extension features must not hurt, and both configurations must
    # beat an empty ranking.
    assert full_p >= reduced_p - 0.05
    assert full_p > 0.3


def test_class_conditional_volume(benchmark):
    """Class-conditional volume vs pooled: conditioning must separate a
    truck-sized box labeled as a car."""
    dataset = get_dataset(SYNTHETIC_INTERNAL)

    class PooledVolume(VolumeFeature):
        name = "volume"
        class_conditional = False

    def run():
        conditional = Fixy([VolumeFeature()]).fit(dataset.train_scenes)
        pooled = Fixy([PooledVolume()]).fit(dataset.train_scenes)
        truck_volume = 8.5 * 2.6 * 3.2
        cond_dist = conditional.learned.lookup(VolumeFeature(), "car")
        pooled_dist = pooled.learned.lookup(PooledVolume(), None)
        return cond_dist.likelihood(truck_volume), pooled_dist.likelihood(truck_volume)

    cond_like, pooled_like = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntruck-sized box under car volume distribution: "
          f"conditional {cond_like:.2e}, pooled {pooled_like:.2e}")
    # Conditioned on "car", a truck-sized volume is (near) impossible;
    # the pooled distribution finds it unremarkable.
    assert cond_like < pooled_like / 100


def test_volume_ratio_separates_fig6_fig7(benchmark):
    """Adding VolumeRatioFeature separates the Figure 6/7 bundles."""
    from repro.core.model import Observation, ObservationBundle, Scene, Track
    from repro.geometry import Box3D, Pose2D

    dataset = get_dataset(SYNTHETIC_INTERNAL)

    def model_obs(frame, x, y, cls, l, w, h):
        return Observation(
            frame=frame, box=Box3D(x=x, y=y, z=0.8, length=l, width=w, height=h),
            object_class=cls, source="model", confidence=0.9,
        )

    def human_obs(frame, x, y):
        return Observation(
            frame=frame,
            box=Box3D(x=x, y=y, z=0.85, length=4.5, width=1.9, height=1.7),
            object_class="car", source="human",
        )

    def track_with_gap(track_id, y, gap_box):
        bundles = []
        for f in range(8):
            x = 5.0 + 0.4 * f
            if f == 4:
                bundles.append(ObservationBundle(frame=f, observations=[gap_box(f, x)]))
            else:
                bundles.append(ObservationBundle(
                    frame=f,
                    observations=[
                        human_obs(f, x, y),
                        model_obs(f, x + 0.05, y, "car", 4.5, 1.9, 1.7),
                    ],
                ))
        return Track(track_id=track_id, bundles=bundles)

    def run():
        consistent = track_with_gap(
            "fig6", 3.0, lambda f, x: model_obs(f, x, 3.0, "car", 4.5, 1.9, 1.7)
        )
        # Figure 7: a "pedestrian" box inside a car track — volume AND
        # class inconsistent with its neighbors.
        inconsistent = track_with_gap(
            "fig7", -3.0, lambda f, x: model_obs(f, x, -3.0, "pedestrian", 0.7, 0.7, 1.75)
        )
        scene = Scene(
            scene_id="fig67-abl", dt=0.2, tracks=[consistent, inconsistent],
            metadata={"ego_poses": [Pose2D(0, 0, 0)] * 10},
        )
        features = [VolumeFeature(), VelocityFeature(), CountFeature(),
                    ClassAgreementFeature(), VolumeRatioFeature()]
        finder = MissingObservationFinder(features=features).fit(dataset.train_scenes)
        ranked = finder.rank(scene)
        return {s.track_id: s.score for s in ranked}

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nwith volume-ratio: consistent {scores.get('fig6'):.3f}, "
          f"inconsistent {scores.get('fig7'):.3f}")
    assert scores["fig6"] > scores["fig7"]
