"""Sensitivity sweeps around the paper's operating point.

Not paper tables — supporting analysis: how Fixy's missing-track
precision responds to vendor quality, and how quickly the learned
feature distributions saturate with training data.
"""

from repro.eval.sweeps import training_size_sweep, vendor_noise_sweep


def test_vendor_noise_sweep(run_once):
    result = run_once(vendor_noise_sweep)
    assert len(result.points) == 4
    # Fixy stays at or above the random-ordered consistency baseline at
    # every noise level where errors exist.
    for point in result.points:
        if point.n_errors_per_scene >= 1:
            assert point.fixy_precision_at_10 >= point.baseline_precision_at_10 - 0.1


def test_training_size_sweep(run_once):
    result = run_once(training_size_sweep)
    curve = result.fixy_curve
    # The learning curve must not collapse with more data: the largest
    # training size performs at least as well as the smallest (within
    # sampling noise).
    assert curve[-1] >= curve[0] - 0.15
    assert curve[-1] > 0.4
