"""Warehouse benchmarks: out-of-core residency + warm sidecars (ISSUE 8).

Asserts the scene-warehouse acceptance floors:

- a corpus **≥4×** the resident-batch budget audits with
  ``peak_resident_scenes ≤ batch`` (the out-of-core bound, measured
  with weakrefs inside the streaming executor);
- the warm rerun restores **≥90%** of compiled scenes from the
  compiled-columns sidecar and is measurably faster than the cold run;
- cold, warm, and the all-in-memory reference audit are
  **byte-identical**.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_warehouse.py --benchmark-only -s
"""

from repro.eval.warehouse_perf import render_warehouse_report, warehouse_report


def test_warehouse_out_of_core_and_warm_sidecars(benchmark):
    report = benchmark.pedantic(
        warehouse_report,
        kwargs={"corpus_scenes": 16, "batch": 4, "n_objects": 25},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_warehouse_report(report))
    assert report["corpus_scenes"] >= 4 * report["batch"]
    assert report["out_of_core_bound"], report
    assert report["peak_resident_scenes"] <= report["batch"]
    assert report["byte_identical"], report
    assert report["warm_skip_ratio"] >= 0.9, report
    assert report["warm_s"] < report["cold_s"], report
