"""Table 3: precision of finding tracks missed by humans.

Paper numbers (for shape comparison, not exact reproduction):

======  ================  ====  ===  ===
Method  Dataset           P@10  P@5  P@1
======  ================  ====  ===  ===
Fixy    Lyft              69%   70%  67%
MA rand Lyft              32%   30%  24%
MA conf Lyft              39%   40%  39%
Fixy    Internal          76%   100% 100%
MA rand Internal          49%   64%  66%
MA conf Internal          71%   86%  66%
======  ================  ====  ===  ===

Shape targets asserted below: Fixy strictly beats both ad-hoc MA
orderings at P@10 on both datasets.
"""

from repro.eval import table3


def test_table3(run_once):
    result = run_once(table3)
    for dataset in ("Lyft", "Internal"):
        fixy = result.lookup("Fixy", dataset)
        rand = result.lookup("Ad-hoc MA (rand)", dataset)
        conf = result.lookup("Ad-hoc MA (conf)", dataset)
        assert fixy.precision_at_10 > rand.precision_at_10, dataset
        assert fixy.precision_at_10 > conf.precision_at_10, dataset
    # The paper's Lyft precision sits at 69%; ours should land in a
    # recognizable band around it.
    assert 0.5 <= result.lookup("Fixy", "Lyft").precision_at_10 <= 0.95
