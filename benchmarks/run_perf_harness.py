#!/usr/bin/env python
"""Benchmark harness: run the perf suite and persist BENCH_scaling.json.

Runs the A/B compile+rank comparison (scalar reference vs columnar fast
path, :mod:`repro.eval.perf`), the serving-layer measurements
(incremental-vs-full recompile and 1-vs-N-process ranking throughput,
:mod:`repro.eval.serving_perf`) and — unless ``--skip-pytest`` — the
existing ``bench_scaling.py`` / ``bench_runtime.py`` pytest benchmarks,
then writes everything to ``BENCH_scaling.json`` at the repo root so
future PRs can track the perf trajectory::

    PYTHONPATH=src python benchmarks/run_perf_harness.py
    PYTHONPATH=src python benchmarks/run_perf_harness.py --densities 10 100 --skip-pytest
    PYTHONPATH=src python benchmarks/run_perf_harness.py --smoke --out /tmp/bench.json

``--smoke`` shrinks every measurement to seconds of wall-clock (tiny
densities, one repeat, no pytest run) — the mode the tier-1 smoke test
exercises so the harness cannot silently rot.

The JSON layout::

    {
      "generated_at": <unix seconds>,
      "ab": {...},            # repro.eval.perf.ab_compile_rank report
      "serving": {
        "delta_vs_full": {...},   # repro.eval.serving_perf.delta_vs_full
        "sharding": {...},        # repro.eval.serving_perf.sharding_report
        "remote": {...},          # repro.eval.serving_perf.remote_report
        "standing_audit": {...},  # repro.eval.serving_perf.standing_report
      },
      "pytest_benchmarks": [  # mean seconds per benchmark test
        {"name": ..., "mean_s": ..., "stddev_s": ...}, ...
      ]
    }
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_pytest_benchmarks(files: list[str]) -> list[dict]:
    """Run pytest-benchmark files and harvest mean/stddev per test."""
    with tempfile.TemporaryDirectory() as tmp:
        out_json = Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *files,
            "--benchmark-only",
            "-q",
            f"--benchmark-json={out_json}",
        ]
        env = {"PYTHONPATH": str(REPO_ROOT / "src")}
        import os

        proc = subprocess.run(
            cmd, cwd=REPO_ROOT, env={**os.environ, **env}, capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            print(proc.stdout[-4000:], file=sys.stderr)
            raise RuntimeError(f"pytest benchmarks failed ({proc.returncode})")
        data = json.loads(out_json.read_text())
    return [
        {
            "name": bench["fullname"],
            "mean_s": bench["stats"]["mean"],
            "stddev_s": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
        }
        for bench in data.get("benchmarks", [])
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_scaling.json"),
        help="output JSON path (default: BENCH_scaling.json at repo root)",
    )
    parser.add_argument(
        "--densities", type=int, nargs="+", default=[10, 25, 50, 100],
        help="objects per scene for the A/B sweep",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--skip-pytest", action="store_true",
        help="skip the bench_scaling.py / bench_runtime.py pytest run",
    )
    parser.add_argument(
        "--skip-serving", action="store_true",
        help="skip the delta-recompile / process-sharding measurements",
    )
    parser.add_argument(
        "--delta-tracks", type=int, default=25,
        help="tracks in the delta-recompile scene (1 gets edited)",
    )
    parser.add_argument(
        "--shard-scenes", type=int, default=6,
        help="scenes ranked per path in the sharding comparison",
    )
    parser.add_argument(
        "--shard-workers", type=int, nargs="+", default=[1, 2],
        help="process counts to sweep in the sharding comparison",
    )
    parser.add_argument(
        "--remote-workers", type=int, nargs="+", default=[1, 2],
        help="TCP worker counts to sweep in the remote-backend comparison",
    )
    parser.add_argument(
        "--standing-tracks", type=int, default=100,
        help="objects in the standing-audit scene (edits cycle its tracks)",
    )
    parser.add_argument(
        "--standing-edits", type=int, default=40,
        help="edits streamed through the standing-audit comparison",
    )
    parser.add_argument(
        "--wire", choices=["auto", "v1", "v2"], default="auto",
        help="wire format for the remote comparison: auto (negotiated), "
        "v1 (line-JSON), v2 (require binary frames + content-addressed "
        "scenes — what CI smokes)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast sanity mode: tiny sizes, one repeat, no pytest run "
        "(used by the tier-1 smoke test)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.densities = [5]
        args.repeats = 1
        args.skip_pytest = True
        args.delta_tracks = 8
        args.shard_scenes = 2
        args.shard_workers = [1]
        args.remote_workers = [2]
        args.standing_tracks = 30
        args.standing_edits = 10

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.eval.perf import ab_compile_rank, render_report

    report: dict = {"generated_at": time.time()}
    ab = ab_compile_rank(densities=tuple(args.densities), repeats=args.repeats)
    report["ab"] = ab
    print(render_report(ab))

    if not args.skip_serving:
        from repro.eval.serving_perf import (
            delta_vs_full,
            remote_report,
            render_serving_report,
            sharding_report,
            standing_report,
        )

        delta = delta_vs_full(
            n_tracks=args.delta_tracks, repeats=max(1, args.repeats)
        )
        sharding = sharding_report(
            n_scenes=args.shard_scenes,
            worker_counts=tuple(args.shard_workers),
            repeats=max(1, args.repeats),
        )
        remote = remote_report(
            n_scenes=args.shard_scenes,
            worker_counts=tuple(args.remote_workers),
            repeats=max(1, args.repeats),
            wire=args.wire,
        )
        standing = standing_report(
            n_tracks=args.standing_tracks, n_edits=args.standing_edits
        )
        report["serving"] = {
            "delta_vs_full": delta,
            "sharding": sharding,
            "remote": remote,
            "standing_audit": standing,
        }
        print(render_serving_report(delta, sharding, remote, standing))

    if not args.skip_pytest:
        report["pytest_benchmarks"] = run_pytest_benchmarks(
            ["benchmarks/bench_scaling.py", "benchmarks/bench_runtime.py"]
        )
        for bench in report["pytest_benchmarks"]:
            print(f"  {bench['name']}: {bench['mean_s']*1e3:.1f} ms mean")

    Path(args.out).write_text(json.dumps(report, indent=2), encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
