#!/usr/bin/env python
"""Benchmark harness: run the perf suite and persist BENCH_scaling.json.

Runs the A/B compile+rank comparison (scalar reference vs columnar fast
path, :mod:`repro.eval.perf`), the serving-layer measurements
(incremental-vs-full recompile and 1-vs-N-process ranking throughput,
:mod:`repro.eval.serving_perf`) and — unless ``--skip-pytest`` — the
existing ``bench_scaling.py`` / ``bench_runtime.py`` pytest benchmarks,
then writes everything to ``BENCH_scaling.json`` at the repo root so
future PRs can track the perf trajectory::

    PYTHONPATH=src python benchmarks/run_perf_harness.py
    PYTHONPATH=src python benchmarks/run_perf_harness.py --densities 10 100 --skip-pytest
    PYTHONPATH=src python benchmarks/run_perf_harness.py --smoke --out /tmp/bench.json

``--smoke`` shrinks every measurement to seconds of wall-clock (tiny
densities, one repeat, no pytest run) — the mode the tier-1 smoke test
exercises so the harness cannot silently rot.

The JSON layout::

    {
      "generated_at": <unix seconds>,
      "ab": {...},            # repro.eval.perf.ab_compile_rank report
      "serving": {
        "delta_vs_full": {...},   # repro.eval.serving_perf.delta_vs_full
        "sharding": {...},        # repro.eval.serving_perf.sharding_report
        "remote": {...},          # repro.eval.serving_perf.remote_report
        "standing_audit": {...},  # repro.eval.serving_perf.standing_report
        "gateway": {...},         # repro.eval.gateway_perf.gateway_report
      },
      "warehouse": {...},     # repro.eval.warehouse_perf.warehouse_report
      "pytest_benchmarks": [  # mean seconds per benchmark test
        {"name": ..., "mean_s": ..., "stddev_s": ...}, ...
      ],
      "observability": {
        "registry_deltas": {...},  # counter totals advanced by this run
        "overhead": {...},         # measured vs committed warm remote
      }
    }

A partial run (``--skip-serving``, ``--skip-warehouse``, ...) no
longer erases the skipped sections from ``BENCH_scaling.json``: any
top-level section — and any ``serving`` subsection — this run did not
measure is carried over from the committed file, so the perf
trajectory keeps its history across partial reruns. Freshly measured
sections always win.

The ``observability`` section is the instrumentation-overhead check:
the harness snapshots the process metrics registry before and after
the measurements (the deltas prove the counters actually advance under
load) and compares the freshly-measured warm remote throughput against
the committed ``BENCH_scaling.json`` baseline — which predates the
instrumentation, so a regression past ``--max-overhead`` (default 5%)
means the metrics/tracing layer costs too much. Advisory by default
(wall-clock on shared runners is noisy); ``--enforce-overhead`` turns
it into a non-zero exit.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_pytest_benchmarks(files: list[str]) -> list[dict]:
    """Run pytest-benchmark files and harvest mean/stddev per test."""
    with tempfile.TemporaryDirectory() as tmp:
        out_json = Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *files,
            "--benchmark-only",
            "-q",
            f"--benchmark-json={out_json}",
        ]
        env = {"PYTHONPATH": str(REPO_ROOT / "src")}
        import os

        proc = subprocess.run(
            cmd, cwd=REPO_ROOT, env={**os.environ, **env}, capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            print(proc.stdout[-4000:], file=sys.stderr)
            raise RuntimeError(f"pytest benchmarks failed ({proc.returncode})")
        data = json.loads(out_json.read_text())
    return [
        {
            "name": bench["fullname"],
            "mean_s": bench["stats"]["mean"],
            "stddev_s": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
        }
        for bench in data.get("benchmarks", [])
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_scaling.json"),
        help="output JSON path (default: BENCH_scaling.json at repo root)",
    )
    parser.add_argument(
        "--densities", type=int, nargs="+", default=[10, 25, 50, 100],
        help="objects per scene for the A/B sweep",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--skip-pytest", action="store_true",
        help="skip the bench_scaling.py / bench_runtime.py pytest run",
    )
    parser.add_argument(
        "--skip-serving", action="store_true",
        help="skip the delta-recompile / process-sharding measurements",
    )
    parser.add_argument(
        "--delta-tracks", type=int, default=25,
        help="tracks in the delta-recompile scene (1 gets edited)",
    )
    parser.add_argument(
        "--shard-scenes", type=int, default=6,
        help="scenes ranked per path in the sharding comparison",
    )
    parser.add_argument(
        "--shard-workers", type=int, nargs="+", default=[1, 2],
        help="process counts to sweep in the sharding comparison",
    )
    parser.add_argument(
        "--remote-workers", type=int, nargs="+", default=[1, 2],
        help="TCP worker counts to sweep in the remote-backend comparison",
    )
    parser.add_argument(
        "--standing-tracks", type=int, default=100,
        help="objects in the standing-audit scene (edits cycle its tracks)",
    )
    parser.add_argument(
        "--standing-edits", type=int, default=40,
        help="edits streamed through the standing-audit comparison",
    )
    parser.add_argument(
        "--warehouse-scenes", type=int, default=16,
        help="corpus size for the out-of-core warehouse audit "
        "(floored at 4x the batch budget)",
    )
    parser.add_argument(
        "--warehouse-batch", type=int, default=4,
        help="resident-scene budget for the out-of-core warehouse audit",
    )
    parser.add_argument(
        "--skip-warehouse", action="store_true",
        help="skip the out-of-core warehouse measurement",
    )
    parser.add_argument(
        "--gateway-clients", type=int, default=256,
        help="concurrent clients driven through the async gateway "
        "(the 1k-client floor itself is enforced by "
        "benchmarks/bench_gateway.py)",
    )
    parser.add_argument(
        "--skip-gateway", action="store_true",
        help="skip the async-gateway measurement",
    )
    parser.add_argument(
        "--wire", choices=["auto", "v1", "v2"], default="auto",
        help="wire format for the remote comparison: auto (negotiated), "
        "v1 (line-JSON), v2 (require binary frames + content-addressed "
        "scenes — what CI smokes)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="tolerated fractional slowdown of warm remote throughput "
        "vs the committed BENCH_scaling.json baseline (default 0.05)",
    )
    parser.add_argument(
        "--enforce-overhead", action="store_true",
        help="exit non-zero when the overhead check fails (advisory "
        "otherwise — shared-runner wall-clock is noisy)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast sanity mode: tiny sizes, one repeat, no pytest run "
        "(used by the tier-1 smoke test)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.densities = [5]
        args.repeats = 1
        args.skip_pytest = True
        args.delta_tracks = 8
        args.shard_scenes = 2
        args.shard_workers = [1]
        args.remote_workers = [2]
        args.standing_tracks = 30
        args.standing_edits = 10
        args.warehouse_scenes = 8
        args.warehouse_batch = 2
        args.gateway_clients = 48

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.eval.perf import ab_compile_rank, render_report
    from repro.obs.metrics import get_registry

    # The committed baseline predates this run — read it before --out
    # overwrites it, so the overhead check compares against history.
    baseline_path = REPO_ROOT / "BENCH_scaling.json"
    baseline = (
        json.loads(baseline_path.read_text())
        if baseline_path.exists()
        else None
    )
    counters_before = get_registry().summary()

    report: dict = {"generated_at": time.time()}
    ab = ab_compile_rank(densities=tuple(args.densities), repeats=args.repeats)
    report["ab"] = ab
    print(render_report(ab))

    if not args.skip_serving:
        from repro.eval.serving_perf import (
            delta_vs_full,
            remote_report,
            render_serving_report,
            sharding_report,
            standing_report,
        )

        delta = delta_vs_full(
            n_tracks=args.delta_tracks, repeats=max(1, args.repeats)
        )
        sharding = sharding_report(
            n_scenes=args.shard_scenes,
            worker_counts=tuple(args.shard_workers),
            repeats=max(1, args.repeats),
        )
        remote = remote_report(
            n_scenes=args.shard_scenes,
            worker_counts=tuple(args.remote_workers),
            repeats=max(1, args.repeats),
            wire=args.wire,
        )
        standing = standing_report(
            n_tracks=args.standing_tracks, n_edits=args.standing_edits
        )
        report["serving"] = {
            "delta_vs_full": delta,
            "sharding": sharding,
            "remote": remote,
            "standing_audit": standing,
        }
        print(render_serving_report(delta, sharding, remote, standing))

    if not args.skip_gateway:
        from repro.eval.gateway_perf import (
            gateway_report,
            render_gateway_report,
        )

        gateway = gateway_report(
            n_clients=args.gateway_clients,
            n_scenes=4 if args.smoke else 8,
        )
        report.setdefault("serving", {})["gateway"] = gateway
        print(render_gateway_report(gateway))

    if not args.skip_warehouse:
        from repro.eval.warehouse_perf import (
            render_warehouse_report,
            warehouse_report,
        )

        warehouse = warehouse_report(
            corpus_scenes=args.warehouse_scenes,
            batch=args.warehouse_batch,
            n_objects=args.densities[0] if args.smoke else 25,
        )
        report["warehouse"] = warehouse
        print(render_warehouse_report(warehouse))

    if not args.skip_pytest:
        report["pytest_benchmarks"] = run_pytest_benchmarks(
            ["benchmarks/bench_scaling.py", "benchmarks/bench_runtime.py"]
        )
        for bench in report["pytest_benchmarks"]:
            print(f"  {bench['name']}: {bench['mean_s']*1e3:.1f} ms mean")

    overhead_ok = True
    report["observability"] = observability_section(
        counters_before=counters_before,
        counters_after=get_registry().summary(),
        baseline=baseline,
        measured=report.get("serving", {}).get("remote"),
        max_overhead=args.max_overhead,
    )
    deltas = report["observability"]["registry_deltas"]
    print(f"registry: {len(deltas)} counters advanced during the run")
    for name in sorted(deltas)[:8]:
        print(f"  {name}: +{deltas[name]:g}")
    overhead = report["observability"]["overhead"]
    if overhead is not None:
        overhead_ok = overhead["within_budget"]
        print(
            "instrumentation overhead (warm remote, vs committed "
            f"{overhead['baseline_scenes_per_s']:.0f} scenes/s): "
            f"{overhead['measured_scenes_per_s']:.0f} scenes/s "
            f"({overhead['slowdown'] * 100:+.1f}% — budget "
            f"{args.max_overhead * 100:.0f}%) "
            f"{'OK' if overhead_ok else 'OVER BUDGET'}"
        )

    report = merge_unrun_sections(report, baseline)
    Path(args.out).write_text(json.dumps(report, indent=2), encoding="utf-8")
    print(f"wrote {args.out}")
    if args.enforce_overhead and not overhead_ok:
        return 1
    return 0


def merge_unrun_sections(report: dict, baseline: dict | None) -> dict:
    """Carry unmeasured sections over from the committed baseline.

    A ``--skip-*`` run used to *rewrite* ``BENCH_scaling.json`` with
    only what it measured, silently erasing every other section's
    history. Instead: any top-level section missing from this run is
    copied from the committed file, and the ``serving`` dict merges at
    the subsection level (a gateway-only rerun must not drop the
    committed sharding/remote numbers). Freshly measured keys always
    win; ``generated_at`` is always this run's.
    """
    if not baseline:
        return report
    merged = {
        **{k: v for k, v in baseline.items() if k != "generated_at"},
        **report,
    }
    baseline_serving = baseline.get("serving")
    if isinstance(baseline_serving, dict):
        merged["serving"] = {
            **baseline_serving,
            **(report.get("serving") or {}),
        }
    return merged


def observability_section(
    counters_before: dict,
    counters_after: dict,
    baseline: dict | None,
    measured: dict | None,
    max_overhead: float,
) -> dict:
    """Registry counter deltas + the ≤5% instrumentation-overhead check.

    The check pits this run's warm remote throughput (measured with the
    metrics/tracing layer live) against the committed baseline's; it
    compares the best worker case from each side so partition-count
    differences don't masquerade as instrumentation cost. Returns
    ``overhead=None`` when either side lacks a remote measurement or
    the workloads differ (e.g. ``--smoke`` vs a full baseline) — a
    throughput ratio across different scene counts measures the
    workload, not the instrumentation.
    """
    deltas = {
        name: total - counters_before.get(name, 0.0)
        for name, total in counters_after.items()
        if total - counters_before.get(name, 0.0) > 0
    }

    def best_warm(remote_report: dict | None) -> float | None:
        if not remote_report:
            return None
        rates = [
            case["scenes_per_s"]
            for case in remote_report.get("worker_cases", [])
            if case.get("scenes_per_s")
        ]
        return max(rates) if rates else None

    baseline_remote = (baseline or {}).get("serving", {}).get("remote")
    comparable = bool(
        baseline_remote
        and measured
        and baseline_remote.get("n_scenes") == measured.get("n_scenes")
        and baseline_remote.get("n_objects") == measured.get("n_objects")
    )
    baseline_rate = best_warm(baseline_remote) if comparable else None
    measured_rate = best_warm(measured)
    overhead = None
    if baseline_rate and measured_rate:
        slowdown = (baseline_rate - measured_rate) / baseline_rate
        overhead = {
            "baseline_scenes_per_s": baseline_rate,
            "measured_scenes_per_s": measured_rate,
            "slowdown": slowdown,
            "budget": max_overhead,
            "within_budget": slowdown <= max_overhead,
        }
    return {"registry_deltas": deltas, "overhead": overhead}


if __name__ == "__main__":
    raise SystemExit(main())
