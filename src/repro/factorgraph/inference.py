"""Inference over factor graphs: evidence scoring and sum-product.

Fixy's scoring (§6) only needs the *evidence* path — every variable is
observed, so the graph's log score is the sum of log factor potentials
(Eq. 2 before normalization). :func:`log_score` implements that.

For completeness of the substrate (and for the robot-perception style
uses the paper cites [8, 15, 22]), :func:`sum_product` implements exact
belief propagation on tree-structured graphs with discrete
:class:`~repro.factorgraph.factors.TableFactor` potentials, returning
normalized marginals per variable.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping

import numpy as np

from repro.factorgraph.factors import Factor, TableFactor, log_potentials
from repro.factorgraph.graph import FactorGraph

__all__ = ["log_score", "evidence_log_score", "sum_product", "max_product"]


def log_score(
    graph: FactorGraph, assignment: Mapping[Hashable, object]
) -> float:
    """Log of the unnormalized joint: ``Σ_j ln f_j(S_j)``.

    Every factor node's payload must be a :class:`Factor`. Factors whose
    potential is zero contribute ``-inf`` (the assignment is impossible /
    filtered out by an AOF).
    """
    total = 0.0
    for node in graph.factors():
        factor = node.payload
        if not isinstance(factor, Factor):
            raise TypeError(
                f"factor node {node.name!r} payload is not a Factor: {factor!r}"
            )
        total += factor.log_evaluate(assignment)
        if total == -math.inf:
            return -math.inf
    return total


def evidence_log_score(graph: FactorGraph) -> float:
    """Vectorized :func:`log_score` for fully-conditioned graphs.

    Compiled LOA scenes condition every variable on the observed data, so
    each factor's potential is a constant (see
    :class:`repro.core.compile.PotentialFactor`, duck-typed here through
    its ``value`` attribute to avoid a circular import). Those constants
    are gathered into one array and logged in a single NumPy call;
    factors that still depend on an assignment fall back to
    ``log_evaluate({})`` one by one.
    """
    constants = []
    total = 0.0
    for node in graph.factors():
        factor = node.payload
        value = getattr(factor, "value", None)
        if isinstance(value, float):
            constants.append(value)
            continue
        if not isinstance(factor, Factor):
            raise TypeError(
                f"factor node {node.name!r} payload is not a Factor: {factor!r}"
            )
        total += factor.log_evaluate({})
        if total == -math.inf:
            return -math.inf
    if constants:
        logs = log_potentials(constants)
        if (logs == -math.inf).any():
            return -math.inf
        total += float(logs.sum())
    return total


def _domains(graph: FactorGraph) -> dict[Hashable, list]:
    """Collect each variable's domain from the table factors touching it."""
    domains: dict[Hashable, list] = {}
    for node in graph.factors():
        factor = node.payload
        if not isinstance(factor, TableFactor):
            raise TypeError(
                f"sum-product requires TableFactor payloads; factor "
                f"{node.name!r} has {type(factor).__name__}"
            )
        for var, domain in zip(factor.variables, factor.domains):
            if var in domains:
                if domains[var] != domain:
                    raise ValueError(
                        f"variable {var!r} has inconsistent domains across factors"
                    )
            else:
                domains[var] = domain
    for var_node in graph.variables():
        if var_node.name not in domains:
            raise ValueError(
                f"variable {var_node.name!r} is not covered by any factor"
            )
    return domains


def sum_product(graph: FactorGraph) -> dict[Hashable, np.ndarray]:
    """Exact marginals on a tree-structured discrete factor graph.

    Implements the two-pass message schedule (leaves → root → leaves) of
    Kschischang et al. [15]. Raises if the graph is cyclic.

    Returns:
        Normalized marginal distribution per variable name, aligned with
        the variable's domain order.
    """
    if not graph.is_tree():
        raise ValueError("sum_product requires a tree-structured factor graph")
    domains = _domains(graph)

    # Messages keyed by (source, target) node names; values are arrays over
    # the variable's domain (variable-factor messages in both directions).
    messages: dict[tuple[Hashable, Hashable], np.ndarray] = {}

    def var_to_factor(var: Hashable, factor: Hashable) -> np.ndarray:
        out = np.ones(len(domains[var]))
        for other in graph.factors_of(var):
            if other.name != factor:
                out = out * messages[(other.name, var)]
        return out

    def factor_to_var(factor_name: Hashable, var: Hashable) -> np.ndarray:
        factor: TableFactor = graph.factor(factor_name).payload
        table = factor.table
        # Multiply in messages from the other variables, then sum them out.
        for axis, other_var in enumerate(factor.variables):
            if other_var == var:
                continue
            msg = messages[(other_var, factor_name)]
            shape = [1] * table.ndim
            shape[axis] = len(msg)
            table = table * msg.reshape(shape)
        target_axis = factor.variables.index(var)
        other_axes = tuple(i for i in range(table.ndim) if i != target_axis)
        return table.sum(axis=other_axes) if other_axes else table

    # Iteratively send any message whose prerequisites are ready. On a tree
    # this converges in O(edges) sends.
    pending: set[tuple[str, Hashable, Hashable]] = set()
    for fac in graph.factors():
        for var_node in graph.factor_scope(fac.name):
            pending.add(("v->f", var_node.name, fac.name))
            pending.add(("f->v", fac.name, var_node.name))

    progress = True
    while pending and progress:
        progress = False
        for item in sorted(pending, key=repr):
            kind, src, dst = item
            if kind == "v->f":
                ready = all(
                    (other.name, src) in messages
                    for other in graph.factors_of(src)
                    if other.name != dst
                )
                if ready:
                    messages[(src, dst)] = var_to_factor(src, dst)
                    pending.discard(item)
                    progress = True
            else:
                factor: TableFactor = graph.factor(src).payload
                ready = all(
                    (other_var, src) in messages
                    for other_var in factor.variables
                    if other_var != dst
                )
                if ready:
                    messages[(src, dst)] = factor_to_var(src, dst)
                    pending.discard(item)
                    progress = True
    if pending:
        raise RuntimeError("message passing failed to converge on a tree graph")

    marginals: dict[Hashable, np.ndarray] = {}
    for var_node in graph.variables():
        var = var_node.name
        belief = np.ones(len(domains[var]))
        for fac in graph.factors_of(var):
            belief = belief * messages[(fac.name, var)]
        total = belief.sum()
        if total <= 0:
            raise ValueError(f"variable {var!r} has zero total belief")
        marginals[var] = belief / total
    return marginals


def max_product(graph: FactorGraph) -> dict[Hashable, object]:
    """MAP assignment on a tree-structured discrete factor graph.

    Max-product message passing (the other half of Kschischang et al.
    [15]); on small graphs we implement it as exact maximization over the
    joint, component by component, which is equivalent on trees and also
    correct on (small) loopy graphs. Intended for the modest per-track
    graphs Fixy produces, not large grids.

    Returns:
        The maximizing value per variable. Raises if any component's best
        joint potential is zero (no consistent assignment).
    """
    from itertools import product as iter_product

    domains = _domains(graph)

    assignment: dict[Hashable, object] = {}
    for component in graph.connected_components():
        variables = sorted(
            (n for n in component if graph.has_variable(n)), key=repr
        )
        factors = [
            graph.factor(n).payload for n in component if graph.has_factor(n)
        ]
        if not variables:
            continue
        n_joint = 1
        for var in variables:
            n_joint *= len(domains[var])
            if n_joint > 2_000_000:
                raise ValueError(
                    "joint domain too large for exact max_product "
                    f"({n_joint}+ assignments)"
                )
        best_value = -1.0
        best: tuple | None = None
        for values in iter_product(*(domains[v] for v in variables)):
            candidate = dict(zip(variables, values))
            potential = 1.0
            for factor in factors:
                potential *= factor.evaluate(candidate)
                if potential == 0.0:
                    break
            if potential > best_value:
                best_value = potential
                best = values
        if best is None or best_value <= 0.0:
            raise ValueError(
                "no assignment with positive potential in component "
                f"{sorted(component, key=repr)}"
            )
        assignment.update(dict(zip(variables, best)))
    return assignment
