"""Factor implementations attached to factor nodes.

Two families:

- :class:`FunctionFactor` — a potential over *observed* payload values,
  used by Fixy's compiled graphs (each feature distribution + AOF becomes
  one of these, evaluated at the observed feature value).
- :class:`TableFactor` — a dense table over small discrete domains, used
  by the generic sum-product engine in
  :mod:`repro.factorgraph.inference`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

__all__ = ["Factor", "FunctionFactor", "TableFactor", "log_potential", "log_potentials"]


def log_potential(value: float, floor: float = 1e-12) -> float:
    """Natural log of a potential with a floor.

    Potentials of exactly zero (an AOF that zeroes an item out) map to
    ``-inf`` so the item is excluded from ranking; small positive values
    are preserved. ``floor`` guards against log(0) from numerical
    underflow of genuinely-positive densities.
    """
    if value < 0:
        raise ValueError(f"potentials must be non-negative, got {value}")
    if value == 0.0:
        return -math.inf
    return math.log(max(value, floor))


def log_potentials(values, floor: float = 1e-12) -> np.ndarray:
    """Vectorized :func:`log_potential` over an array of potentials.

    Exact zeros map to ``-inf``; positive values are floored at ``floor``
    before the log, element for element matching the scalar function.
    """
    arr = np.atleast_1d(np.asarray(values, dtype=float))
    if (arr < 0).any():
        bad = float(arr[arr < 0][0])
        raise ValueError(f"potentials must be non-negative, got {bad}")
    out = np.log(np.maximum(arr, floor))
    out[arr == 0.0] = -math.inf
    return out


class Factor(ABC):
    """A non-negative potential function."""

    @abstractmethod
    def evaluate(self, assignment: Mapping[Hashable, object]) -> float:
        """Potential value for an assignment of the factor's variables."""

    def log_evaluate(self, assignment: Mapping[Hashable, object]) -> float:
        return log_potential(self.evaluate(assignment))


class FunctionFactor(Factor):
    """A potential computed by a callable over named variable values.

    Args:
        variables: Names of the variables the factor reads, in the order
            the callable expects them.
        fn: Callable mapping the variable values to a non-negative float.
        label: Human-readable name used in diagnostics.
    """

    def __init__(
        self,
        variables: Sequence[Hashable],
        fn: Callable[..., float],
        label: str = "",
    ):
        if not variables:
            raise ValueError("FunctionFactor needs at least one variable")
        self.variables = tuple(variables)
        self.fn = fn
        self.label = label or getattr(fn, "__name__", "factor")

    def evaluate(self, assignment: Mapping[Hashable, object]) -> float:
        try:
            args = [assignment[v] for v in self.variables]
        except KeyError as exc:
            raise KeyError(
                f"factor {self.label!r} missing assignment for {exc.args[0]!r}"
            ) from None
        value = float(self.fn(*args))
        if value < 0 or math.isnan(value):
            raise ValueError(
                f"factor {self.label!r} returned invalid potential {value}"
            )
        return value

    def __repr__(self) -> str:
        return f"FunctionFactor({self.label!r}, vars={self.variables})"


class TableFactor(Factor):
    """A dense potential table over small discrete variable domains.

    Args:
        variables: Variable names, one per table axis.
        domains: For each variable, the ordered list of its values.
        table: Non-negative array of shape ``tuple(len(d) for d in domains)``.
    """

    def __init__(
        self,
        variables: Sequence[Hashable],
        domains: Sequence[Sequence[object]],
        table: np.ndarray,
    ):
        if len(variables) != len(domains):
            raise ValueError("variables and domains must align")
        arr = np.asarray(table, dtype=float)
        expected = tuple(len(d) for d in domains)
        if arr.shape != expected:
            raise ValueError(f"table shape {arr.shape} != domain shape {expected}")
        if (arr < 0).any() or np.isnan(arr).any():
            raise ValueError("table potentials must be non-negative and finite")
        self.variables = tuple(variables)
        self.domains = [list(d) for d in domains]
        self._index = [
            {value: i for i, value in enumerate(domain)} for domain in self.domains
        ]
        self.table = arr

    def evaluate(self, assignment: Mapping[Hashable, object]) -> float:
        idx = []
        for var, lookup in zip(self.variables, self._index):
            value = assignment[var]
            if value not in lookup:
                raise ValueError(
                    f"value {value!r} not in the domain of variable {var!r}"
                )
            idx.append(lookup[value])
        return float(self.table[tuple(idx)])

    def marginalize_onto(self, variable: Hashable) -> np.ndarray:
        """Sum the table over all axes except ``variable``'s."""
        if variable not in self.variables:
            raise KeyError(f"factor does not touch variable {variable!r}")
        axis = self.variables.index(variable)
        other_axes = tuple(i for i in range(self.table.ndim) if i != axis)
        return self.table.sum(axis=other_axes)
