"""Bipartite factor graphs.

The paper (§2) represents a factorized joint distribution
``g(X1..Xn) = Π_j f_j(S_j)`` as a bipartite graph ``G = (X, F, E)`` with
variable nodes ``X``, factor nodes ``F``, and an edge between ``f_j`` and
``X_i`` iff ``X_i ∈ S_j``. Fixy compiles scenes into exactly this
structure ("Fixy will create nodes for each observation and feature
distribution. Then, Fixy will create edges between each feature
distribution and the observation it applies over", §4.3).

This module is the generic substrate: node/edge bookkeeping, bipartite
invariants, degree queries, and connected components. Inference (scoring
and sum-product) lives in :mod:`repro.factorgraph.inference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

__all__ = ["VariableNode", "FactorNode", "FactorGraph"]


@dataclass(frozen=True)
class VariableNode:
    """A variable node X_i. ``payload`` carries the attached object (e.g.
    an :class:`~repro.core.model.Observation`)."""

    name: Hashable
    payload: Any = field(default=None, compare=False, hash=False)


@dataclass(frozen=True)
class FactorNode:
    """A factor node f_j. ``payload`` carries the factor implementation
    (for Fixy, a feature distribution plus AOF)."""

    name: Hashable
    payload: Any = field(default=None, compare=False, hash=False)


class FactorGraph:
    """A bipartite graph over variable and factor nodes."""

    def __init__(self) -> None:
        self._variables: dict[Hashable, VariableNode] = {}
        self._factors: dict[Hashable, FactorNode] = {}
        # Adjacency in both directions, insertion-ordered.
        self._factor_vars: dict[Hashable, list[Hashable]] = {}
        self._var_factors: dict[Hashable, list[Hashable]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_variable(self, name: Hashable, payload: Any = None) -> VariableNode:
        if name in self._variables:
            raise ValueError(f"variable {name!r} already exists")
        if name in self._factors:
            raise ValueError(f"{name!r} is already a factor node")
        node = VariableNode(name=name, payload=payload)
        self._variables[name] = node
        self._var_factors[name] = []
        return node

    def add_factor(
        self, name: Hashable, variables: Iterable[Hashable], payload: Any = None
    ) -> FactorNode:
        """Add a factor connected to ``variables`` (which must exist)."""
        if name in self._factors:
            raise ValueError(f"factor {name!r} already exists")
        if name in self._variables:
            raise ValueError(f"{name!r} is already a variable node")
        var_list = list(variables)
        if not var_list:
            raise ValueError(f"factor {name!r} must touch at least one variable")
        if len(set(var_list)) != len(var_list):
            raise ValueError(f"factor {name!r} lists a variable twice")
        for var in var_list:
            if var not in self._variables:
                raise KeyError(f"factor {name!r} references unknown variable {var!r}")
        node = FactorNode(name=name, payload=payload)
        self._factors[name] = node
        self._factor_vars[name] = var_list
        for var in var_list:
            self._var_factors[var].append(name)
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        return len(self._variables)

    @property
    def n_factors(self) -> int:
        return len(self._factors)

    @property
    def n_edges(self) -> int:
        return sum(len(v) for v in self._factor_vars.values())

    def variables(self) -> list[VariableNode]:
        return list(self._variables.values())

    def factors(self) -> list[FactorNode]:
        return list(self._factors.values())

    def variable(self, name: Hashable) -> VariableNode:
        try:
            return self._variables[name]
        except KeyError:
            raise KeyError(f"no variable {name!r}") from None

    def factor(self, name: Hashable) -> FactorNode:
        try:
            return self._factors[name]
        except KeyError:
            raise KeyError(f"no factor {name!r}") from None

    def has_variable(self, name: Hashable) -> bool:
        return name in self._variables

    def has_factor(self, name: Hashable) -> bool:
        return name in self._factors

    def factor_scope(self, factor_name: Hashable) -> list[VariableNode]:
        """The variables a factor touches, in insertion order."""
        if factor_name not in self._factors:
            raise KeyError(f"no factor {factor_name!r}")
        return [self._variables[v] for v in self._factor_vars[factor_name]]

    def factors_of(self, variable_name: Hashable) -> list[FactorNode]:
        """The factors touching a variable, in insertion order."""
        if variable_name not in self._variables:
            raise KeyError(f"no variable {variable_name!r}")
        return [self._factors[f] for f in self._var_factors[variable_name]]

    def degree(self, name: Hashable) -> int:
        if name in self._variables:
            return len(self._var_factors[name])
        if name in self._factors:
            return len(self._factor_vars[name])
        raise KeyError(f"no node {name!r}")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set[Hashable]]:
        """Node-name sets of each connected component (variables+factors)."""
        seen: set[Hashable] = set()
        components: list[set[Hashable]] = []
        for start in list(self._variables) + list(self._factors):
            if start in seen:
                continue
            component: set[Hashable] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                if node in self._variables:
                    stack.extend(self._var_factors[node])
                else:
                    stack.extend(self._factor_vars[node])
            seen |= component
            components.append(component)
        return components

    def is_tree(self) -> bool:
        """Whether every component is acyclic (``edges = nodes - 1``)."""
        for component in self.connected_components():
            n_nodes = len(component)
            n_edges = sum(
                len(self._factor_vars[n]) for n in component if n in self._factors
            )
            if n_edges != n_nodes - 1:
                return False
        return True

    def validate(self) -> None:
        """Check internal consistency; raises ``AssertionError`` on bugs."""
        for factor_name, var_names in self._factor_vars.items():
            for var in var_names:
                assert factor_name in self._var_factors[var], (
                    f"edge {factor_name!r}-{var!r} missing reverse direction"
                )
        for var_name, factor_names in self._var_factors.items():
            for fac in factor_names:
                assert var_name in self._factor_vars[fac], (
                    f"edge {var_name!r}-{fac!r} missing forward direction"
                )
