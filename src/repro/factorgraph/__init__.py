"""Bipartite factor graphs: structure, factors, and inference."""

from repro.factorgraph.factors import (
    Factor,
    FunctionFactor,
    TableFactor,
    log_potential,
    log_potentials,
)
from repro.factorgraph.graph import FactorGraph, FactorNode, VariableNode
from repro.factorgraph.inference import (
    evidence_log_score,
    log_score,
    max_product,
    sum_product,
)

__all__ = [
    "Factor",
    "FactorGraph",
    "FactorNode",
    "FunctionFactor",
    "TableFactor",
    "VariableNode",
    "evidence_log_score",
    "log_potential",
    "log_potentials",
    "log_score",
    "max_product",
    "sum_product",
]
