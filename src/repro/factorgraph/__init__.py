"""Bipartite factor graphs: structure, factors, and inference."""

from repro.factorgraph.factors import (
    Factor,
    FunctionFactor,
    TableFactor,
    log_potential,
)
from repro.factorgraph.graph import FactorGraph, FactorNode, VariableNode
from repro.factorgraph.inference import log_score, max_product, sum_product

__all__ = [
    "Factor",
    "FactorGraph",
    "FactorNode",
    "FunctionFactor",
    "TableFactor",
    "VariableNode",
    "log_potential",
    "log_score",
    "max_product",
    "sum_product",
]
