"""Span-based tracing: where one request's time actually went.

A :class:`Trace` is a flat, thread-safe collection of :class:`Span`
records for one logical request (one audit, one protocol request).
Spans form a tree through ``parent_id``; the tree is assembled by
readers, not maintained live, so recording a span is an append under a
lock and nothing more.

The instrumented layers never hold a trace by hand — they call the
:func:`span` context manager, which records into the *ambient* trace
(a :class:`contextvars.ContextVar`) when one is active and costs a
single falsy check when none is. That keeps tracing strictly opt-in:
an un-traced audit pays one ``ContextVar.get()`` per would-be span.

Cross-machine stitching works by value, not by context: protocol v2
requests carry additive ``trace_id`` + ``parent_span`` fields, the
worker runs its handler under a fresh local :class:`Trace` with the
same id, and ships its span dicts back piggybacked on the response
(``spans`` field). The coordinator re-parents the worker's root spans
under its own dispatch span and merges them — one stitched trace per
audit, exported as JSONL via ``AuditResult.dump_trace()``.

Thread boundaries (the pool's dispatch executor) are crossed
explicitly: capture ``(current_trace(), current_span_id())`` before
submitting, pass both into :func:`span` via ``trace=`` / ``parent=``.
ContextVars do not propagate into pool threads and we don't pretend
they do.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import threading
import time

__all__ = [
    "Span",
    "Trace",
    "activate",
    "current_span_id",
    "current_trace",
    "new_id",
    "span",
]


def new_id() -> str:
    """A 16-hex-char random id (64 bits; collision-safe per process)."""
    return os.urandom(8).hex()


class Span:
    """One timed operation: name, wall-clock start, duration, attrs.

    ``start_s`` is epoch wall-clock (for cross-machine alignment and
    human-readable export); ``dur_s`` is measured with ``perf_counter``
    (monotonic, so durations are exact even if NTP steps the clock
    mid-span).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "start_s", "dur_s",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str | None = None,
        parent_id: str | None = None,
        start_s: float = 0.0,
        dur_s: float = 0.0,
        attrs: dict | None = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else new_id()
        self.parent_id = parent_id
        self.start_s = start_s
        self.dur_s = dur_s
        self.attrs = attrs if attrs is not None else {}

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start_s=float(data.get("start_s", 0.0)),
            dur_s=float(data.get("dur_s", 0.0)),
            attrs=dict(data.get("attrs", {})),
        )

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, dur_s={self.dur_s:.6f}, "
            f"span={self.span_id}, parent={self.parent_id})"
        )


class Trace:
    """A thread-safe flat span collection for one logical request."""

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id if trace_id is not None else new_id()
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def extend_dicts(
        self, span_dicts, reparent_roots_to: str | None = None
    ) -> None:
        """Merge foreign span dicts (a worker's piggyback) into this
        trace. Roots among them — spans whose parent isn't in the batch
        — are re-parented under ``reparent_roots_to`` so the stitched
        tree hangs off the coordinator's dispatch span even if a worker
        predates (or dropped) the ``parent_span`` request field."""
        spans = [Span.from_dict(d) for d in span_dicts]
        local_ids = {s.span_id for s in spans}
        for s in spans:
            s.trace_id = self.trace_id
            if reparent_roots_to is not None and s.parent_id not in local_ids:
                s.parent_id = reparent_roots_to
        with self._lock:
            self._spans.extend(spans)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def span_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.spans()]

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "spans": self.span_dicts()}

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        trace = cls(trace_id=data["trace_id"])
        for d in data.get("spans", []):
            trace.add(Span.from_dict(d))
        return trace

    def to_jsonl(self) -> str:
        """One span dict per line — the ``dump_trace()`` export format."""
        return "".join(
            json.dumps(d, sort_keys=True) + "\n" for d in self.span_dicts()
        )

    def __len__(self):
        with self._lock:
            return len(self._spans)


# The ambient (trace, active span id) for this execution context, or
# None when tracing is off — the common case, kept one cheap get() away.
_CURRENT: contextvars.ContextVar[tuple[Trace, str | None] | None] = (
    contextvars.ContextVar("repro_obs_trace", default=None)
)


def current_trace() -> Trace | None:
    state = _CURRENT.get()
    return state[0] if state is not None else None


def current_span_id() -> str | None:
    state = _CURRENT.get()
    return state[1] if state is not None else None


@contextlib.contextmanager
def activate(trace: Trace, span_id: str | None = None):
    """Make ``trace`` ambient for the block (worker request handling,
    coordinator audit bodies). Nesting restores the outer state."""
    token = _CURRENT.set((trace, span_id))
    try:
        yield trace
    finally:
        _CURRENT.reset(token)


class _NoopSpan:
    """What :func:`span` yields when no trace is active: attribute
    writes land in a throwaway dict, ``span_id`` is None."""

    __slots__ = ("attrs",)
    span_id = None

    def __init__(self):
        self.attrs = {}


_UNSET = object()


@contextlib.contextmanager
def span(
    name: str,
    attrs: dict | None = None,
    trace: Trace | None = None,
    parent=_UNSET,
):
    """Record a timed span.

    - ``trace=None`` (default): record into the ambient trace; if none
      is active this is a near-free no-op.
    - ``trace=<Trace>``: record into that trace explicitly (how the
      pool spans from executor threads, where contextvars don't reach).
    - ``parent``: explicit parent span id. Default: the ambient span id
      when recording into the ambient trace (normal nesting), else
      ``None`` (an explicitly-passed foreign trace doesn't inherit
      another trace's ambient parent).

    The yielded span object exposes ``.attrs`` (mutable until exit) and
    ``.span_id``. On exception the span records
    ``attrs["error"] = <exception type name>`` and re-raises.
    """
    ambient = _CURRENT.get()
    target = trace if trace is not None else (
        ambient[0] if ambient is not None else None
    )
    if target is None:
        yield _NoopSpan()
        return

    if parent is _UNSET:
        parent_id = (
            ambient[1]
            if ambient is not None and ambient[0] is target
            else None
        )
    else:
        parent_id = parent

    record = Span(
        name,
        trace_id=target.trace_id,
        parent_id=parent_id,
        start_s=time.time(),
        attrs=dict(attrs) if attrs else {},
    )
    token = _CURRENT.set((target, record.span_id))
    t0 = time.perf_counter()
    try:
        yield record
    except BaseException as exc:
        record.attrs.setdefault("error", type(exc).__name__)
        raise
    finally:
        record.dur_s = time.perf_counter() - t0
        _CURRENT.reset(token)
        target.add(record)
