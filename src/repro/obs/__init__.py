"""Observability: metrics registry, span tracing, text exposition.

The layers under :mod:`repro.api` and :mod:`repro.serving` record into
the process-wide :data:`~repro.obs.metrics.REGISTRY` and — when a trace
is active — into ambient :mod:`~repro.obs.trace` spans. This package
owns the primitives; the metric *names* and span *taxonomy* are
documented in ``docs/API.md`` ("Observability") and are a stable API.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    Stopwatch,
    counter,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.trace import (
    Span,
    Trace,
    activate,
    current_span_id,
    current_trace,
    new_id,
    span,
)
from repro.obs.http import MetricsServer, serve_metrics

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "REGISTRY",
    "Span",
    "Stopwatch",
    "Trace",
    "activate",
    "counter",
    "current_span_id",
    "current_trace",
    "gauge",
    "get_registry",
    "histogram",
    "new_id",
    "serve_metrics",
    "span",
]
