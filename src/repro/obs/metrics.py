"""A dependency-free metrics registry: counters, gauges, histograms.

The observability spine of the serving stack. Every hot layer —
columnar compilation, scene sessions, standing audits, the worker
pool, the streaming service — records into one process-wide
:class:`MetricsRegistry` (:data:`REGISTRY`), and three surfaces read
it back out:

- :meth:`MetricsRegistry.snapshot` — a plain JSON-serializable dict,
  what the ``metrics`` protocol op returns;
- :meth:`MetricsRegistry.render` — the Prometheus text exposition
  (``# HELP`` / ``# TYPE`` / sample lines), what
  ``cli serve --metrics-addr`` serves over HTTP;
- :meth:`MetricsRegistry.summary` — a compact counter-totals dict,
  folded into the ``health`` op's response.

Design constraints, in order:

1. **Cheap on the hot path.** One increment is one short
   ``dict``-lookup + add under a per-metric lock — no string
   formatting, no allocation beyond the first touch of a label set.
   The warm remote wire bench budget is ≤5% overhead.
2. **Thread-safe.** The pool dispatches partitions from a thread pool
   and the TCP front end runs one handler thread per connection; every
   mutation holds the metric's lock, and concurrent increments are
   exact (asserted by the registry unit tests).
3. **Stable names are an API.** The metric catalogue is documented in
   ``docs/API.md``; renaming a metric is a breaking change, adding one
   is additive.

Labels are passed as keyword arguments at record time
(``counter.inc(op="audit")``); each distinct label-value combination
is its own series. Registration is idempotent: asking the registry for
an existing name returns the existing metric (and raises on a
type/label mismatch, which would otherwise corrupt the exposition).
"""

from __future__ import annotations

import math
import threading
import time

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Stopwatch",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
]

#: Default latency buckets (seconds): sub-millisecond session edits
#: through multi-second cold distributed audits, plus +Inf.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_OK = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str, what: str = "metric") -> str:
    if (
        not name
        or name[0].isdigit()
        or any(ch not in _NAME_OK for ch in name)
    ):
        raise ValueError(
            f"invalid {what} name {name!r}: use [a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


class Stopwatch:
    """The one timing idiom: ``watch = Stopwatch(); ...; watch.s``.

    Replaces the ``t0 = perf_counter()`` / ``perf_counter() - t0``
    pairs that used to be copy-pasted through the pool and service.
    ``.s`` reads the elapsed seconds without stopping anything, so one
    watch can stamp both a success report and an exception path.
    """

    __slots__ = ("_t0",)

    def __init__(self):
        self._t0 = time.perf_counter()

    @property
    def s(self) -> float:
        return time.perf_counter() - self._t0

    def restart(self) -> None:
        self._t0 = time.perf_counter()


class _Metric:
    """Shared series bookkeeping for all three metric kinds."""

    kind = "?"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label, "label")
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.labelnames)}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _label_dict(self, key: tuple) -> dict:
        return dict(zip(self.labelnames, key))


class Counter(_Metric):
    """A monotonically increasing float (optionally labeled)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return float(sum(self._series.values()))

    def series(self) -> list[dict]:
        with self._lock:
            items = list(self._series.items())
        return [
            {"labels": self._label_dict(key), "value": value}
            for key, value in sorted(items)
        ]


class Gauge(_Metric):
    """A value that goes up and down (live sessions, queue depth)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def series(self) -> list[dict]:
        with self._lock:
            items = list(self._series.items())
        return [
            {"labels": self._label_dict(key), "value": value}
            for key, value in sorted(items)
        ]


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram of observations (latencies, sizes).

    Buckets are upper bounds in ascending order; an implicit ``+Inf``
    bucket catches the rest. The exposition renders cumulative bucket
    counts (``le``-labeled), Prometheus-style.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets if not math.isinf(b))
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name!r} buckets must be finite ascending "
                f"upper bounds, got {buckets!r}"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets) + 1
                )
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    class _Timer:
        """``with hist.time(...):`` — observes the block's duration."""

        __slots__ = ("_hist", "_labels", "_watch", "s")

        def __init__(self, hist, labels):
            self._hist = hist
            self._labels = labels
            self._watch = None
            self.s = 0.0

        def __enter__(self):
            self._watch = Stopwatch()
            return self

        def __exit__(self, *exc):
            self.s = self._watch.s
            self._hist.observe(self.s, **self._labels)

    def time(self, **labels) -> "Histogram._Timer":
        return self._Timer(self, labels)

    def series(self) -> list[dict]:
        with self._lock:
            items = [
                (key, list(s.counts), s.sum, s.count)
                for key, s in self._series.items()
            ]
        out = []
        for key, counts, total, count in sorted(items):
            cumulative, acc = {}, 0
            for bound, n in zip(self.buckets, counts):
                acc += n
                cumulative[repr(bound)] = acc
            cumulative["+Inf"] = count
            out.append(
                {
                    "labels": self._label_dict(key),
                    "buckets": cumulative,
                    "sum": total,
                    "count": count,
                }
            )
        return out


class MetricsRegistry:
    """A named collection of metrics with one consistent read surface."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- registration (idempotent, mismatch-checked) -------------------
    def _get_or_create(self, cls, name, help, labelnames, **kw):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{list(existing.labelnames)}"
                    )
                return existing
            metric = cls(name, help, tuple(labelnames), **kw)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- read surfaces --------------------------------------------------
    def snapshot(self) -> dict:
        """Every metric's current state as one JSON-serializable dict."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {
            metric.name: {
                "type": metric.kind,
                "help": metric.help,
                "series": metric.series(),
            }
            for metric in sorted(metrics, key=lambda m: m.name)
        }

    def summary(self) -> dict:
        """Compact counter totals (what ``health`` piggybacks)."""
        with self._lock:
            metrics = list(self._metrics.values())
        out = {}
        for metric in sorted(metrics, key=lambda m: m.name):
            if isinstance(metric, Counter):
                out[metric.name] = metric.total()
        return out

    def render(self) -> str:
        """The Prometheus text exposition (format 0.0.4)."""
        lines: list[str] = []
        for name, data in self.snapshot().items():
            if data["help"]:
                lines.append(f"# HELP {name} {_escape_help(data['help'])}")
            lines.append(f"# TYPE {name} {data['type']}")
            for series in data["series"]:
                labels = series["labels"]
                if data["type"] == "histogram":
                    for bound, count in series["buckets"].items():
                        lines.append(
                            _sample(
                                name + "_bucket",
                                {**labels, "le": bound},
                                count,
                            )
                        )
                    lines.append(_sample(name + "_sum", labels, series["sum"]))
                    lines.append(
                        _sample(name + "_count", labels, series["count"])
                    )
                else:
                    lines.append(_sample(name, labels, series["value"]))
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every metric (test isolation; never call while serving)."""
        with self._lock:
            self._metrics.clear()


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value) -> str:
    value = float(value)
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _sample(name: str, labels: dict, value) -> str:
    if labels:
        body = ",".join(
            f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


#: The process-wide default registry every instrumented layer records
#: into (and the ``metrics`` op / ``--metrics-addr`` exposition reads).
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


def counter(name: str, help: str = "", labelnames=()) -> Counter:
    """Get-or-create a counter on the default registry."""
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "", labelnames=()) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return REGISTRY.gauge(name, help, labelnames)


def histogram(
    name: str, help: str = "", labelnames=(),
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return REGISTRY.histogram(name, help, labelnames, buckets=buckets)
