"""A trivial HTTP exposition endpoint for the metrics registry.

``cli serve --metrics-addr HOST:PORT`` calls :func:`serve_metrics`,
which answers every GET with the Prometheus text exposition of the
default registry. Deliberately minimal — no routing, no keep-alive, no
dependency on ``http.server``'s per-request logging — because scrapes
are rare (every 15–60 s) and the serving hot path must not share
threads with them.
"""

from __future__ import annotations

import socketserver
import threading

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["MetricsServer", "serve_metrics"]


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        # Consume request line + headers (ignored) up to the blank line.
        try:
            line = self.rfile.readline(8192)
            while line not in (b"", b"\r\n", b"\n"):
                line = self.rfile.readline(8192)
        except OSError:
            return
        body = self.server.registry.render().encode("utf-8")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        try:
            self.wfile.write(head + body)
        except OSError:
            pass


class MetricsServer(socketserver.ThreadingTCPServer):
    """Owns the listening socket and its daemon accept thread."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, registry: MetricsRegistry):
        super().__init__(address, _Handler)
        self.registry = registry
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[:2]

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def serve_metrics(
    host: str = "127.0.0.1",
    port: int = 0,
    registry: MetricsRegistry | None = None,
) -> MetricsServer:
    """Start serving the text exposition; returns the running server.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.address``. Call ``server.stop()`` to shut down.
    """
    if registry is None:
        registry = get_registry()
    return MetricsServer((host, port), registry).start()
