"""LOA beyond AV perception: finding label errors in time-series data.

The paper's discussion (§10) conjectures that Fixy "may also be
applicable to other domains with temporal aspects, such as audio or time
series data". This module substantiates that: it maps labeled *events*
over a univariate time series into the LOA scene model, after which the
entire unmodified core — association, feature-distribution learning,
factor-graph scoring, the missing-track application — works as-is.

Mapping (the only domain-specific code):

- a recording session        → a scene;
- fixed-length windows       → frames;
- one annotated event        → one observation per window it overlaps,
  whose "box" encodes the event geometrically: x = time (s), length =
  the within-window duration (s), height = 1 + amplitude; y/width/z are
  inert. Multi-window events therefore become multi-frame tracks via the
  standard IoU/center-distance tracker, exactly like vehicles.

Known limitation: two events that overlap *in time* occupy the same
1-D axis and cannot be told apart by geometry alone (the analogue of two
boxes at the same pose); multichannel series would map channels onto the
unused y axis.

A synthetic generator plus annotator/detector simulators (with recorded
error injection, mirroring :mod:`repro.labelers`) make the loop
self-contained: generate recordings, corrupt the labels, learn event
feature distributions from the labeled recordings, and rank model-only
event tracks to find what the annotator missed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.association import TrackBuilder, TemporalAffinity, CenterDistanceBundler
from repro.core.features import FeatureContext, ObservationFeature, TransitionFeature
from repro.core.model import SOURCE_HUMAN, SOURCE_MODEL, Observation, Scene
from repro.geometry import Box3D

__all__ = [
    "SeriesEvent",
    "Recording",
    "RecordingLabels",
    "generate_recording",
    "annotate_recording",
    "EventDurationFeature",
    "EventAmplitudeFeature",
    "AmplitudeDriftFeature",
    "events_to_observations",
    "build_event_scene",
    "timeseries_features",
]


@dataclass(frozen=True)
class SeriesEvent:
    """One annotated event on a time series.

    Attributes:
        start_s, end_s: Event extent in seconds (end exclusive, > start).
        amplitude: Peak excursion above the baseline (arbitrary units).
        event_class: Event category (e.g. ``"spike"``, ``"surge"``).
    """

    start_s: float
    end_s: float
    amplitude: float
    event_class: str

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError(
                f"event must have positive duration, got [{self.start_s}, {self.end_s})"
            )
        if self.amplitude <= 0:
            raise ValueError(f"amplitude must be positive, got {self.amplitude}")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class Recording:
    """A synthetic time series with its ground-truth events."""

    recording_id: str
    sample_rate_hz: float
    values: np.ndarray
    events: list[SeriesEvent] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return len(self.values) / self.sample_rate_hz


@dataclass
class RecordingLabels:
    """Observations produced by the annotator/detector simulators, plus
    the identities of the events each source missed (the error ledger of
    this domain)."""

    recording: Recording
    human_observations: list[Observation]
    model_observations: list[Observation]
    human_missed: list[SeriesEvent]
    model_missed: list[SeriesEvent]
    ghost_events: list[SeriesEvent]


# ---------------------------------------------------------------------------
# Synthetic generation
# ---------------------------------------------------------------------------
_EVENT_PRIORS = {
    # event class: (duration mean s, duration sigma, amplitude mean, amp sigma)
    "spike": (0.8, 0.25, 4.0, 0.8),
    "surge": (6.0, 1.5, 1.8, 0.4),
}


def generate_recording(
    recording_id: str,
    seed: int,
    duration_s: float = 120.0,
    sample_rate_hz: float = 10.0,
    events_per_minute: float = 3.0,
) -> Recording:
    """Generate a noisy baseline signal with injected events.

    Events are drawn from two classes with distinct duration/amplitude
    statistics — the analogue of cars vs pedestrians for the
    class-conditional feature distributions.
    """
    rng = np.random.default_rng(seed)
    n = int(duration_s * sample_rate_hz)
    # AR(1) baseline noise.
    noise = np.zeros(n)
    for i in range(1, n):
        noise[i] = 0.9 * noise[i - 1] + rng.normal(0.0, 0.1)
    values = noise

    events: list[SeriesEvent] = []
    n_events = rng.poisson(events_per_minute * duration_s / 60.0)
    for _ in range(int(n_events)):
        event_class = str(rng.choice(list(_EVENT_PRIORS)))
        dur_mean, dur_sigma, amp_mean, amp_sigma = _EVENT_PRIORS[event_class]
        duration = max(float(rng.normal(dur_mean, dur_sigma)), 0.2)
        amplitude = max(float(rng.normal(amp_mean, amp_sigma)), 0.3)
        start = float(rng.uniform(0.0, max(duration_s - duration, 1.0)))
        event = SeriesEvent(start, start + duration, amplitude, event_class)
        events.append(event)
        # Stamp the event into the signal as a smooth bump.
        i0, i1 = int(start * sample_rate_hz), int(event.end_s * sample_rate_hz)
        if i1 > i0:
            bump = np.hanning(max(i1 - i0, 2))
            values[i0:i1] += amplitude * bump[: i1 - i0]

    return Recording(
        recording_id=recording_id,
        sample_rate_hz=sample_rate_hz,
        values=values,
        events=sorted(events, key=lambda e: e.start_s),
    )


def annotate_recording(
    recording: Recording,
    seed: int,
    human_miss_rate: float = 0.15,
    model_miss_rate: float = 0.05,
    ghost_rate_per_minute: float = 0.5,
    jitter_s: float = 0.15,
) -> RecordingLabels:
    """Simulate a human annotator and an event-detection model.

    Both sources independently miss events; the model additionally
    hallucinates ghost events with implausible duration/amplitude
    combinations. Every corruption is recorded so evaluation is exact.
    """
    rng = np.random.default_rng(seed)
    human_events, human_missed = [], []
    model_events, model_missed = [], []
    for event in recording.events:
        if rng.random() < human_miss_rate:
            human_missed.append(event)
        else:
            human_events.append((_jitter(event, rng, jitter_s), event))
        if rng.random() < model_miss_rate:
            model_missed.append(event)
        else:
            model_events.append((_jitter(event, rng, jitter_s), event))

    ghosts: list[SeriesEvent] = []
    n_ghosts = rng.poisson(ghost_rate_per_minute * recording.duration_s / 60.0)
    for _ in range(int(n_ghosts)):
        # Ghosts pair a spike-like duration with a surge-like amplitude
        # (or vice versa) — unlikely under the learned class-conditional
        # distributions.
        event_class = str(rng.choice(list(_EVENT_PRIORS)))
        other = "surge" if event_class == "spike" else "spike"
        duration = max(float(rng.normal(*_EVENT_PRIORS[other][:2])), 0.2)
        amplitude = max(
            float(rng.normal(*_EVENT_PRIORS[other][2:])) * 1.5, 0.3
        )
        start = float(rng.uniform(0.0, max(recording.duration_s - duration, 1.0)))
        ghosts.append(SeriesEvent(start, start + duration, amplitude, event_class))

    human_obs = events_to_observations(
        [e for e, _ in human_events],
        SOURCE_HUMAN,
        recording,
        originals=[orig for _, orig in human_events],
    )
    model_obs = events_to_observations(
        [e for e, _ in model_events] + ghosts,
        SOURCE_MODEL,
        recording,
        confidence=0.8,
        originals=[orig for _, orig in model_events] + [None] * len(ghosts),
    )
    return RecordingLabels(
        recording=recording,
        human_observations=human_obs,
        model_observations=model_obs,
        human_missed=human_missed,
        model_missed=model_missed,
        ghost_events=ghosts,
    )


def _jitter(event: SeriesEvent, rng: np.random.Generator, jitter_s: float) -> SeriesEvent:
    shift = float(rng.normal(0.0, jitter_s))
    stretch = float(np.exp(rng.normal(0.0, 0.05)))
    duration = max(event.duration_s * stretch, 0.1)
    start = max(event.start_s + shift, 0.0)
    return SeriesEvent(
        start, start + duration,
        max(event.amplitude * float(np.exp(rng.normal(0.0, 0.08))), 0.05),
        event.event_class,
    )


# ---------------------------------------------------------------------------
# The adapter: events → LOA observations / scenes
# ---------------------------------------------------------------------------
WINDOW_S = 2.0  # one frame per two seconds of signal


def events_to_observations(
    events: list[SeriesEvent],
    source: str,
    recording: Recording,
    confidence: float | None = None,
    window_s: float = WINDOW_S,
    originals: list[SeriesEvent | None] | None = None,
) -> list[Observation]:
    """Encode events as per-window observations.

    An event spanning several windows yields one observation per window;
    the standard tracker then re-links them into one track, just as a
    moving car's per-frame boxes become one track.

    ``originals`` (aligned with ``events``) carries the pre-jitter
    ground-truth event of each annotation; its start time is stored as
    ``metadata["gt_start_s"]`` so evaluation can match annotations back
    to ground truth (``None`` for ghosts).
    """
    if originals is not None and len(originals) != len(events):
        raise ValueError("originals must align with events")
    out: list[Observation] = []
    for idx, event in enumerate(events):
        original = originals[idx] if originals is not None else None
        first = int(event.start_s // window_s)
        last = int(max(event.end_s - 1e-9, event.start_s) // window_s)
        for frame in range(first, last + 1):
            lo = max(event.start_s, frame * window_s)
            hi = min(event.end_s, (frame + 1) * window_s)
            if hi <= lo:
                continue
            out.append(
                Observation(
                    frame=frame,
                    box=Box3D(
                        x=(lo + hi) / 2.0,
                        y=0.0,
                        z=0.5,
                        length=hi - lo,
                        width=1.0,
                        height=1.0 + event.amplitude,
                    ),
                    object_class=event.event_class,
                    source=source,
                    confidence=confidence,
                    metadata={
                        "event_start_s": event.start_s,
                        "event_end_s": event.end_s,
                        "amplitude": event.amplitude,
                        "gt_start_s": None if original is None else original.start_s,
                    },
                )
            )
    return out


def build_event_scene(
    labels: RecordingLabels, window_s: float = WINDOW_S
) -> Scene:
    """Associate a recording's observations into an LOA scene."""
    builder = TrackBuilder(
        bundler=CenterDistanceBundler(max_distance=window_s / 2.0),
        temporal=TemporalAffinity(iou_threshold=0.01, max_center_jump=window_s * 1.5),
        max_gap=1,
    )
    return builder.build_scene(
        labels.recording.recording_id,
        window_s,
        labels.human_observations + labels.model_observations,
    )


# ---------------------------------------------------------------------------
# Domain features (a handful of lines each, per the paper's ethos)
# ---------------------------------------------------------------------------
class EventDurationFeature(ObservationFeature):
    """Class-conditional within-window event duration (s)."""

    name = "event_duration"
    class_conditional = True

    def compute(self, obs: Observation, context: FeatureContext):
        return obs.box.length


class EventAmplitudeFeature(ObservationFeature):
    """Class-conditional event amplitude."""

    name = "event_amplitude"
    class_conditional = True

    def compute(self, obs: Observation, context: FeatureContext):
        return obs.metadata.get("amplitude")


class AmplitudeDriftFeature(TransitionFeature):
    """Amplitude change between adjacent windows of one event."""

    name = "amplitude_drift"

    def compute(self, transition, context: FeatureContext):
        before, after = transition
        a0 = before.representative().metadata.get("amplitude")
        a1 = after.representative().metadata.get("amplitude")
        if a0 is None or a1 is None:
            return None
        return a1 - a0


def timeseries_features() -> list:
    """The default feature set for event-label auditing."""
    return [
        EventDurationFeature(),
        EventAmplitudeFeature(),
        AmplitudeDriftFeature(),
    ]
