"""Simulated human labeling vendor.

Converts ground-truth world scenes into vendor-quality "human-proposed
labels": per-frame 3D boxes with realistic imperfections. Every injected
imperfection is recorded in an :class:`~repro.labelers.errors.ErrorLedger`
so downstream evaluation can audit flagged items automatically.

The error model follows what the paper reports about real vendors:

- whole objects are sometimes **missed entirely** (the dominant and most
  egregious error class, §8.2) — more likely for briefly-visible,
  distant, or small objects, like the occluded motorcycle of Figure 4;
- occasionally an object is labeled but **individual frames are skipped**
  (rare — the paper found exactly one such error across both datasets);
- rarely, the **class is wrong**;
- every box carries small position/dimension/yaw jitter.

Two presets mirror the paper's datasets: a *noisy* profile ("Lyft", which
the paper describes as having "a sheer number of errors") and a *clean*
profile ("internal", which was audited).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.core.model import SOURCE_HUMAN, Observation
from repro.datagen.sensor import VisibilityModel
from repro.datagen.world import WorldObject, WorldScene
from repro.datagen.objects import ObjectClass
from repro.labelers.errors import ErrorLedger, ErrorRecord, ErrorType

__all__ = ["HumanLabelerConfig", "HumanLabeler", "NOISY_VENDOR", "CLEAN_VENDOR"]


@dataclass(frozen=True)
class HumanLabelerConfig:
    """Vendor behaviour parameters.

    Attributes:
        miss_track_base_rate: Baseline probability of missing an object
            entirely.
        short_track_miss_boost: Added miss probability when the object is
            visible for fewer than ``short_track_frames`` frames.
        short_track_frames: Threshold defining "briefly visible".
        far_miss_boost: Added miss probability per meter beyond
            ``far_distance`` (mean distance to ego).
        far_distance: Distance beyond which objects get harder to label.
        small_class_miss_boost: Added miss probability for pedestrians and
            motorcycles (small LIDAR signature).
        miss_frames_rate: Probability that a labeled object has a short
            contiguous run of frames skipped.
        class_flip_rate: Probability that a labeled object gets a wrong
            (but consistent) class.
        pos_sigma, dim_sigma, yaw_sigma: Per-box labeling jitter.
        min_frames_to_label: Vendors do not label objects visible for
            fewer frames than this (treated as a miss).
    """

    miss_track_base_rate: float = 0.05
    short_track_miss_boost: float = 0.35
    short_track_frames: int = 8
    far_miss_boost: float = 0.004
    far_distance: float = 30.0
    small_class_miss_boost: float = 0.10
    miss_frames_rate: float = 0.01
    class_flip_rate: float = 0.01
    pos_sigma: float = 0.06
    dim_sigma: float = 0.02
    yaw_sigma: float = 0.01
    min_frames_to_label: int = 2


NOISY_VENDOR = HumanLabelerConfig(
    miss_track_base_rate=0.16,
    short_track_miss_boost=0.45,
    far_miss_boost=0.006,
    small_class_miss_boost=0.14,
    miss_frames_rate=0.015,
    class_flip_rate=0.02,
    pos_sigma=0.10,
    dim_sigma=0.04,
    yaw_sigma=0.02,
)
"""Vendor profile for the synthetic-Lyft dataset (many missing labels)."""

CLEAN_VENDOR = HumanLabelerConfig(
    miss_track_base_rate=0.04,
    short_track_miss_boost=0.30,
    far_miss_boost=0.002,
    small_class_miss_boost=0.06,
    miss_frames_rate=0.008,
    class_flip_rate=0.005,
    pos_sigma=0.05,
    dim_sigma=0.02,
    yaw_sigma=0.01,
)
"""Vendor profile for the synthetic-internal dataset (audited quality)."""

_SMALL_CLASSES = {ObjectClass.PEDESTRIAN.value, ObjectClass.MOTORCYCLE.value}
_WRONG_CLASS = {
    ObjectClass.CAR.value: ObjectClass.TRUCK.value,
    ObjectClass.TRUCK.value: ObjectClass.CAR.value,
    ObjectClass.PEDESTRIAN.value: ObjectClass.MOTORCYCLE.value,
    ObjectClass.MOTORCYCLE.value: ObjectClass.PEDESTRIAN.value,
}


class HumanLabeler:
    """Simulates a labeling vendor over ground-truth scenes."""

    def __init__(
        self,
        config: HumanLabelerConfig | None = None,
        visibility: VisibilityModel | None = None,
    ):
        self.config = config or HumanLabelerConfig()
        self.visibility = visibility or VisibilityModel()

    # ------------------------------------------------------------------
    def label_scene(
        self, scene: WorldScene, seed: int, ledger: ErrorLedger | None = None
    ) -> tuple[list[Observation], ErrorLedger]:
        """Produce human-proposed labels for one scene.

        Returns the observations and the ledger of injected errors (a new
        ledger unless one is passed in to be extended).
        """
        rng = np.random.default_rng(seed)
        ledger = ledger if ledger is not None else ErrorLedger()
        table = self.visibility.visibility_table(scene)
        observations: list[Observation] = []

        for obj in scene.objects:
            visible = [f for f in obj.present_frames if table[(obj.object_id, f)]]
            if len(visible) < self.config.min_frames_to_label:
                # Not enough signal for any labeler; if the object was ever
                # visible this still counts as an (unavoidable) miss worth
                # auditing, matching how short occluded tracks slip through.
                if visible:
                    ledger.record(
                        self._missing_track_record(scene, obj, visible, reason="too_short")
                    )
                continue

            if rng.random() < self._miss_probability(scene, obj, visible):
                ledger.record(
                    self._missing_track_record(scene, obj, visible, reason="vendor_miss")
                )
                continue

            observations.extend(
                self._label_object(scene, obj, visible, rng, ledger)
            )

        return observations, ledger

    # ------------------------------------------------------------------
    def _miss_probability(
        self, scene: WorldScene, obj: WorldObject, visible: list[int]
    ) -> float:
        cfg = self.config
        prob = cfg.miss_track_base_rate
        if len(visible) < cfg.short_track_frames:
            prob += cfg.short_track_miss_boost
        if obj.object_class.value in _SMALL_CLASSES:
            prob += cfg.small_class_miss_boost
        mean_dist = float(
            np.mean(
                [
                    scene.ego_poses[f].distance_to(obj.poses[f])
                    for f in visible
                ]
            )
        )
        if mean_dist > cfg.far_distance:
            prob += cfg.far_miss_boost * (mean_dist - cfg.far_distance)
        return min(prob, 0.95)

    def _missing_track_record(
        self, scene: WorldScene, obj: WorldObject, visible: list[int], reason: str
    ) -> ErrorRecord:
        return ErrorRecord(
            error_type=ErrorType.MISSING_TRACK,
            scene_id=scene.scene_id,
            source=SOURCE_HUMAN,
            gt_object_id=obj.object_id,
            frames=tuple(visible),
            object_class=obj.object_class.value,
            details={"reason": reason, "n_visible": len(visible)},
        )

    def _label_object(
        self,
        scene: WorldScene,
        obj: WorldObject,
        visible: list[int],
        rng: np.random.Generator,
        ledger: ErrorLedger,
    ) -> list[Observation]:
        cfg = self.config
        frames = list(visible)

        # Rare skipped-frame run (the paper's §8.3 error class). Only drop
        # interior frames so the track remains a track.
        if len(frames) >= cfg.min_frames_to_label + 2 and rng.random() < cfg.miss_frames_rate:
            run_len = int(rng.integers(1, 3))
            start_idx = int(rng.integers(1, len(frames) - run_len))
            dropped = frames[start_idx : start_idx + run_len]
            frames = [f for f in frames if f not in dropped]
            ledger.record(
                ErrorRecord(
                    error_type=ErrorType.MISSING_OBSERVATION,
                    scene_id=scene.scene_id,
                    source=SOURCE_HUMAN,
                    gt_object_id=obj.object_id,
                    frames=tuple(dropped),
                    object_class=obj.object_class.value,
                )
            )

        label_class = obj.object_class.value
        flipped = rng.random() < cfg.class_flip_rate
        if flipped:
            label_class = _WRONG_CLASS[label_class]

        out: list[Observation] = []
        for frame in frames:
            box = obj.box_at(frame)
            assert box is not None  # frames ⊆ present_frames
            noisy = box.jittered(
                rng,
                pos_sigma=cfg.pos_sigma,
                dim_sigma=cfg.dim_sigma,
                yaw_sigma=cfg.yaw_sigma,
            )
            out.append(
                Observation(
                    frame=frame,
                    box=noisy,
                    object_class=label_class,
                    source=SOURCE_HUMAN,
                    confidence=None,
                    metadata={"gt_object_id": obj.object_id},
                )
            )

        if flipped:
            ledger.record(
                ErrorRecord(
                    error_type=ErrorType.CLASS_FLIP,
                    scene_id=scene.scene_id,
                    source=SOURCE_HUMAN,
                    gt_object_id=obj.object_id,
                    frames=tuple(frames),
                    obs_ids=tuple(o.obs_id for o in out),
                    object_class=obj.object_class.value,
                    details={"labeled_as": label_class},
                )
            )
        return out
