"""Ground-truth ledger of injected labeling and model errors.

The paper's evaluation relies on expert auditors manually checking whether
each item Fixy flags is a real error. Our simulators *inject* every error
deliberately, so we record each one in an :class:`ErrorLedger` at injection
time. The evaluation harness then audits flagged items exactly — this is
the substitution that makes automatic precision/recall possible (DESIGN.md
§2).

Error taxonomy (mapping to the paper):

- ``MISSING_TRACK``: a vendor missed an object entirely (§8.2, Figures 1,
  4, 8 — the most egregious error class).
- ``MISSING_OBSERVATION``: a vendor labeled an object but skipped some
  frames (§8.3, Figure 6).
- ``CLASS_FLIP``: a vendor labeled a box with the wrong class.
- ``GHOST_TRACK``: the detector hallucinated a track (Figures 5, 9).
- ``MODEL_CLASS_ERROR`` / ``MODEL_LOCALIZATION_ERROR``: detector errors on
  real objects (§8.4 searches for both "localization and classification
  errors").
"""

from __future__ import annotations

import enum
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["ErrorType", "ErrorRecord", "ErrorLedger"]


class ErrorType(str, enum.Enum):
    """Categories of injected errors."""

    MISSING_TRACK = "missing_track"
    MISSING_OBSERVATION = "missing_observation"
    CLASS_FLIP = "class_flip"
    GHOST_TRACK = "ghost_track"
    MODEL_CLASS_ERROR = "model_class_error"
    MODEL_LOCALIZATION_ERROR = "model_localization_error"

    @property
    def is_label_error(self) -> bool:
        """Errors made by the human labeling vendor."""
        return self in (
            ErrorType.MISSING_TRACK,
            ErrorType.MISSING_OBSERVATION,
            ErrorType.CLASS_FLIP,
        )

    @property
    def is_model_error(self) -> bool:
        """Errors made by the ML detector."""
        return not self.is_label_error


_error_counter = itertools.count()


def _next_error_id() -> str:
    return f"err-{next(_error_counter):08d}"


@dataclass(frozen=True)
class ErrorRecord:
    """One injected error.

    Attributes:
        error_type: Category of the error.
        scene_id: Scene the error lives in.
        source: Which observation source made the error (``"human"`` or
            ``"model"``).
        gt_object_id: The ground-truth object affected; ``None`` for ghost
            tracks, which correspond to no real object.
        frames: Frames affected (e.g. the dropped frames of a missing
            observation, or all visible frames of a missing track).
        obs_ids: Observation ids created *by* the error (ghost boxes,
            flipped-class boxes); empty for pure omissions.
        object_class: Ground-truth class of the affected object (or the
            emitted class for ghosts).
        details: Free-form extras (e.g. jitter magnitude).
        error_id: Unique id, auto-assigned.
    """

    error_type: ErrorType
    scene_id: str
    source: str
    gt_object_id: str | None
    frames: tuple[int, ...]
    obs_ids: tuple[str, ...] = ()
    object_class: str = ""
    details: dict = field(default_factory=dict, compare=False, hash=False)
    error_id: str = field(default_factory=_next_error_id)

    def to_dict(self) -> dict:
        return {
            "error_id": self.error_id,
            "error_type": self.error_type.value,
            "scene_id": self.scene_id,
            "source": self.source,
            "gt_object_id": self.gt_object_id,
            "frames": list(self.frames),
            "obs_ids": list(self.obs_ids),
            "object_class": self.object_class,
            "details": dict(self.details),
        }

    @staticmethod
    def from_dict(data: dict) -> "ErrorRecord":
        return ErrorRecord(
            error_id=data["error_id"],
            error_type=ErrorType(data["error_type"]),
            scene_id=data["scene_id"],
            source=data["source"],
            gt_object_id=data.get("gt_object_id"),
            frames=tuple(data.get("frames", ())),
            obs_ids=tuple(data.get("obs_ids", ())),
            object_class=data.get("object_class", ""),
            details=dict(data.get("details", {})),
        )


class ErrorLedger:
    """Append-only collection of injected errors with query helpers."""

    def __init__(self, records: Iterable[ErrorRecord] = ()):
        self._records: list[ErrorRecord] = list(records)

    def record(self, record: ErrorRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[ErrorRecord]) -> None:
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ErrorRecord]:
        return iter(self._records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def for_scene(self, scene_id: str) -> list[ErrorRecord]:
        return [r for r in self._records if r.scene_id == scene_id]

    def of_type(self, *error_types: ErrorType) -> list[ErrorRecord]:
        wanted = set(error_types)
        return [r for r in self._records if r.error_type in wanted]

    def label_errors(self) -> list[ErrorRecord]:
        return [r for r in self._records if r.error_type.is_label_error]

    def model_errors(self) -> list[ErrorRecord]:
        return [r for r in self._records if r.error_type.is_model_error]

    def for_object(self, gt_object_id: str) -> list[ErrorRecord]:
        return [r for r in self._records if r.gt_object_id == gt_object_id]

    def obs_id_index(self) -> dict[str, ErrorRecord]:
        """Map every error-created observation id to its record."""
        index: dict[str, ErrorRecord] = {}
        for record in self._records:
            for obs_id in record.obs_ids:
                index[obs_id] = record
        return index

    def missing_track_object_ids(self, scene_id: str | None = None) -> set[str]:
        """Ground-truth ids of objects entirely missed by the vendor."""
        out = set()
        for record in self._records:
            if record.error_type is not ErrorType.MISSING_TRACK:
                continue
            if scene_id is not None and record.scene_id != scene_id:
                continue
            if record.gt_object_id is not None:
                out.add(record.gt_object_id)
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps([r.to_dict() for r in self._records]), encoding="utf-8"
        )

    @staticmethod
    def load(path: str | Path) -> "ErrorLedger":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return ErrorLedger(ErrorRecord.from_dict(r) for r in data)
