"""Expert auditor: ground-truth labels and automatic audit decisions.

The paper's third observation source (§8.1) is expert auditor labels —
trusted annotations used to vet scenes. Here the auditor has access to the
simulator's ground truth and the injected-error ledger, so it can:

1. emit perfect ``"auditor"`` observations for a scene (used by the recall
   experiment on the "exhaustively audited" scene), and
2. audit items flagged by Fixy or a baseline, deciding whether each one
   corresponds to a real injected error — replacing the paper's manual
   top-10 checks with exact bookkeeping.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.model import SOURCE_AUDITOR, Observation, ObservationBundle, Track
from repro.datagen.sensor import VisibilityModel
from repro.datagen.world import WorldScene
from repro.labelers.errors import ErrorLedger, ErrorRecord, ErrorType

__all__ = ["AuditDecision", "Auditor"]


@dataclass(frozen=True)
class AuditDecision:
    """Outcome of auditing one flagged item."""

    is_error: bool
    matched: ErrorRecord | None = None
    reason: str = ""


def _majority_gt_object(observations: list[Observation]) -> str | None:
    """The ground-truth object most of the observations belong to.

    Returns ``None`` when the plurality of observations are ghosts (no
    underlying object).
    """
    votes = Counter(o.metadata.get("gt_object_id") for o in observations)
    if not votes:
        return None
    winner, _ = votes.most_common(1)[0]
    return winner


class Auditor:
    """Automatic auditor over a scene's ground truth and error ledger."""

    def __init__(self, scene: WorldScene, ledger: ErrorLedger):
        self.scene = scene
        self.ledger = ledger
        self._obs_error_index = ledger.obs_id_index()
        self._missing_track_ids = ledger.missing_track_object_ids(scene.scene_id)

    # ------------------------------------------------------------------
    # Ground-truth observations
    # ------------------------------------------------------------------
    def make_observations(
        self, visibility: VisibilityModel | None = None
    ) -> list[Observation]:
        """Perfect auditor labels for every visible (object, frame) pair."""
        vis = visibility or VisibilityModel()
        table = vis.visibility_table(self.scene)
        out: list[Observation] = []
        for obj in self.scene.objects:
            for frame in obj.present_frames:
                if not table[(obj.object_id, frame)]:
                    continue
                box = obj.box_at(frame)
                assert box is not None
                out.append(
                    Observation(
                        frame=frame,
                        box=box,
                        object_class=obj.object_class.value,
                        source=SOURCE_AUDITOR,
                        metadata={"gt_object_id": obj.object_id},
                    )
                )
        return out

    # ------------------------------------------------------------------
    # Audit decisions
    # ------------------------------------------------------------------
    def audit_missing_track(self, track: Track) -> AuditDecision:
        """Is this (model-only) track a real object the vendor missed?

        A flagged track is a true positive when the plurality of its
        observations belong to a ground-truth object recorded as a
        ``MISSING_TRACK`` vendor error.
        """
        gt_id = _majority_gt_object(track.observations)
        if gt_id is None:
            return AuditDecision(False, reason="flagged track is a model ghost")
        if gt_id in self._missing_track_ids:
            record = next(
                r
                for r in self.ledger.for_object(gt_id)
                if r.error_type is ErrorType.MISSING_TRACK
                and r.scene_id == self.scene.scene_id
            )
            return AuditDecision(True, matched=record, reason="vendor missed object")
        return AuditDecision(False, reason=f"object {gt_id} was labeled by the vendor")

    def audit_missing_observation(self, bundle: ObservationBundle) -> AuditDecision:
        """Is this (model-only) bundle a frame missing a human label?

        Matches both error categories a human auditor would confirm: the
        vendor labeled the object but skipped this frame
        (``MISSING_OBSERVATION``), or the vendor missed the object
        entirely (``MISSING_TRACK``) and its detections ended up bundled
        into a neighboring labeled track.
        """
        gt_id = _majority_gt_object(bundle.observations)
        if gt_id is None:
            return AuditDecision(False, reason="bundle is a model ghost")
        for record in self.ledger.for_object(gt_id):
            if record.scene_id != self.scene.scene_id:
                continue
            if (
                record.error_type is ErrorType.MISSING_OBSERVATION
                and bundle.frame in record.frames
            ):
                return AuditDecision(True, matched=record, reason="vendor skipped frame")
            if (
                record.error_type is ErrorType.MISSING_TRACK
                and bundle.frame in record.frames
            ):
                return AuditDecision(
                    True, matched=record, reason="object entirely missed by vendor"
                )
        return AuditDecision(False, reason="frame was labeled")

    def audit_model_error(self, track: Track) -> AuditDecision:
        """Does this model track contain a real injected model error?

        True when the track is a ghost (plurality of observations belong to
        no object) or when any member observation was created by a model
        error record (gross localization / classification).
        """
        gt_id = _majority_gt_object(track.observations)
        if gt_id is None:
            ghost_records = [
                self._obs_error_index[o.obs_id]
                for o in track.observations
                if o.obs_id in self._obs_error_index
            ]
            matched = ghost_records[0] if ghost_records else None
            return AuditDecision(True, matched=matched, reason="ghost track")
        for obs in track.observations:
            record = self._obs_error_index.get(obs.obs_id)
            if record is not None and record.error_type.is_model_error:
                return AuditDecision(True, matched=record, reason=record.error_type.value)
        return AuditDecision(False, reason="track matches a real object cleanly")

    def audit_label_error_observation(self, obs: Observation) -> AuditDecision:
        """Was this human observation created by a label error (class flip)?"""
        record = self._obs_error_index.get(obs.obs_id)
        if record is not None and record.error_type.is_label_error:
            return AuditDecision(True, matched=record, reason=record.error_type.value)
        return AuditDecision(False, reason="observation not produced by a label error")
