"""Observation sources: simulated human vendors, detectors, and auditors."""

from repro.labelers.auditor import AuditDecision, Auditor
from repro.labelers.detector import (
    INTERNAL_DETECTOR,
    PUBLIC_DETECTOR,
    DetectorConfig,
    DetectorModel,
)
from repro.labelers.errors import ErrorLedger, ErrorRecord, ErrorType
from repro.labelers.human import (
    CLEAN_VENDOR,
    NOISY_VENDOR,
    HumanLabeler,
    HumanLabelerConfig,
)

__all__ = [
    "AuditDecision",
    "Auditor",
    "CLEAN_VENDOR",
    "DetectorConfig",
    "DetectorModel",
    "ErrorLedger",
    "ErrorRecord",
    "ErrorType",
    "HumanLabeler",
    "HumanLabelerConfig",
    "INTERNAL_DETECTOR",
    "NOISY_VENDOR",
    "PUBLIC_DETECTOR",
]
