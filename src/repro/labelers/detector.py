"""Simulated LIDAR 3D object detector.

Stand-in for the PointPillars/CBGS detectors the paper runs over LIDAR
point clouds [16, 33]. The simulator converts ground-truth scenes into
per-frame box predictions with a confidence score, reproducing the
detector error taxonomy the paper's assertions and experiments target:

- **per-frame misses** whose probability grows with range and occlusion;
- **flicker**: short dropouts inside otherwise-solid tracks (the ad-hoc
  ``flicker`` assertion's target);
- **localization noise** on every box, plus occasional **gross
  localization errors** on a run of frames (§8.4 "localization errors");
- **classification errors** on a run of frames (§8.4 "classification
  errors");
- **ghost tracks**: hallucinated objects, in two flavors — *incoherent*
  (boxes wobble wildly, Figure 5) and *coherent* (boxes overlap smoothly
  across frames but with implausible volume/velocity profiles, Figure 9,
  which defeat the ad-hoc assertions).

Crucially for §8.4, gross errors do **not** necessarily come with low
confidence: a configurable fraction of error boxes get confidence ≥ 0.9,
which is what uncertainty sampling cannot surface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.model import SOURCE_MODEL, Observation
from repro.datagen.objects import CLASS_PRIORS, ObjectClass
from repro.datagen.sensor import VisibilityModel
from repro.datagen.world import WorldObject, WorldScene
from repro.geometry import Box3D, Pose2D
from repro.geometry.box import wrap_angle
from repro.labelers.errors import ErrorLedger, ErrorRecord, ErrorType

__all__ = ["DetectorConfig", "DetectorModel", "PUBLIC_DETECTOR", "INTERNAL_DETECTOR"]

_WRONG_CLASS = {
    ObjectClass.CAR.value: ObjectClass.TRUCK.value,
    ObjectClass.TRUCK.value: ObjectClass.CAR.value,
    ObjectClass.PEDESTRIAN.value: ObjectClass.MOTORCYCLE.value,
    ObjectClass.MOTORCYCLE.value: ObjectClass.PEDESTRIAN.value,
}


@dataclass(frozen=True)
class DetectorConfig:
    """Detector behaviour parameters.

    Attributes:
        detect_prob_near: Detection probability per visible frame at zero
            range.
        detect_prob_decay: Linear decay of detection probability per meter.
        flicker_rate: Probability (per detected object) of a 1–2 frame
            dropout inside the track.
        pos_sigma, dim_sigma, yaw_sigma: Everyday localization noise.
        gross_loc_rate: Probability (per detected object) of a gross
            localization corruption over a short run of frames.
        gross_loc_offset: Magnitude (m) of the gross corruption.
        class_error_rate: Probability (per detected object) of emitting a
            wrong class over a short run of frames.
        ghost_tracks_per_scene: Poisson mean of hallucinated tracks.
        ghost_coherent_fraction: Fraction of ghosts that are *coherent*
            (Figure 9 style) rather than incoherent wobble (Figure 5).
        conf_base: Confidence at zero range for a clean detection.
        conf_range_slope: Confidence drop per meter of range.
        conf_noise: Gaussian noise on confidences.
        error_high_conf_rate: Fraction of gross-localization and
            class-error boxes emitted with *high* confidence (≥0.9) —
            confidently-wrong predictions that defeat uncertainty
            sampling (§8.4).
        ghost_high_conf_rate: Fraction of ghost boxes emitted with high
            confidence (rarer: spurious detections usually score lower).
        ghost_conf_mean: Mean confidence for ordinary ghost boxes.
    """

    detect_prob_near: float = 0.98
    detect_prob_decay: float = 0.004
    flicker_rate: float = 0.06
    pos_sigma: float = 0.10
    dim_sigma: float = 0.035
    yaw_sigma: float = 0.02
    gross_loc_rate: float = 0.02
    gross_loc_offset: float = 1.5
    class_error_rate: float = 0.02
    ghost_tracks_per_scene: float = 1.2
    ghost_coherent_fraction: float = 0.45
    conf_base: float = 0.93
    conf_range_slope: float = 0.0035
    conf_noise: float = 0.05
    error_high_conf_rate: float = 0.50
    ghost_high_conf_rate: float = 0.10
    ghost_conf_mean: float = 0.72


PUBLIC_DETECTOR = DetectorConfig(
    detect_prob_near=0.985,
    detect_prob_decay=0.0035,
    flicker_rate=0.10,
    pos_sigma=0.16,
    dim_sigma=0.06,
    yaw_sigma=0.035,
    gross_loc_rate=0.10,
    class_error_rate=0.10,
    ghost_tracks_per_scene=8.0,
    ghost_coherent_fraction=0.55,
    conf_base=0.88,
    conf_noise=0.08,
)
"""Detector trained on noisy public data (the paper's Lyft-trained model,
which it notes is less calibrated than the internal one)."""

INTERNAL_DETECTOR = DetectorConfig(
    detect_prob_near=0.985,
    detect_prob_decay=0.0035,
    flicker_rate=0.05,
    pos_sigma=0.08,
    dim_sigma=0.03,
    yaw_sigma=0.015,
    gross_loc_rate=0.015,
    class_error_rate=0.015,
    ghost_tracks_per_scene=2.0,
    conf_base=0.94,
    conf_noise=0.04,
)
"""Detector trained on audited internal data (better calibrated, §8.2)."""


class DetectorModel:
    """Simulates a 3D LIDAR detector over ground-truth scenes."""

    def __init__(
        self,
        config: DetectorConfig | None = None,
        visibility: VisibilityModel | None = None,
    ):
        self.config = config or DetectorConfig()
        self.visibility = visibility or VisibilityModel()

    # ------------------------------------------------------------------
    def predict_scene(
        self, scene: WorldScene, seed: int, ledger: ErrorLedger | None = None
    ) -> tuple[list[Observation], ErrorLedger]:
        """Run the simulated detector over one scene.

        Returns model observations plus the ledger of injected model
        errors (ghosts, gross localization, classification).
        """
        rng = np.random.default_rng(seed)
        ledger = ledger if ledger is not None else ErrorLedger()
        table = self.visibility.visibility_table(scene)
        observations: list[Observation] = []

        for obj in scene.objects:
            visible = [f for f in obj.present_frames if table[(obj.object_id, f)]]
            if not visible:
                continue
            observations.extend(
                self._predict_object(scene, obj, visible, rng, ledger)
            )

        n_ghosts = int(rng.poisson(self.config.ghost_tracks_per_scene))
        for _ in range(n_ghosts):
            observations.extend(self._ghost_track(scene, rng, ledger))

        return observations, ledger

    # ------------------------------------------------------------------
    # Real-object predictions
    # ------------------------------------------------------------------
    def _detect_prob(self, distance: float) -> float:
        return max(0.05, self.config.detect_prob_near - self.config.detect_prob_decay * distance)

    def _confidence(
        self, rng: np.random.Generator, distance: float, *, error: bool
    ) -> float:
        cfg = self.config
        if error and rng.random() < cfg.error_high_conf_rate:
            # Confidently wrong: the §8.4 errors uncertainty sampling misses.
            return float(np.clip(rng.normal(0.95, 0.02), 0.9, 0.99))
        base = cfg.conf_base - cfg.conf_range_slope * distance
        if error:
            base -= 0.05
        return float(np.clip(rng.normal(base, cfg.conf_noise), 0.05, 0.99))

    def _predict_object(
        self,
        scene: WorldScene,
        obj: WorldObject,
        visible: list[int],
        rng: np.random.Generator,
        ledger: ErrorLedger,
    ) -> list[Observation]:
        cfg = self.config

        # Per-frame detection, range-dependent.
        detected = []
        for frame in visible:
            dist = scene.ego_poses[frame].distance_to(obj.poses[frame])
            if rng.random() < self._detect_prob(dist):
                detected.append(frame)
        if len(detected) < 1:
            return []

        # Flicker: drop a short interior run.
        if len(detected) >= 4 and rng.random() < cfg.flicker_rate:
            run_len = int(rng.integers(1, 3))
            start_idx = int(rng.integers(1, len(detected) - run_len))
            dropped = set(detected[start_idx : start_idx + run_len])
            detected = [f for f in detected if f not in dropped]

        # Choose error windows (if any).
        gross_frames: set[int] = set()
        if len(detected) >= 3 and rng.random() < cfg.gross_loc_rate:
            run_len = int(rng.integers(2, min(5, len(detected)) + 1))
            start_idx = int(rng.integers(0, len(detected) - run_len + 1))
            gross_frames = set(detected[start_idx : start_idx + run_len])

        class_frames: set[int] = set()
        if len(detected) >= 3 and rng.random() < cfg.class_error_rate:
            run_len = int(rng.integers(2, min(6, len(detected)) + 1))
            start_idx = int(rng.integers(0, len(detected) - run_len + 1))
            class_frames = set(detected[start_idx : start_idx + run_len])

        gross_dir = rng.uniform(-math.pi, math.pi)
        out: list[Observation] = []
        gross_obs: list[Observation] = []
        class_obs: list[Observation] = []
        for frame in detected:
            box = obj.box_at(frame)
            assert box is not None
            dist = scene.ego_poses[frame].distance_to(obj.poses[frame])
            noisy = box.jittered(
                rng, pos_sigma=cfg.pos_sigma, dim_sigma=cfg.dim_sigma, yaw_sigma=cfg.yaw_sigma
            )
            is_gross = frame in gross_frames
            is_class_err = frame in class_frames
            if is_gross:
                # Offset the box and inflate/deflate it: a box that still
                # roughly tracks the object (often still overlapping) but
                # is badly localized.
                noisy = noisy.translated(
                    cfg.gross_loc_offset * math.cos(gross_dir),
                    cfg.gross_loc_offset * math.sin(gross_dir),
                ).scaled(float(rng.uniform(0.55, 1.7)))
            emitted_class = obj.object_class.value
            if is_class_err:
                emitted_class = _WRONG_CLASS[emitted_class]
            obs = Observation(
                frame=frame,
                box=noisy,
                object_class=emitted_class,
                source=SOURCE_MODEL,
                confidence=self._confidence(rng, dist, error=is_gross or is_class_err),
                metadata={"gt_object_id": obj.object_id},
            )
            out.append(obs)
            if is_gross:
                gross_obs.append(obs)
            if is_class_err:
                class_obs.append(obs)

        if gross_obs:
            ledger.record(
                ErrorRecord(
                    error_type=ErrorType.MODEL_LOCALIZATION_ERROR,
                    scene_id=scene.scene_id,
                    source=SOURCE_MODEL,
                    gt_object_id=obj.object_id,
                    frames=tuple(o.frame for o in gross_obs),
                    obs_ids=tuple(o.obs_id for o in gross_obs),
                    object_class=obj.object_class.value,
                    details={"offset_m": cfg.gross_loc_offset},
                )
            )
        if class_obs:
            ledger.record(
                ErrorRecord(
                    error_type=ErrorType.MODEL_CLASS_ERROR,
                    scene_id=scene.scene_id,
                    source=SOURCE_MODEL,
                    gt_object_id=obj.object_id,
                    frames=tuple(o.frame for o in class_obs),
                    obs_ids=tuple(o.obs_id for o in class_obs),
                    object_class=obj.object_class.value,
                    details={"emitted_as": class_obs[0].object_class},
                )
            )
        return out

    # ------------------------------------------------------------------
    # Ghost tracks
    # ------------------------------------------------------------------
    def _ghost_track(
        self, scene: WorldScene, rng: np.random.Generator, ledger: ErrorLedger
    ) -> list[Observation]:
        cfg = self.config
        coherent = rng.random() < cfg.ghost_coherent_fraction
        n_frames = int(rng.integers(3, 9))
        start_frame = int(rng.integers(0, max(scene.n_frames - n_frames, 1)))
        anchor = scene.ego_poses[min(start_frame, scene.n_frames - 1)]
        radius = float(rng.uniform(6.0, 35.0))
        bearing = float(rng.uniform(-math.pi, math.pi))
        cx = anchor.x + radius * math.cos(bearing)
        cy = anchor.y + radius * math.sin(bearing)
        ghost_class = str(
            rng.choice([c.value for c in (ObjectClass.CAR, ObjectClass.TRUCK)])
        )
        prior = CLASS_PRIORS[ObjectClass(ghost_class)]

        # Incoherent ghosts usually also flicker (the classic spurious-
        # detection signature the ad-hoc assertions were written for);
        # coherent ghosts stay solid tracks the assertions cannot see.
        dropped_frame = -1
        if not coherent and n_frames >= 4 and rng.random() < 0.6:
            dropped_frame = start_frame + int(rng.integers(1, n_frames - 1))

        out: list[Observation] = []
        length, width, height = prior.length_mean, prior.width_mean, prior.height_mean
        yaw = float(rng.uniform(-math.pi, math.pi))
        for i in range(n_frames):
            frame = start_frame + i
            if frame >= scene.n_frames:
                break
            if frame == dropped_frame:
                continue
            if coherent:
                # Figure 9 style: boxes overlap frame to frame (small drift)
                # but the size pumps up and down implausibly and the heading
                # swings — consistent overlap, inconsistent object.
                cx += float(rng.normal(0.0, 0.35))
                cy += float(rng.normal(0.0, 0.35))
                pump = float(np.exp(rng.normal(0.0, 0.28)))
                box = Box3D(
                    x=cx,
                    y=cy,
                    z=prior.z_center,
                    length=max(length * pump, 0.5),
                    width=max(width * pump, 0.4),
                    height=max(height * float(np.exp(rng.normal(0.0, 0.2))), 0.4),
                    yaw=wrap_angle(yaw + float(rng.normal(0.0, 0.5))),
                )
            else:
                # Figure 5 style: boxes jump around with little overlap
                # (but within tracker gating, so they still form a track
                # of wildly inconsistent predictions, as in the figure).
                box = Box3D(
                    x=cx + float(rng.normal(0.0, 1.4)),
                    y=cy + float(rng.normal(0.0, 1.4)),
                    z=prior.z_center,
                    length=max(length * float(np.exp(rng.normal(0.0, 0.4))), 0.5),
                    width=max(width * float(np.exp(rng.normal(0.0, 0.4))), 0.4),
                    height=max(height * float(np.exp(rng.normal(0.0, 0.3))), 0.4),
                    yaw=float(rng.uniform(-math.pi, math.pi)),
                )
            dist = scene.ego_poses[frame].distance_to(Pose2D(box.x, box.y))
            if rng.random() < cfg.ghost_high_conf_rate:
                conf = float(np.clip(rng.normal(0.95, 0.02), 0.9, 0.99))
            else:
                conf = float(np.clip(rng.normal(cfg.ghost_conf_mean, 0.15), 0.05, 0.99))
            out.append(
                Observation(
                    frame=frame,
                    box=box,
                    object_class=ghost_class,
                    source=SOURCE_MODEL,
                    confidence=conf,
                    metadata={"gt_object_id": None, "ghost": True},
                )
            )

        if out:
            ledger.record(
                ErrorRecord(
                    error_type=ErrorType.GHOST_TRACK,
                    scene_id=scene.scene_id,
                    source=SOURCE_MODEL,
                    gt_object_id=None,
                    frames=tuple(o.frame for o in out),
                    obs_ids=tuple(o.obs_id for o in out),
                    object_class=ghost_class,
                    details={"coherent": coherent},
                )
            )
        return out
