"""JSON (de)serialization for fitted distributions.

Lets a learned Fixy model be persisted next to the label store and
reloaded without refitting (the offline phase can be hours on real
fleets). Only plain-JSON types are emitted — no pickle — so saved models
are portable and diffable.

Each distribution serializes as ``{"kind": ..., ...params}``; register
custom kinds via :func:`register_codec`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.histogram import HistogramDensity
from repro.distributions.kde import GaussianKDE
from repro.distributions.parametric import Bernoulli, Categorical, Gaussian1D

__all__ = ["to_dict", "from_dict", "register_codec"]


def _kde_to_dict(dist: GaussianKDE) -> dict:
    return {
        "data": dist._data.tolist(),
        "bandwidth": dist.bandwidth.tolist(),
    }


def _kde_from_dict(data: dict) -> GaussianKDE:
    return GaussianKDE(
        np.asarray(data["data"], dtype=float),
        bandwidth=np.asarray(data["bandwidth"], dtype=float),
    )


def _hist_to_dict(dist: HistogramDensity) -> dict:
    return {
        "edges": dist.edges.tolist(),
        "density": dist._density.tolist(),
        "n": dist.n_samples,
    }


def _hist_from_dict(data: dict) -> HistogramDensity:
    # Rebuild through the public constructor is impossible (it refits), so
    # restore the internal state directly.
    hist = HistogramDensity.__new__(HistogramDensity)
    hist._edges = np.asarray(data["edges"], dtype=float)
    hist._density = np.asarray(data["density"], dtype=float)
    hist._n = int(data["n"])
    hist.dim = 1
    return hist


def _gaussian_to_dict(dist: Gaussian1D) -> dict:
    return {"mean": dist.mean, "std": dist.std}


def _gaussian_from_dict(data: dict) -> Gaussian1D:
    return Gaussian1D(float(data["mean"]), float(data["std"]))


def _bernoulli_to_dict(dist: Bernoulli) -> dict:
    return {"p": dist.p, "n": dist.n_samples}


def _bernoulli_from_dict(data: dict) -> Bernoulli:
    dist = Bernoulli(float(data["p"]))
    dist._n = int(data.get("n", 0))
    return dist


def _categorical_to_dict(dist: Categorical) -> dict:
    return {"probs": dict(dist.probs), "n": dist.n_samples}


def _categorical_from_dict(data: dict) -> Categorical:
    dist = Categorical({str(k): float(v) for k, v in data["probs"].items()})
    dist._n = int(data.get("n", 0))
    return dist


_CODECS: dict[str, tuple[type, Callable, Callable]] = {
    "kde": (GaussianKDE, _kde_to_dict, _kde_from_dict),
    "histogram": (HistogramDensity, _hist_to_dict, _hist_from_dict),
    "gaussian": (Gaussian1D, _gaussian_to_dict, _gaussian_from_dict),
    "bernoulli": (Bernoulli, _bernoulli_to_dict, _bernoulli_from_dict),
    "categorical": (Categorical, _categorical_to_dict, _categorical_from_dict),
}


def register_codec(
    kind: str,
    cls: type,
    encode: Callable[[Distribution], dict],
    decode: Callable[[dict], Distribution],
    overwrite: bool = False,
) -> None:
    """Register (de)serialization for a custom distribution type."""
    if kind in _CODECS and not overwrite:
        raise ValueError(f"codec {kind!r} already registered")
    _CODECS[kind] = (cls, encode, decode)


def to_dict(dist: Distribution) -> dict:
    """Serialize a fitted distribution to a JSON-safe dict."""
    for kind, (cls, encode, _) in _CODECS.items():
        if type(dist) is cls:
            payload = encode(dist)
            payload["kind"] = kind
            return payload
    raise TypeError(
        f"no codec registered for {type(dist).__name__}; use register_codec"
    )


def from_dict(data: dict) -> Distribution:
    """Reconstruct a distribution serialized by :func:`to_dict`."""
    kind = data.get("kind")
    if kind not in _CODECS:
        raise ValueError(f"unknown distribution kind {kind!r}")
    _, _, decode = _CODECS[kind]
    return decode(data)
