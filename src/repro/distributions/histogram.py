"""Histogram density estimation (1-D).

A simple alternative to the KDE for users who want hard support bounds or
very fast evaluation. Bin count defaults to the Freedman–Diaconis rule.
Out-of-range queries get zero density (callers that need a floor apply it
at scoring time).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import FittableDistribution, as_2d

__all__ = ["HistogramDensity", "freedman_diaconis_bins"]


def freedman_diaconis_bins(values: np.ndarray) -> int:
    """Freedman–Diaconis bin count, clamped to [4, 256]."""
    arr = np.asarray(values, dtype=float).ravel()
    n = arr.size
    if n < 2:
        return 4
    q75, q25 = np.percentile(arr, [75, 25])
    iqr = q75 - q25
    if iqr <= 0:
        return 4
    width = 2 * iqr / n ** (1 / 3)
    span = arr.max() - arr.min()
    if width <= 0 or span <= 0:
        return 4
    return int(np.clip(np.ceil(span / width), 4, 256))


class HistogramDensity(FittableDistribution):
    """A normalized 1-D histogram as a density."""

    def __init__(self, data, bins: int | None = None):
        arr = as_2d(data)
        if arr.shape[1] != 1:
            raise ValueError("HistogramDensity is 1-D only")
        flat = arr[:, 0]
        if flat.size < 1:
            raise ValueError("histogram requires at least one sample")
        if not np.isfinite(flat).all():
            raise ValueError("histogram training data must be finite")
        n_bins = bins if bins is not None else freedman_diaconis_bins(flat)
        if n_bins < 1:
            raise ValueError(f"bins must be >= 1, got {n_bins}")
        lo, hi = float(flat.min()), float(flat.max())
        if lo == hi:
            # Degenerate data: one tight bin around the single value.
            lo, hi = lo - 0.5, hi + 0.5
        self._edges = np.linspace(lo, hi, n_bins + 1)
        counts, _ = np.histogram(flat, bins=self._edges)
        widths = np.diff(self._edges)
        self._density = counts / (counts.sum() * widths)
        self._n = flat.size
        self.dim = 1

    @classmethod
    def fit(cls, values) -> "HistogramDensity":
        return cls(values)

    @property
    def n_samples(self) -> int:
        return self._n

    @property
    def edges(self) -> np.ndarray:
        return self._edges.copy()

    def pdf(self, values):
        scalar_input = np.isscalar(values)
        arr = as_2d(values)[:, 0]
        idx = np.searchsorted(self._edges, arr, side="right") - 1
        # Points exactly at the right edge belong to the last bin.
        idx = np.where(arr == self._edges[-1], len(self._density) - 1, idx)
        valid = (idx >= 0) & (idx < len(self._density))
        out = np.zeros_like(arr)
        out[valid] = self._density[idx[valid]]
        return self._finalize(out, scalar_input)
