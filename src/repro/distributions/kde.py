"""Gaussian kernel density estimation, implemented from scratch.

The paper: "By default, Fixy uses a kernel density estimator (KDE) to
learn feature distributions over the features" (§5.2), with default
hyperparameters. This is that default estimator.

The implementation is a product-kernel Gaussian KDE with a diagonal
bandwidth matrix chosen by Scott's or Silverman's rule. Log densities are
computed with a numerically stable log-sum-exp, since downstream scoring
(Eq. 2) sums log likelihoods and tail values matter.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import FittableDistribution, as_2d

__all__ = ["GaussianKDE", "scott_bandwidth", "silverman_bandwidth"]


def _spread(data: np.ndarray) -> np.ndarray:
    """Robust per-dimension scale: min(std, IQR/1.349), floored.

    Using the IQR guards the bandwidth against outliers (a handful of
    gross labeling errors in the training labels should not flatten the
    density learned from the clean majority — the whole point is that the
    training data is "possibly noisy").
    """
    std = data.std(axis=0, ddof=1) if data.shape[0] > 1 else np.zeros(data.shape[1])
    q75, q25 = np.percentile(data, [75, 25], axis=0)
    iqr_scale = (q75 - q25) / 1.349
    scale = np.where(iqr_scale > 0, np.minimum(std, iqr_scale), std)
    # Degenerate (constant) dimensions get a tiny positive width so the
    # KDE remains a proper density; non-degenerate dimensions keep their
    # robust scale untouched.
    fallback = np.maximum(1e-3 * np.maximum(np.abs(data).max(axis=0), 1.0), 1e-6)
    scale = np.where(scale > 0, scale, fallback)
    # Absolute floor: a subnormal-but-positive IQR would otherwise produce
    # a bandwidth whose standardized distances overflow to inf.
    return np.maximum(scale, 1e-60 * np.maximum(np.abs(data).max(axis=0), 1.0))


def scott_bandwidth(data: np.ndarray) -> np.ndarray:
    """Scott's rule: ``n^(-1/(d+4))`` times the per-dimension spread."""
    n, d = data.shape
    return _spread(data) * n ** (-1.0 / (d + 4))


def silverman_bandwidth(data: np.ndarray) -> np.ndarray:
    """Silverman's rule: ``(n (d+2) / 4)^(-1/(d+4))`` times the spread."""
    n, d = data.shape
    return _spread(data) * (n * (d + 2) / 4.0) ** (-1.0 / (d + 4))


class GaussianKDE(FittableDistribution):
    """Product-kernel Gaussian KDE with a diagonal bandwidth.

    Args:
        data: Training samples, ``(n,)`` scalars or ``(n, d)`` vectors.
        bandwidth: ``"scott"`` (default), ``"silverman"``, a positive
            scalar, or a per-dimension array.
    """

    def __init__(self, data, bandwidth: str | float | np.ndarray = "scott"):
        samples = as_2d(data)
        if samples.shape[0] < 1:
            raise ValueError("KDE requires at least one sample")
        if not np.isfinite(samples).all():
            raise ValueError("KDE training data must be finite")
        self._data = samples
        self.dim = samples.shape[1]

        if isinstance(bandwidth, str):
            if bandwidth == "scott":
                bw = scott_bandwidth(samples)
            elif bandwidth == "silverman":
                bw = silverman_bandwidth(samples)
            else:
                raise ValueError(f"unknown bandwidth rule {bandwidth!r}")
        else:
            bw = np.broadcast_to(np.asarray(bandwidth, dtype=float), (self.dim,)).copy()
        if (bw <= 0).any():
            raise ValueError(f"bandwidth must be positive, got {bw}")
        self._bandwidth = bw
        # Normalization constant of one product kernel.
        self._log_norm = -0.5 * self.dim * np.log(2 * np.pi) - np.log(bw).sum()

    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, values) -> "GaussianKDE":
        return cls(values)

    @property
    def n_samples(self) -> int:
        return self._data.shape[0]

    @property
    def bandwidth(self) -> np.ndarray:
        return self._bandwidth.copy()

    #: Query rows per evaluation block. Each block's (block, n, d)
    #: intermediate stays cache-resident instead of streaming one huge
    #: (q, n, d) tensor through main memory; per-row results are
    #: identical either way (each row's reduction never crosses rows).
    _block_rows = 128

    # ------------------------------------------------------------------
    def log_pdf(self, values):
        scalar_input = np.isscalar(values) or (
            isinstance(values, np.ndarray) and values.ndim == 0
        )
        queries = as_2d(values, dim=self.dim)
        if queries.shape[1] != self.dim:
            raise ValueError(
                f"query dimension {queries.shape[1]} != KDE dimension {self.dim}"
            )
        n_queries = queries.shape[0]
        if n_queries <= self._block_rows:
            out = self._log_pdf_block(queries)
        else:
            out = np.empty(n_queries)
            for start in range(0, n_queries, self._block_rows):
                stop = start + self._block_rows
                out[start:stop] = self._log_pdf_block(queries[start:stop])
        if scalar_input or (n_queries == 1 and np.asarray(values).ndim <= 1):
            return float(out[0])
        return out

    def _log_pdf_block(self, queries: np.ndarray) -> np.ndarray:
        # (q, n, d) standardized distances; blocks keep this small.
        z = (queries[:, None, :] - self._data[None, :, :]) / self._bandwidth
        log_kernels = self._log_norm - 0.5 * np.einsum("qnd,qnd->qn", z, z)
        # log mean exp over the n training points.
        max_log = log_kernels.max(axis=1, keepdims=True)
        return (
            max_log[:, 0]
            + np.log(np.exp(log_kernels - max_log).sum(axis=1))
            - np.log(self.n_samples)
        )

    def pdf(self, values):
        out = np.exp(self.log_pdf(values))
        return out

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw samples: pick a training point, add kernel noise."""
        idx = rng.integers(0, self.n_samples, size=n)
        noise = rng.normal(0.0, self._bandwidth, size=(n, self.dim))
        out = self._data[idx] + noise
        return out[:, 0] if self.dim == 1 else out
