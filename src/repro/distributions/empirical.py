"""Empirical CDF utilities.

The ECDF supports percentile-style severity transforms: instead of the
raw density, callers can ask "how extreme is this value relative to the
training data" — handy for manually-specified ranking features like
distance-to-AV, where *rank* matters but density does not.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import as_2d

__all__ = ["EmpiricalCDF"]


class EmpiricalCDF:
    """Right-continuous empirical CDF of a 1-D sample."""

    def __init__(self, data):
        arr = as_2d(data)[:, 0]
        if arr.size == 0:
            raise ValueError("ECDF requires at least one sample")
        if not np.isfinite(arr).all():
            raise ValueError("ECDF data must be finite")
        self._sorted = np.sort(arr)

    @property
    def n_samples(self) -> int:
        return self._sorted.size

    def cdf(self, values):
        """P(X <= value) under the empirical distribution."""
        scalar_input = np.isscalar(values)
        arr = as_2d(values)[:, 0]
        ranks = np.searchsorted(self._sorted, arr, side="right")
        out = ranks / self._sorted.size
        return float(out[0]) if scalar_input else out

    def survival(self, values):
        """P(X > value)."""
        out = self.cdf(values)
        return 1.0 - out

    def tail_probability(self, values):
        """Two-sided tail mass: ``2 * min(cdf, 1 - cdf)``, in [0, 1].

        Central values score near 1; extreme values near 0. Useful as a
        calibrated "typicality" in place of a density.
        """
        c = np.atleast_1d(self.cdf(values))
        out = 2.0 * np.minimum(c, 1.0 - c)
        out = np.clip(out, 0.0, 1.0)
        return float(out[0]) if np.isscalar(values) else out

    def quantile(self, q):
        """Inverse CDF at ``q`` in [0, 1] (linear interpolation)."""
        scalar_input = np.isscalar(q)
        arr = np.atleast_1d(np.asarray(q, dtype=float))
        if ((arr < 0) | (arr > 1)).any():
            raise ValueError("quantiles must be in [0, 1]")
        out = np.quantile(self._sorted, arr)
        return float(out[0]) if scalar_input else out
