"""Density/mass estimators used as LOA feature distributions."""

from repro.distributions import serialize
from repro.distributions.base import Distribution, FittableDistribution
from repro.distributions.empirical import EmpiricalCDF
from repro.distributions.fitting import (
    fit_distribution,
    get_fitter,
    register_fitter,
)
from repro.distributions.grid import GriddedDensity
from repro.distributions.histogram import HistogramDensity, freedman_diaconis_bins
from repro.distributions.kde import GaussianKDE, scott_bandwidth, silverman_bandwidth
from repro.distributions.parametric import Bernoulli, Categorical, Gaussian1D

__all__ = [
    "Bernoulli",
    "Categorical",
    "Distribution",
    "EmpiricalCDF",
    "FittableDistribution",
    "Gaussian1D",
    "GaussianKDE",
    "GriddedDensity",
    "HistogramDensity",
    "fit_distribution",
    "freedman_diaconis_bins",
    "get_fitter",
    "register_fitter",
    "scott_bandwidth",
    "serialize",
    "silverman_bandwidth",
]
