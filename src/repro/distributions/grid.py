"""Grid-accelerated evaluation of 1-D kernel densities.

An exact :class:`~repro.distributions.kde.GaussianKDE` evaluation costs
O(n_train) per query — the dominant cost of compiling scenes once the
rest of the pipeline is vectorized (see :mod:`repro.core.columnar`).
Production serving evaluates the *same* fitted density millions of
times, so we precompute its log-density on a uniform grid once and
answer queries by cubic Hermite interpolation in O(log n_nodes).

Accuracy is handled empirically, not hoped for:

- node values **and** analytic first derivatives are computed from the
  exact KDE, so each cell interpolates with O(step⁴) error;
- after building, the grid is validated against the exact density at
  every cell midpoint (the worst case for Hermite error). Validation is
  restricted to the *relevant band* — log densities within ``band`` nats
  of the peak. Anything below that band is orders of magnitude under the
  relative-likelihood floor used by scoring
  (:data:`repro.core.learning.LIKELIHOOD_FLOOR`), where all values clamp
  to the same floor anyway;
- if the in-band midpoint error exceeds ``tol`` the grid is rebuilt once
  at half the spacing; if it still fails, acceleration is declined and
  callers keep the exact path;
- queries outside the grid's range fall back to the exact density.

This is an explicit, bounded approximation: callers opt in via
:meth:`repro.core.learning.LearnedFeatureDistribution.enable_fast_eval`,
and the scalar reference path never uses it.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import as_2d
from repro.distributions.kde import GaussianKDE

__all__ = ["GriddedDensity"]


#: Default in-band midpoint-error tolerance (nats of log density).
DEFAULT_TOL = 1e-5

#: Default band below the density peak that validation must cover, in
#: nats. exp(-32) relative density is ~1e-14 — far below the 1e-12
#: relative-likelihood floor, so everything under the band clamps.
DEFAULT_BAND = 32.0

#: Grid nodes per kernel bandwidth.
DEFAULT_SPACING = 16

#: Grid padding beyond the training data, in bandwidths.
DEFAULT_PAD = 12.0


class GriddedDensity:
    """Cubic-Hermite log-density interpolant over a uniform grid."""

    def __init__(
        self,
        exact: GaussianKDE,
        nodes: np.ndarray,
        log_density: np.ndarray,
        dlog_density: np.ndarray,
        step: float,
        max_in_band_error: float,
    ):
        self.exact = exact
        self.nodes = nodes
        self.log_density = log_density
        self.dlog_density = dlog_density
        self.step = step
        #: validated midpoint error within the relevant band (nats)
        self.max_in_band_error = max_in_band_error

    # ------------------------------------------------------------------
    @staticmethod
    def node_count(dist, spacing: int = DEFAULT_SPACING, pad: float = DEFAULT_PAD) -> int | None:
        """Number of grid nodes a build would use (``None`` if ineligible)."""
        if not isinstance(dist, GaussianKDE) or dist.dim != 1:
            return None
        data = dist._data[:, 0]
        h = float(dist._bandwidth[0])
        span = float(data.max() - data.min()) + 2 * pad * h
        return int(np.ceil(span / (h / spacing))) + 1

    @staticmethod
    def try_build(
        dist,
        tol: float = DEFAULT_TOL,
        spacing: int = DEFAULT_SPACING,
        pad: float = DEFAULT_PAD,
        band: float = DEFAULT_BAND,
        max_nodes: int = 200_000,
    ) -> "GriddedDensity | None":
        """Build and validate a grid; ``None`` when ineligible or failed.

        Eligible distributions are 1-D Gaussian KDEs — the default (and
        expensive) estimator. Cheap estimators (histograms, parametric
        forms) do not benefit.
        """
        if GriddedDensity.node_count(dist, spacing, pad) is None:
            return None
        for attempt_spacing in (spacing, spacing * 2):
            n_nodes = GriddedDensity.node_count(dist, attempt_spacing, pad)
            if n_nodes > max_nodes:
                return None
            grid = GriddedDensity._build(dist, attempt_spacing, pad)
            if grid is None:
                return None
            if grid._validate(tol, band):
                return grid
        return None

    @staticmethod
    def _build(dist: GaussianKDE, spacing: int, pad: float) -> "GriddedDensity | None":
        data = dist._data[:, 0]
        h = float(dist._bandwidth[0])
        if not np.isfinite(h) or h <= 0:
            return None
        step = h / spacing
        lo = float(data.min()) - pad * h
        hi = float(data.max()) + pad * h
        nodes = lo + step * np.arange(int(np.ceil((hi - lo) / step)) + 1)
        log_g, dlog_g = _log_density_and_derivative(dist, nodes)
        return GriddedDensity(
            exact=dist,
            nodes=nodes,
            log_density=log_g,
            dlog_density=dlog_g,
            step=step,
            max_in_band_error=np.inf,
        )

    def _validate(self, tol: float, band: float) -> bool:
        """Check midpoint error in the relevant band (and sanity overall)."""
        midpoints = (self.nodes[:-1] + self.nodes[1:]) / 2.0
        exact = self.exact.log_pdf_batch(midpoints)
        approx = self._interpolate(midpoints)
        error = np.abs(approx - exact)
        in_band = exact >= (self.log_density.max() - band)
        in_band_error = float(error[in_band].max()) if in_band.any() else 0.0
        # Outside the band values clamp to the likelihood floor, but the
        # error still must not be large enough to fake an in-band value.
        if float(error.max()) > band / 8.0:
            return False
        if in_band_error > tol:
            return False
        self.max_in_band_error = in_band_error
        return True

    # ------------------------------------------------------------------
    # Persistence: a validated grid is expensive offline state worth
    # shipping with the model, so serving workers skip the warmup build.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe snapshot (nodes stored as ``lo + step * arange(n)``)."""
        return {
            "lo": float(self.nodes[0]),
            "step": float(self.step),
            "n": int(self.nodes.size),
            "log_density": self.log_density.tolist(),
            "dlog_density": self.dlog_density.tolist(),
            "max_in_band_error": float(self.max_in_band_error),
        }

    @staticmethod
    def from_dict(data: dict, exact: GaussianKDE) -> "GriddedDensity":
        """Restore a grid serialized by :meth:`to_dict`.

        ``exact`` is the fitted KDE the grid approximates (needed for
        out-of-range fallback queries); it is serialized separately,
        alongside the grid, by the learned-model codec. Node positions
        are regenerated with the same ``lo + step * arange`` expression
        the builder uses, so interpolation is bit-identical to the
        original grid's.
        """
        nodes = float(data["lo"]) + float(data["step"]) * np.arange(int(data["n"]))
        return GriddedDensity(
            exact=exact,
            nodes=nodes,
            log_density=np.asarray(data["log_density"], dtype=float),
            dlog_density=np.asarray(data["dlog_density"], dtype=float),
            step=float(data["step"]),
            max_in_band_error=float(data["max_in_band_error"]),
        )

    # ------------------------------------------------------------------
    def log_pdf_batch(self, values) -> np.ndarray:
        """Interpolated log density; exact fallback outside the grid."""
        arr = as_2d(values, dim=1)[:, 0] if np.size(values) else np.empty(0)
        out = np.empty(arr.shape[0])
        inside = (arr >= self.nodes[0]) & (arr <= self.nodes[-1])
        if inside.any():
            out[inside] = self._interpolate(arr[inside])
        if (~inside).any():
            out[~inside] = np.atleast_1d(
                np.asarray(self.exact.log_pdf_batch(arr[~inside]), dtype=float)
            )
        return out

    def _interpolate(self, x: np.ndarray) -> np.ndarray:
        nodes, g, d, step = self.nodes, self.log_density, self.dlog_density, self.step
        idx = np.clip(np.searchsorted(nodes, x, side="right") - 1, 0, len(nodes) - 2)
        t = (x - nodes[idx]) / step
        t2 = t * t
        t3 = t2 * t
        return (
            (2 * t3 - 3 * t2 + 1) * g[idx]
            + (t3 - 2 * t2 + t) * step * d[idx]
            + (-2 * t3 + 3 * t2) * g[idx + 1]
            + (t3 - t2) * step * d[idx + 1]
        )


def _log_density_and_derivative(
    dist: GaussianKDE, x: np.ndarray, block: int = 128
) -> tuple[np.ndarray, np.ndarray]:
    """Exact KDE log density and its x-derivative, evaluated in blocks."""
    data = dist._data[:, 0]
    h = float(dist._bandwidth[0])
    log_norm = float(dist._log_norm)
    n = dist.n_samples
    g = np.empty(x.shape[0])
    dg = np.empty(x.shape[0])
    for start in range(0, x.shape[0], block):
        xs = x[start : start + block]
        z = (xs[:, None] - data[None, :]) / h
        exponents = -0.5 * z * z
        peak = exponents.max(axis=1, keepdims=True)
        weights = np.exp(exponents - peak)
        total = weights.sum(axis=1)
        g[start : start + block] = (
            log_norm + peak[:, 0] + np.log(total) - np.log(n)
        )
        dg[start : start + block] = -(weights * z).sum(axis=1) / (h * total)
    return g, dg
