"""Distribution interfaces for feature-distribution learning.

Fixy's feature distributions (§5) "take sets of observations and output a
probability of seeing a feature of the input". Concretely, each is a
density (or mass) function fitted to historical feature values. This
module defines the common interface; concrete estimators live in the
sibling modules.

All densities accept scalars or 1-D/2-D arrays and broadcast: ``pdf`` of
an ``(n, d)`` batch returns ``(n,)``. Scalar inputs return floats.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Distribution", "FittableDistribution", "as_2d"]


def as_2d(values: np.ndarray | float | list, dim: int | None = None) -> np.ndarray:
    """Coerce feature values to an ``(n, d)`` float array.

    Scalars become ``(1, 1)``; 1-D arrays become ``(n, 1)`` (a batch of
    scalar features) unless ``dim`` says otherwise (e.g. ``dim=2`` turns a
    length-2 vector into one 2-D sample).
    """
    arr = np.atleast_1d(np.asarray(values, dtype=float))
    if arr.ndim == 1:
        if dim is not None and dim > 1:
            if arr.shape[0] != dim:
                raise ValueError(
                    f"expected a {dim}-dimensional sample, got shape {arr.shape}"
                )
            arr = arr.reshape(1, dim)
        else:
            arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"feature values must be at most 2-D, got shape {arr.shape}")
    return arr


class Distribution(ABC):
    """A probability density/mass over feature values."""

    #: Dimensionality of one sample.
    dim: int = 1

    @abstractmethod
    def pdf(self, values) -> np.ndarray | float:
        """Density (or mass) at ``values``."""

    def log_pdf(self, values) -> np.ndarray | float:
        """Natural log of :meth:`pdf`; ``-inf`` where the density is 0.

        Subclasses with numerically better formulations should override.
        """
        with np.errstate(divide="ignore"):
            return np.log(self.pdf(values))

    def log_pdf_batch(self, values) -> np.ndarray:
        """Batched :meth:`log_pdf` with a guaranteed ``(n,)`` result.

        Concrete estimators keep scalar-in/scalar-out conveniences in
        ``pdf``/``log_pdf``; vectorized callers (the columnar compile
        pipeline) need a shape contract instead: any ``(n,)`` or
        ``(n, d)`` batch — including ``n == 0`` and ``n == 1`` — returns a
        float64 array of exactly ``n`` log densities.
        """
        arr = as_2d(values, dim=self.dim) if np.size(values) else np.empty((0, self.dim))
        if arr.shape[0] == 0:
            return np.empty(0, dtype=float)
        out = np.asarray(self.log_pdf(arr), dtype=float)
        return np.atleast_1d(out).reshape(arr.shape[0])

    def _finalize(self, out: np.ndarray, scalar_input: bool):
        """Return a float for scalar inputs, else the array."""
        if scalar_input:
            return float(out[0])
        return out


class FittableDistribution(Distribution):
    """A distribution learned from data via :meth:`fit`."""

    @classmethod
    @abstractmethod
    def fit(cls, values) -> "FittableDistribution":
        """Fit the estimator to historical feature values."""

    @property
    @abstractmethod
    def n_samples(self) -> int:
        """Number of training samples the estimator saw."""
