"""Parametric distributions: Gaussian, Bernoulli, categorical.

The paper notes that "in some cases, other types of distributions are
appropriate (e.g., discrete distributions): the user can override our
default KDE estimator in these cases" (§5.2). The bundle class-agreement
feature, for instance, "would then learn the Bernoulli probability of the
class agreement between observation types".
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.distributions.base import FittableDistribution, as_2d

__all__ = ["Gaussian1D", "Bernoulli", "Categorical"]


class Gaussian1D(FittableDistribution):
    """A univariate normal fitted by maximum likelihood."""

    def __init__(self, mean: float, std: float):
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        self.mean = float(mean)
        self.std = float(std)
        self.dim = 1

    @classmethod
    def fit(cls, values) -> "Gaussian1D":
        arr = as_2d(values)[:, 0]
        if arr.size < 2:
            raise ValueError("Gaussian fit requires at least two samples")
        std = float(arr.std(ddof=1))
        return cls(float(arr.mean()), max(std, 1e-9))

    @property
    def n_samples(self) -> int:  # fitted moments, not stored data
        return 0

    def log_pdf(self, values):
        scalar_input = np.isscalar(values)
        arr = as_2d(values)[:, 0]
        z = (arr - self.mean) / self.std
        out = -0.5 * z**2 - math.log(self.std) - 0.5 * math.log(2 * math.pi)
        return self._finalize(out, scalar_input)

    def pdf(self, values):
        out = np.exp(np.atleast_1d(self.log_pdf(values)))
        return self._finalize(out, np.isscalar(values))


class Bernoulli(FittableDistribution):
    """Probability mass over {0, 1} with Laplace smoothing on fit."""

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = float(p)
        self.dim = 1
        self._n = 0

    @classmethod
    def fit(cls, values) -> "Bernoulli":
        arr = as_2d(values)[:, 0]
        if arr.size == 0:
            raise ValueError("Bernoulli fit requires at least one sample")
        if not np.isin(arr, (0.0, 1.0)).all():
            raise ValueError("Bernoulli data must be 0/1")
        # Laplace (add-one) smoothing keeps both outcomes possible, so
        # log scores stay finite on events unseen in training.
        inst = cls((arr.sum() + 1.0) / (arr.size + 2.0))
        inst._n = int(arr.size)
        return inst

    @property
    def n_samples(self) -> int:
        return self._n

    def pdf(self, values):
        scalar_input = np.isscalar(values)
        arr = as_2d(values)[:, 0]
        out = np.where(arr >= 0.5, self.p, 1.0 - self.p)
        return self._finalize(out, scalar_input)


class Categorical(FittableDistribution):
    """Probability mass over arbitrary hashable categories.

    Unlike the numeric distributions, ``pdf`` takes category values
    (strings etc.), one at a time or as a list.
    """

    def __init__(self, probs: dict):
        if not probs:
            raise ValueError("Categorical needs at least one category")
        total = sum(probs.values())
        if total <= 0:
            raise ValueError("category probabilities must sum to a positive value")
        if any(p < 0 for p in probs.values()):
            raise ValueError("category probabilities must be non-negative")
        self.probs = {k: v / total for k, v in probs.items()}
        self.dim = 1
        self._n = 0

    @classmethod
    def fit(cls, values) -> "Categorical":
        items = list(values)
        if not items:
            raise ValueError("Categorical fit requires at least one sample")
        counts = Counter(items)
        # Add-one smoothing across observed categories.
        inst = cls({k: c + 1.0 for k, c in counts.items()})
        inst._n = len(items)
        return inst

    @property
    def n_samples(self) -> int:
        return self._n

    def pdf(self, values):
        if isinstance(values, (list, tuple, np.ndarray)):
            return np.array([self.probs.get(v, 0.0) for v in values])
        return self.probs.get(values, 0.0)

    def log_pdf(self, values):
        p = self.pdf(values)
        with np.errstate(divide="ignore"):
            return np.log(p) if isinstance(p, np.ndarray) else (
                math.log(p) if p > 0 else -math.inf
            )

    def log_pdf_batch(self, values) -> np.ndarray:
        # Categories are arbitrary hashables, so the numeric as_2d coercion
        # of the base implementation does not apply.
        probs = np.asarray([self.probs.get(v, 0.0) for v in values], dtype=float)
        with np.errstate(divide="ignore"):
            return np.log(probs)
