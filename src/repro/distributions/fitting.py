"""Factory helpers for fitting feature distributions.

Fixy's learner (§5.2) "takes a function that accepts a list of
scalars/vectors and returns a fitted distribution". This module provides
the default such functions and a registry so user code can select
estimators by name.
"""

from __future__ import annotations

from typing import Callable

from repro.distributions.base import FittableDistribution
from repro.distributions.histogram import HistogramDensity
from repro.distributions.kde import GaussianKDE
from repro.distributions.parametric import Bernoulli, Categorical, Gaussian1D

__all__ = ["FitFunction", "fit_distribution", "get_fitter", "register_fitter"]

FitFunction = Callable[[list], FittableDistribution]

_FITTERS: dict[str, FitFunction] = {
    "kde": GaussianKDE.fit,
    "histogram": HistogramDensity.fit,
    "gaussian": Gaussian1D.fit,
    "bernoulli": Bernoulli.fit,
    "categorical": Categorical.fit,
}


def register_fitter(name: str, fitter: FitFunction, overwrite: bool = False) -> None:
    """Register a custom fitting function under ``name``."""
    if name in _FITTERS and not overwrite:
        raise ValueError(f"fitter {name!r} already registered")
    _FITTERS[name] = fitter


def get_fitter(name: str) -> FitFunction:
    """Look up a fitting function by name."""
    try:
        return _FITTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown fitter {name!r}; available: {sorted(_FITTERS)}"
        ) from None


def fit_distribution(values: list, kind: str = "kde") -> FittableDistribution:
    """Fit a distribution of the given kind to feature values."""
    return get_fitter(kind)(values)
