"""ASCII bird's-eye-view rendering of world scenes and LOA scenes.

Terminal-friendly equivalents of the paper's LIDAR figures (concentric
range rings, boxes around the ego): :func:`render_world_frame` draws
ground truth with vendor-missed objects highlighted (Figures 1/8), and
:func:`render_tracks` draws an associated LOA scene's tracks by source
(Figure 2's data panels).

Rendering is pure string manipulation — no display stack required — so
it is usable over ssh, in CI logs, and in doctests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.model import Scene
from repro.datagen.world import WorldScene
from repro.geometry import Pose2D, transform_box

__all__ = ["Canvas", "render_world_frame", "render_tracks"]


@dataclass
class Canvas:
    """A character grid over the ego frame: x forward (up), y left."""

    width: int = 79
    height: int = 39
    half_extent_m: float = 60.0

    def __post_init__(self) -> None:
        if self.width < 5 or self.height < 5:
            raise ValueError("canvas must be at least 5x5")
        if self.half_extent_m <= 0:
            raise ValueError("half_extent_m must be positive")
        self._grid = [[" "] * self.width for _ in range(self.height)]

    def plot(self, x_m: float, y_m: float, char: str) -> bool:
        """Place ``char`` at ego-frame meters; False when out of view."""
        col = int((y_m / self.half_extent_m + 1.0) * (self.width - 1) / 2.0)
        row = int((1.0 - x_m / self.half_extent_m) * (self.height - 1) / 2.0)
        if 0 <= row < self.height and 0 <= col < self.width:
            self._grid[row][col] = char
            return True
        return False

    def draw_range_rings(self, spacing_m: float = 20.0, char: str = ".") -> None:
        """Concentric circles like the paper's LIDAR plots."""
        radius = spacing_m
        while radius < self.half_extent_m:
            for step in range(360):
                angle = math.radians(step)
                self.plot(radius * math.cos(angle), radius * math.sin(angle), char)
            radius += spacing_m

    def render(self) -> str:
        border = "+" + "-" * self.width + "+"
        rows = ["|" + "".join(row) + "|" for row in self._grid]
        return "\n".join([border, *rows, border])


_CLASS_CHARS = {"car": "o", "truck": "T", "pedestrian": "p", "motorcycle": "m"}


def render_world_frame(
    world: WorldScene,
    frame: int,
    missing_ids: set[str] | None = None,
    canvas: Canvas | None = None,
) -> str:
    """Draw one ground-truth frame; vendor-missed objects show as ``X``.

    Args:
        world: The ground-truth scene.
        frame: Frame index.
        missing_ids: Object ids the vendor missed (rendered ``X``).
        canvas: Optional canvas (a fresh default one otherwise).
    """
    if not 0 <= frame < world.n_frames:
        raise IndexError(f"frame {frame} out of range [0, {world.n_frames})")
    missing = missing_ids or set()
    cv = canvas or Canvas()
    cv.draw_range_rings()
    ego = world.ego_poses[frame]
    for obj, box in world.boxes_at(frame):
        local = transform_box(box, ego)
        char = "X" if obj.object_id in missing else _CLASS_CHARS.get(
            obj.object_class.value, "o"
        )
        cv.plot(local.x, local.y, char)
    cv.plot(0.0, 0.0, "E")
    header = (
        f"{world.scene_id} frame {frame} (t={frame * world.dt:.1f}s)  "
        f"E=ego  X=missed  o/T/p/m=car/truck/ped/moto  .=range rings"
    )
    return header + "\n" + cv.render()


def render_tracks(
    scene: Scene,
    frame: int,
    ego: Pose2D | None = None,
    canvas: Canvas | None = None,
) -> str:
    """Draw an associated LOA scene's observations at one frame.

    Human observations render ``h``, model-only ``M``, mixed bundles
    ``B``. ``ego`` defaults to the scene's recorded ego pose at the
    frame (identity if the scene has none).
    """
    cv = canvas or Canvas()
    cv.draw_range_rings()
    if ego is None:
        poses = scene.metadata.get("ego_poses")
        if poses is not None and 0 <= frame < len(poses):
            ego = poses[frame]
        else:
            ego = Pose2D.identity()
    n_drawn = 0
    for track in scene.tracks:
        bundle = track.bundle_at(frame)
        if bundle is None:
            continue
        local = transform_box(bundle.representative().box, ego)
        if bundle.has_human and bundle.has_model:
            char = "B"
        elif bundle.has_human:
            char = "h"
        else:
            char = "M"
        if cv.plot(local.x, local.y, char):
            n_drawn += 1
    cv.plot(0.0, 0.0, "E")
    header = (
        f"{scene.scene_id} frame {frame}: {n_drawn} bundles in view  "
        f"E=ego  h=human  M=model-only  B=both"
    )
    return header + "\n" + cv.render()
