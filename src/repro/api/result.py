"""AuditResult: the one typed result every execution backend returns.

Whatever strategy executed the spec — inline loop, thread pool, process
shards, or a streaming session — the caller gets the same shape: the
ranked :class:`~repro.core.scoring.ScoredItem` list plus
:class:`AuditProvenance` saying exactly what produced it (which backend,
which spec — by hash —, which fitted model — by fingerprint —, how many
scenes, and how long it took). Results round-trip through JSON, so the
serving protocol's ``audit`` op returns this very object and the CLI's
``audit`` subcommand prints it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.api.spec import AuditSpec
from repro.core.scoring import ScoredItem

__all__ = ["AuditProvenance", "AuditResult"]


@dataclass(frozen=True)
class AuditProvenance:
    """How a result came to be (reproducibility metadata).

    Attributes:
        backend: Execution backend name that actually ran.
        spec_hash: :meth:`AuditSpec.spec_hash` of the executed spec.
        model_fingerprint: :meth:`LearnedModel.fingerprint` of the
            fitted model (``None`` for engines with no learnable
            features fitted).
        n_scenes: Scenes ranked.
        api_version: Audit API version that produced the result.
        timings: Wall-clock seconds by phase (at least ``rank_s`` and
            ``total_s``).
        backend_options: Options the backend was constructed with.
        workers: Per-worker partition attribution for distributed
            execution (``None`` for local backends): one dict per
            partition with ``worker`` (address), ``partition`` index,
            ``n_scenes``, ``rank_s``, and ``attempts`` (>1 means the
            partition was requeued off a dead worker).
        trace: The run's stitched span trace
            (:meth:`repro.obs.trace.Trace.to_dict` — ``trace_id`` plus
            a flat span list) when the run was traced, else ``None``.
            Additive: pre-observability results round-trip unchanged.
        stream: Out-of-core resolution stats when the audit streamed a
            warehouse source (``None`` for materialized runs):
            ``corpus_scenes``/``selected_scenes``/``pruned_scenes``
            from indexed predicate pruning, ``batch``/``batches``/
            ``peak_resident_scenes`` for the residency bound, and
            ``compile_cold``/``compile_warm`` for sidecar
            effectiveness. Additive like ``workers``/``trace``.
    """

    backend: str
    spec_hash: str
    model_fingerprint: str | None
    n_scenes: int
    api_version: int
    timings: dict = field(default_factory=dict)
    backend_options: dict = field(default_factory=dict)
    workers: list | None = None
    trace: dict | None = None
    stream: dict | None = None

    def to_dict(self) -> dict:
        out = {
            "backend": self.backend,
            "spec_hash": self.spec_hash,
            "model_fingerprint": self.model_fingerprint,
            "n_scenes": self.n_scenes,
            "api_version": self.api_version,
            "timings": dict(self.timings),
            "backend_options": dict(self.backend_options),
        }
        if self.workers is not None:
            out["workers"] = [dict(w) for w in self.workers]
        if self.trace is not None:
            out["trace"] = {
                "trace_id": self.trace.get("trace_id"),
                "spans": [dict(s) for s in self.trace.get("spans", [])],
            }
        if self.stream is not None:
            out["stream"] = dict(self.stream)
        return out

    @staticmethod
    def from_dict(data: Mapping) -> "AuditProvenance":
        workers = data.get("workers")
        trace = data.get("trace")
        stream = data.get("stream")
        return AuditProvenance(
            backend=data["backend"],
            spec_hash=data["spec_hash"],
            model_fingerprint=data.get("model_fingerprint"),
            n_scenes=int(data["n_scenes"]),
            api_version=int(data["api_version"]),
            timings=dict(data.get("timings", {})),
            backend_options=dict(data.get("backend_options", {})),
            workers=[dict(w) for w in workers] if workers is not None else None,
            trace=dict(trace) if trace is not None else None,
            stream=dict(stream) if stream is not None else None,
        )


@dataclass(frozen=True)
class AuditResult:
    """Scored items + the spec that asked for them + provenance."""

    items: list[ScoredItem]
    spec: AuditSpec
    provenance: AuditProvenance

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[ScoredItem]:
        return iter(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def to_dict(self) -> dict:
        return {
            "items": [item.to_dict(self.spec.kind) for item in self.items],
            "spec": self.spec.to_dict(),
            "provenance": self.provenance.to_dict(),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "AuditResult":
        return AuditResult(
            items=[ScoredItem.from_dict(d) for d in data["items"]],
            spec=AuditSpec.from_dict(data["spec"]),
            provenance=AuditProvenance.from_dict(data["provenance"]),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_json(text: str) -> "AuditResult":
        return AuditResult.from_dict(json.loads(text))

    def dump_trace(self, path) -> int:
        """Write the run's stitched trace as JSONL (one span per line).

        Returns the number of spans written. Raises ``ValueError`` when
        the result has no trace — traces are opt-in
        (``Audit.run(trace=True)`` or ``cli audit --trace PATH``).
        """
        trace = self.provenance.trace
        if trace is None:
            raise ValueError(
                "this result carries no trace; run the audit with "
                "trace=True (or `cli audit --trace PATH`)"
            )
        spans = trace.get("spans", [])
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span, sort_keys=True) + "\n")
        return len(spans)
