"""The Audit façade: validate a spec once, execute it anywhere.

.. code-block:: python

    from repro.api import Audit, AuditSpec, FilterSpec

    spec = AuditSpec(
        kind="tracks",
        filters=FilterSpec(has_model=True, has_human=False),
        top_k=10,
    )
    audit = Audit(spec, train_scenes=historical_scenes)
    result = audit.run(scenes=new_scenes)                  # spec default
    same = audit.run(scenes=new_scenes, backend="sharded") # same ranking

Binding (``Audit(...)``) validates the spec, resolves the engine (an
existing fitted :class:`~repro.core.Fixy`, a saved model from
``spec.model_path``, or a fresh fit on training scenes), and warms the
engine's density grids so every backend evaluates the same accelerated
densities — the precondition for byte-identical rankings across
backends (see :mod:`repro.serving.sharded`). Running executes on any
registered backend and returns a typed
:class:`~repro.api.result.AuditResult` with provenance.
"""

from __future__ import annotations

import contextlib
import time

from repro.api.backends import get_backend
from repro.api.result import AuditProvenance, AuditResult
from repro.api.spec import AuditSpec, build_feature_set
from repro.obs import trace as obs_trace

__all__ = ["API_VERSION", "Audit", "AuditError", "run_audit"]

#: Version of the Audit API surface (recorded in every result's provenance).
API_VERSION = 1


class AuditError(RuntimeError):
    """An audit that cannot be bound or executed as declared."""


class Audit:
    """A validated :class:`AuditSpec` bound to a fitted engine.

    Args:
        spec: The declarative audit (validated here, once).
        fixy: An existing engine to execute on. When given, the spec's
            ``features``/``model_path`` describe intent but the engine
            is used as-is (this is how the streaming service audits
            with its already-loaded model).
        train_scenes: Historical labeled scenes to fit a fresh engine
            on when no ``fixy`` and no ``spec.model_path`` is given.
        warm: Build density grids at bind time (default). Keeps every
            backend on the identical accelerated-density state; turn
            off only for engines whose grids are managed elsewhere.
    """

    def __init__(
        self,
        spec: AuditSpec,
        fixy=None,
        train_scenes=None,
        warm: bool = True,
    ):
        self.spec = spec.validate()
        self.fixy = fixy if fixy is not None else self._build_engine(train_scenes)
        if warm:
            self.fixy.warmup_fast_eval()
        # Compile (and thereby validate) the filter once at bind time.
        self._filter = self.spec.compile_filter()
        #: (backend name, sorted options) -> live executor, so repeated
        #: runs reuse heavy resources (the sharded process pool) instead
        #: of respawning per call. Released by close().
        self._executors: dict = {}

    def _build_engine(self, train_scenes):
        from repro.core.engine import Fixy
        from repro.core.learning import LearnedModel

        fixy = Fixy(build_feature_set(self.spec.features))
        if self.spec.model_path is not None:
            fixy.learned = LearnedModel.load(self.spec.model_path)
            if fixy.fast_density:
                fixy.learned.enable_fast_eval()
            return fixy
        if train_scenes is None and self.spec.scenes is not None:
            if self.spec.scenes.profile is not None:
                train_scenes = self.spec.scenes.resolve_training_scenes()
        if train_scenes is not None:
            fixy.fit(train_scenes)
            return fixy
        if any(f.learnable for f in fixy.features):
            raise AuditError(
                "the spec's feature set has learnable features but no model "
                "source: give the spec a model_path, a profile scene source "
                "(its training split is fitted on), or pass fixy=/train_scenes="
            )
        return fixy

    def run(
        self,
        scenes=None,
        backend: str | None = None,
        trace=None,
        **backend_options,
    ) -> AuditResult:
        """Execute the audit and return a typed result.

        Args:
            scenes: Live scenes to rank; ``None`` resolves the spec's
                declarative scene source.
            backend: Override the spec's backend for this run.
            trace: ``True`` records this run into a fresh
                :class:`~repro.obs.trace.Trace` (or pass an existing
                one) and attaches the stitched span tree — including
                any remote workers' piggybacked spans — to
                ``result.provenance.trace``. The default ``None``
                records into the ambient trace when one is active
                (e.g. a worker serving a traced request) without
                attaching anything: the caller that *owns* the trace
                attaches it exactly once.
            **backend_options: Override/extend the spec's
                ``backend_options`` for this run.
        """
        own: obs_trace.Trace | None = None
        if trace is True:
            own = obs_trace.Trace()
        elif isinstance(trace, obs_trace.Trace):
            own = trace

        t_start = time.perf_counter()
        timings: dict[str, float] = {}
        with contextlib.ExitStack() as stack:
            if own is not None:
                stack.enter_context(obs_trace.activate(own))
            root = stack.enter_context(obs_trace.span("audit"))

            source = None
            if scenes is None:
                if self.spec.scenes is None:
                    raise AuditError(
                        "no scenes to audit: the spec has no scene source and "
                        "none were passed to run()"
                    )
                if self.spec.scenes.is_out_of_core:
                    # Warehouse sources stay lazy: the backend streams
                    # fingerprint batches instead of materializing the
                    # corpus here.
                    source = self.spec.scenes
                else:
                    with obs_trace.span("resolve_scenes"):
                        t0 = time.perf_counter()
                        scenes = self.spec.scenes.resolve()
                        timings["resolve_scenes_s"] = time.perf_counter() - t0
            elif hasattr(scenes, "scene_id"):  # a single live Scene
                scenes = [scenes]
            else:
                scenes = list(scenes)

            backend_name = backend if backend is not None else self.spec.backend
            # The spec's options belong to the spec's backend; when a run
            # overrides the backend, only the per-run options apply.
            options = dict(
                self.spec.backend_options
                if backend_name == self.spec.backend
                else {}
            )
            options.update(backend_options)
            executor = self._executor(backend_name, options)
            root.attrs["backend"] = backend_name
            stream_stats = None
            if source is not None:
                with obs_trace.span(
                    "rank", attrs={"backend": backend_name, "out_of_core": True}
                ):
                    t0 = time.perf_counter()
                    items, stream_stats = executor.run_stream(
                        self.fixy, self.spec, source, self._filter
                    )
                    timings["rank_s"] = time.perf_counter() - t0
                n_scenes = stream_stats["n_scenes"]
                root.attrs["n_scenes"] = n_scenes
            else:
                n_scenes = len(scenes)
                root.attrs["n_scenes"] = n_scenes
                with obs_trace.span(
                    "rank",
                    attrs={"backend": backend_name, "n_scenes": n_scenes},
                ):
                    t0 = time.perf_counter()
                    items = executor.run(
                        self.fixy, self.spec, scenes, self._filter
                    )
                    timings["rank_s"] = time.perf_counter() - t0
            timings["total_s"] = time.perf_counter() - t_start

        extras = executor.provenance_extras()
        learned = self.fixy.learned
        provenance = AuditProvenance(
            backend=backend_name,
            spec_hash=self.spec.spec_hash(),
            model_fingerprint=learned.fingerprint() if learned is not None else None,
            n_scenes=n_scenes,
            api_version=API_VERSION,
            timings=timings,
            backend_options=options,
            workers=extras.get("workers"),
            trace=own.to_dict() if own is not None else None,
            stream=stream_stats,
        )
        return AuditResult(items=items, spec=self.spec, provenance=provenance)

    # ------------------------------------------------------------------
    # Executor lifecycle
    # ------------------------------------------------------------------
    def _executor(self, name: str, options: dict):
        """A (possibly cached) backend executor for this audit.

        Heavy backends hold real resources — the sharded backend owns a
        process pool — so repeated runs against the same backend reuse
        one executor instead of respawning per call. Options with
        unhashable values skip the cache (constructed fresh each run,
        released on the next :meth:`close`... immediately below).
        """
        try:
            key = (
                name,
                tuple(
                    (k, tuple(v) if isinstance(v, list) else v)
                    for k, v in sorted(options.items())
                ),
            )
            executor = self._executors.get(key)
        except TypeError:
            executor = get_backend(name, **options)
            self._executors[object()] = executor  # still owned + closed
            return executor
        if executor is None:
            executor = get_backend(name, **options)
            self._executors[key] = executor
        return executor

    def close(self) -> None:
        """Release every backend executor this audit created (idempotent)."""
        executors, self._executors = self._executors, {}
        for executor in executors.values():
            executor.close()

    def __enter__(self) -> "Audit":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort backstop for un-closed audits
        try:
            self.close()
        except Exception:
            pass


def run_audit(
    spec: AuditSpec,
    scenes=None,
    fixy=None,
    train_scenes=None,
    backend: str | None = None,
    **backend_options,
) -> AuditResult:
    """One-shot convenience: bind, run, and release in a single call."""
    with Audit(spec, fixy=fixy, train_scenes=train_scenes) as audit:
        return audit.run(scenes=scenes, backend=backend, **backend_options)
