"""AuditClient: the in-repo Python client for the serving protocol.

Speaks protocol v1 (:mod:`repro.api.protocol`) over any transport that
maps a request dict to a response dict:

- :meth:`AuditClient.local` — in-process, directly onto a
  :class:`~repro.serving.service.StreamingService` (no serialization
  beyond the protocol's own dicts; ideal for tests and embedding);
- :meth:`AuditClient.over_streams` — line-delimited JSON over a
  reader/writer pair, the framing ``python -m repro.cli serve`` speaks
  on stdio (and the same framing a socket front end would use — the
  ROADMAP's remote-worker item rides on exactly this client).

Failures come back as :class:`~repro.api.protocol.ProtocolError` with
the server's structured code — a typo'd rank kind raises the same
``unknown_rank_kind`` whether it happened in-process or across a pipe.
"""

from __future__ import annotations

import json

from repro.api import protocol
from repro.api.result import AuditResult
from repro.api.spec import AuditSpec

__all__ = ["AuditClient"]


class _StreamTransport:
    """One JSON line out, one JSON line back."""

    def __init__(self, writer, reader):
        self._writer = writer
        self._reader = reader

    def __call__(self, request: dict) -> dict:
        self._writer.write(json.dumps(request) + "\n")
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise protocol.ProtocolError(
                protocol.INTERNAL_ERROR, "server closed the stream"
            )
        return json.loads(line)


class AuditClient:
    """Typed client over a ``dict -> dict`` protocol transport."""

    def __init__(self, transport):
        self._send = transport

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def local(cls, fixy=None, service=None, **service_options) -> "AuditClient":
        """A client wired straight into an in-process service.

        Pass an existing ``service``, or a fitted ``fixy`` to build
        one (``service_options`` forward to
        :class:`~repro.serving.service.StreamingService`).
        """
        if service is None:
            if fixy is None:
                raise ValueError("AuditClient.local needs a fixy or a service")
            from repro.serving.service import StreamingService

            service = StreamingService(fixy, **service_options)
        return cls(service.handle)

    @classmethod
    def over_streams(cls, writer, reader) -> "AuditClient":
        """A client speaking line-delimited JSON over ``writer``/``reader``."""
        return cls(_StreamTransport(writer, reader))

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def _call(self, op: str, **fields) -> dict:
        fields = {k: v for k, v in fields.items() if v is not None}
        response = self._send(protocol.make_request(op, **fields))
        if not isinstance(response, dict):
            raise protocol.ProtocolError(
                protocol.INTERNAL_ERROR,
                f"malformed response: {type(response).__name__}",
            )
        if response.get("ok"):
            version = response.get("v")
            if version != protocol.PROTOCOL_VERSION:
                raise protocol.ProtocolError(
                    protocol.UNSUPPORTED_VERSION,
                    f"server answered in protocol version {version!r}; this "
                    f"client speaks {protocol.PROTOCOL_VERSION}",
                )
            return response
        error = response.get("error")
        if isinstance(error, dict):
            raise protocol.ProtocolError(
                error.get("code", protocol.INTERNAL_ERROR),
                error.get("message", "unknown error"),
                details=error.get("details"),
            )
        # A v0 (string) error from a legacy server.
        raise protocol.ProtocolError(protocol.INTERNAL_ERROR, str(error))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def open_session(self, scene, session_id: str | None = None) -> str:
        """Open a streaming session for ``scene``; returns its id."""
        payload = scene.to_dict() if hasattr(scene, "to_dict") else scene
        return self._call("open", scene=payload, session_id=session_id)[
            "session_id"
        ]

    def edit(self, session_id: str, edit) -> dict:
        """Apply a :class:`~repro.serving.edits.SceneEdit` (or its dict).

        Returns ``{"changed": [track ids], "version": n}``.
        """
        payload = edit.to_dict() if hasattr(edit, "to_dict") else edit
        response = self._call("edit", session_id=session_id, edit=payload)
        return {"changed": response["changed"], "version": response["version"]}

    def rank(
        self,
        session_id: str,
        kind: str = "tracks",
        top_k: int | None = None,
    ) -> list[dict]:
        """Rank a live session's components; returns scored-item dicts."""
        return self._call("rank", session_id=session_id, kind=kind, top_k=top_k)[
            "results"
        ]

    def audit(
        self,
        spec: AuditSpec | dict,
        scenes=None,
        session_id: str | None = None,
    ) -> AuditResult:
        """Execute an :class:`AuditSpec` server-side.

        Either over live server state (``session_id``) or over scenes
        shipped with the request (``scenes``: live Scene objects or
        their dicts). Returns the typed :class:`AuditResult`.
        """
        payload = spec.to_dict() if isinstance(spec, AuditSpec) else spec
        scene_payloads = None
        if scenes is not None:
            if hasattr(scenes, "scene_id"):
                scenes = [scenes]
            scene_payloads = [
                s.to_dict() if hasattr(s, "to_dict") else s for s in scenes
            ]
        response = self._call(
            "audit", spec=payload, scenes=scene_payloads, session_id=session_id
        )
        return AuditResult.from_dict(response["result"])

    def close_session(self, session_id: str) -> bool:
        """Close a session; returns whether it was live."""
        return self._call("close", session_id=session_id)["closed"]

    def stats(self) -> dict:
        """Server-side session-store counters."""
        response = self._call("stats")
        return {k: v for k, v in response.items() if k not in ("ok", "v")}
