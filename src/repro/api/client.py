"""AuditClient: the in-repo Python client for the serving protocol.

Speaks protocol v1 (:mod:`repro.api.protocol`) over any transport that
maps a request dict to a response dict:

- :meth:`AuditClient.local` — in-process, directly onto a
  :class:`~repro.serving.service.StreamingService` (no serialization
  beyond the protocol's own dicts; ideal for tests and embedding);
- :meth:`AuditClient.over_streams` — line-delimited JSON over a
  reader/writer pair, the framing ``python -m repro.cli serve`` speaks
  on stdio (and the same framing the TCP transport uses);
- :meth:`AuditClient.connect` — the same framing over a TCP socket to
  a ``python -m repro.cli serve --listen HOST:PORT`` worker, with a
  per-request timeout (the transport the ``remote`` backend rides);
  pass ``wire="frames"`` to speak the protocol v2 binary framed wire
  (:mod:`repro.api.frames`) on the same port — scene payloads then
  travel as raw packed blobs instead of JSON, and requests can be
  pipelined (:meth:`AuditClient.send_request` /
  :meth:`AuditClient.recv_response`).

Every client speaks one protocol version per connection (``version=``;
default the build's :data:`~repro.api.protocol.PROTOCOL_VERSION`) and
requires the server to answer in kind — the worker pool connects to a
worker at the version its ``hello`` negotiated, which is how a v2
coordinator keeps driving v1-only workers.

Failures come back as :class:`~repro.api.protocol.ProtocolError` with
the server's structured code — a typo'd rank kind raises the same
``unknown_rank_kind`` whether it happened in-process or across a pipe.
Transport failures are typed too: EOF mid-response raises
:class:`~repro.api.protocol.StreamClosedError`, a partial or garbage
response line :class:`~repro.api.protocol.MalformedResponseError`, a
missed deadline :class:`~repro.api.protocol.RequestTimeoutError`, and
a broken v2 frame :class:`~repro.api.protocol.FrameDecodeError` /
:class:`~repro.api.protocol.FrameTooLargeError`.
"""

from __future__ import annotations

import json
import socket as _socket

from repro.api import frames, protocol
from repro.api.result import AuditResult
from repro.api.spec import AuditSpec

__all__ = ["AuditClient", "parse_address"]


def parse_address(address) -> tuple[str, int]:
    """``"host:port"`` (or a ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"worker address must be 'host:port', got {address!r}"
        )
    return host, int(port)


class _StreamTransport:
    """One JSON line out, one JSON line back, with typed failures.

    When built over a socket (``sock``), ``timeout`` is applied per
    request as an *idle* deadline: each underlying socket operation
    (the write, each read while waiting for the response line) must
    make progress within ``timeout`` seconds. A silent server trips it;
    a server that keeps dripping bytes keeps the request alive.
    """

    def __init__(self, writer, reader, sock=None, timeout: float | None = None):
        self._writer = writer
        self._reader = reader
        self._sock = sock
        self.timeout = timeout
        self.bytes_sent = 0
        self.bytes_received = 0

    def __call__(self, request: dict) -> dict:
        try:
            if self._sock is not None:
                self._sock.settimeout(self.timeout)
            line_out = json.dumps(request) + "\n"
            self._writer.write(line_out)
            self._writer.flush()
            self.bytes_sent += len(line_out)
            line = self._reader.readline()
        except (TimeoutError, _socket.timeout):
            raise protocol.RequestTimeoutError(
                f"no response within {self.timeout}s "
                f"(op {request.get('op')!r})"
            ) from None
        except (BrokenPipeError, ConnectionError, OSError, ValueError) as exc:
            # ValueError covers writes on a stream closed under us.
            raise protocol.StreamClosedError(
                f"stream broke mid-request: {exc}"
            ) from None
        if not line:
            raise protocol.StreamClosedError(
                "server closed the stream before responding"
            )
        self.bytes_received += len(line)
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise protocol.MalformedResponseError(
                f"response line is not JSON: {exc}"
            ) from None
        if not isinstance(response, dict):
            raise protocol.MalformedResponseError(
                f"response is not a protocol envelope: "
                f"{type(response).__name__}"
            )
        return response

    def close(self) -> None:
        for resource in (self._writer, self._reader, self._sock):
            if resource is not None:
                try:
                    resource.close()
                except OSError:
                    pass


class _FrameTransport:
    """The protocol v2 binary framed wire over one socket.

    Same request/response dicts as the line-JSON transport, but each
    message is a length-prefixed frame (JSON header + raw blobs, see
    :mod:`repro.api.frames`), and :meth:`send` / :meth:`recv` are
    exposed separately so a coordinator can pipeline several requests
    before reading the first response. ``timeout`` is the same idle
    deadline the stream transport applies.
    """

    class _CountingReader:
        """Binary reader wrapper tallying exact bytes consumed."""

        def __init__(self, raw):
            self._raw = raw
            self.count = 0

        def read(self, n: int) -> bytes:
            data = self._raw.read(n)
            self.count += len(data)
            return data

        def close(self) -> None:
            self._raw.close()

    def __init__(self, sock, timeout: float | None = None):
        self._sock = sock
        self._reader = self._CountingReader(sock.makefile("rb"))
        self._writer = sock.makefile("wb")
        self.timeout = timeout
        self.bytes_sent = 0

    def send(self, request: dict, blobs: tuple[bytes, ...] = ()) -> None:
        try:
            self._sock.settimeout(self.timeout)
            self.bytes_sent += frames.write_frame(self._writer, request, blobs)
        except (TimeoutError, _socket.timeout):
            raise protocol.RequestTimeoutError(
                f"no progress within {self.timeout}s sending "
                f"(op {request.get('op')!r})"
            ) from None
        except (BrokenPipeError, ConnectionError, OSError, ValueError) as exc:
            raise protocol.StreamClosedError(
                f"stream broke mid-request: {exc}"
            ) from None

    def recv(self) -> tuple[dict, list[bytes]]:
        try:
            self._sock.settimeout(self.timeout)
            frame = frames.read_frame(self._reader)
        except (TimeoutError, _socket.timeout):
            raise protocol.RequestTimeoutError(
                f"no response frame within {self.timeout}s"
            ) from None
        except protocol.TransportError:
            raise  # already typed (truncated / malformed / oversized)
        except (ConnectionError, OSError, ValueError) as exc:
            raise protocol.StreamClosedError(
                f"stream broke mid-response: {exc}"
            ) from None
        return frame

    @property
    def bytes_received(self) -> int:
        return self._reader.count

    def __call__(self, request: dict) -> dict:
        self.send(request)
        header, _ = self.recv()
        return header

    def close(self) -> None:
        for resource in (self._writer, self._reader, self._sock):
            try:
                resource.close()
            except OSError:
                pass


class AuditClient:
    """Typed client over a ``dict -> dict`` protocol transport."""

    def __init__(self, transport, version: int = protocol.PROTOCOL_VERSION):
        if version not in protocol.SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported client protocol version {version!r}; "
                f"expected one of {protocol.SUPPORTED_VERSIONS}"
            )
        self._send = transport
        self.version = version

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def local(cls, fixy=None, service=None, **service_options) -> "AuditClient":
        """A client wired straight into an in-process service.

        Pass an existing ``service``, or a fitted ``fixy`` to build
        one (``service_options`` forward to
        :class:`~repro.serving.service.StreamingService`).
        """
        if service is None:
            if fixy is None:
                raise ValueError("AuditClient.local needs a fixy or a service")
            from repro.serving.service import StreamingService

            service = StreamingService(fixy, **service_options)
        return cls(service.handle)

    @classmethod
    def over_streams(cls, writer, reader) -> "AuditClient":
        """A client speaking line-delimited JSON over ``writer``/``reader``."""
        return cls(_StreamTransport(writer, reader))

    @classmethod
    def connect(
        cls,
        address,
        timeout: float | None = None,
        connect_timeout: float | None = 5.0,
        wire: str = "json",
        version: int | None = None,
    ) -> "AuditClient":
        """A client over a fresh TCP connection to ``"host:port"``.

        ``connect_timeout`` bounds the TCP handshake; ``timeout`` is
        the per-request idle deadline (``None`` = wait forever),
        raising :class:`~repro.api.protocol.RequestTimeoutError` when
        missed. ``wire`` picks the framing: ``"json"`` (line-JSON, the
        v1 wire every worker speaks) or ``"frames"`` (the v2 binary
        framed wire — only against a server that advertises it in
        ``hello``'s ``wire_formats``). ``version`` stamps every
        request (defaults to the build's version for ``"json"``, and
        is always v2 for ``"frames"``).
        Connection refusal/timeouts raise
        :class:`~repro.api.protocol.StreamClosedError` so callers see
        one typed failure for "worker not there".
        """
        if wire not in ("json", "frames"):
            raise ValueError(
                f"wire must be 'json' or 'frames', got {wire!r}"
            )
        host, port = parse_address(address)
        try:
            sock = _socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise protocol.StreamClosedError(
                f"cannot connect to worker {host}:{port}: {exc}"
            ) from None
        try:
            # Requests are small; never let Nagle hold a frame back.
            sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        except OSError:
            pass
        if wire == "frames":
            return cls(_FrameTransport(sock, timeout=timeout), version=2)
        return cls(
            _StreamTransport(
                sock.makefile("w", encoding="utf-8", newline="\n"),
                sock.makefile("r", encoding="utf-8", newline="\n"),
                sock=sock,
                timeout=timeout,
            ),
            version=(
                version if version is not None else protocol.PROTOCOL_VERSION
            ),
        )

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def _call(self, op: str, **fields) -> dict:
        fields = {k: v for k, v in fields.items() if v is not None}
        response = self._send(
            protocol.make_request(op, version=self.version, **fields)
        )
        return self._check(response)

    def request(self, op: str, **fields) -> dict:
        """Send one op and return the full *checked* response envelope.

        Unlike the typed convenience methods below, the envelope keeps
        every additive field the server attached — ``spans`` (the
        worker's piggybacked trace spans), ``scene_cache``, whatever a
        later protocol version adds. ``None``-valued fields are
        dropped before sending, same as every other call.
        """
        return self._call(op, **fields)

    def _check(self, response) -> dict:
        """Validate one response envelope (version, ok flag, errors)."""
        if not isinstance(response, dict):
            raise protocol.ProtocolError(
                protocol.INTERNAL_ERROR,
                f"malformed response: {type(response).__name__}",
            )
        if response.get("ok"):
            version = response.get("v")
            if version != self.version:
                raise protocol.ProtocolError(
                    protocol.UNSUPPORTED_VERSION,
                    f"server answered in protocol version {version!r}; this "
                    f"client speaks {self.version}",
                )
            return response
        error = response.get("error")
        if isinstance(error, dict):
            code = error.get("code", protocol.INTERNAL_ERROR)
            if code == protocol.OVERLOADED:
                # Typed: the admission layer shed this request — it
                # never executed, so retry-after-backoff is always safe.
                raise protocol.OverloadedError(
                    error.get("message", "server overloaded"),
                    details=error.get("details"),
                )
            raise protocol.ProtocolError(
                code,
                error.get("message", "unknown error"),
                details=error.get("details"),
            )
        # A v0 (string) error from a legacy server.
        raise protocol.ProtocolError(protocol.INTERNAL_ERROR, str(error))

    # ------------------------------------------------------------------
    # Pipelined framed calls (v2 wire only)
    # ------------------------------------------------------------------
    @property
    def supports_pipelining(self) -> bool:
        """Whether the transport separates send from receive (frames)."""
        return hasattr(self._send, "send") and hasattr(self._send, "recv")

    def send_request(self, op: str, blobs: tuple[bytes, ...] = (), **fields):
        """Write one framed request without waiting for its response.

        Responses arrive in request order via :meth:`recv_response` —
        the coordinator's chunk pipelining (encode chunk *i+1* while
        the worker ranks chunk *i*). Only valid on a framed transport.
        """
        if not self.supports_pipelining:
            raise protocol.ProtocolError(
                protocol.INTERNAL_ERROR,
                "send_request needs a framed transport "
                "(connect with wire='frames')",
            )
        fields = {k: v for k, v in fields.items() if v is not None}
        self._send.send(
            protocol.make_request(op, version=self.version, **fields), blobs
        )

    def recv_response(self) -> dict:
        """Read + validate the next in-order framed response."""
        response, _blobs = self._send.recv()
        return self._check(response)

    @property
    def bytes_sent(self) -> int:
        """Bytes written to the transport so far (0 for in-process)."""
        return getattr(self._send, "bytes_sent", 0)

    @property
    def bytes_received(self) -> int:
        return getattr(self._send, "bytes_received", 0)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def open_session(self, scene, session_id: str | None = None) -> str:
        """Open a streaming session for ``scene``; returns its id."""
        payload = scene.to_dict() if hasattr(scene, "to_dict") else scene
        return self._call("open", scene=payload, session_id=session_id)[
            "session_id"
        ]

    def edit(self, session_id: str, edit, standing: bool | None = None) -> dict:
        """Apply a :class:`~repro.serving.edits.SceneEdit` (or its dict).

        Returns ``{"changed": [track ids], "version": n}`` — plus, when
        the session has standing audits, ``"standing"``: each
        subscription's incrementally maintained top-k as
        ``{audit_id: {"kind", "rescored", "results"}}``. Pass
        ``standing=False`` to suppress those payloads (the audits are
        still maintained server-side, just not echoed).
        """
        payload = edit.to_dict() if hasattr(edit, "to_dict") else edit
        response = self._call(
            "edit", session_id=session_id, edit=payload, standing=standing
        )
        out = {"changed": response["changed"], "version": response["version"]}
        if "standing" in response:
            out["standing"] = response["standing"]
        return out

    def rank(
        self,
        session_id: str,
        kind: str = "tracks",
        top_k: int | None = None,
    ) -> list[dict]:
        """Rank a live session's components; returns scored-item dicts."""
        return self._call("rank", session_id=session_id, kind=kind, top_k=top_k)[
            "results"
        ]

    def audit(
        self,
        spec: AuditSpec | dict,
        scenes=None,
        session_id: str | None = None,
    ) -> AuditResult:
        """Execute an :class:`AuditSpec` server-side.

        Either over live server state (``session_id``) or over scenes
        shipped with the request (``scenes``: live Scene objects or
        their dicts). Returns the typed :class:`AuditResult`.
        """
        payload = spec.to_dict() if isinstance(spec, AuditSpec) else spec
        scene_payloads = None
        if scenes is not None:
            if hasattr(scenes, "scene_id"):
                scenes = [scenes]
            scene_payloads = [
                s.to_dict() if hasattr(s, "to_dict") else s for s in scenes
            ]
        response = self._call(
            "audit", spec=payload, scenes=scene_payloads, session_id=session_id
        )
        return AuditResult.from_dict(response["result"])

    def subscribe(
        self,
        session_id: str,
        spec: AuditSpec | dict,
        audit_id: str | None = None,
    ) -> dict:
        """Register ``spec`` as a standing audit on a live session.

        Returns ``{"audit_id", "kind", "results"}`` — the initial
        top-k; every subsequent :meth:`edit` response carries the
        incrementally maintained update.
        """
        payload = spec.to_dict() if isinstance(spec, AuditSpec) else spec
        response = self._call(
            "subscribe", session_id=session_id, spec=payload, audit_id=audit_id
        )
        return {
            "audit_id": response["audit_id"],
            "kind": response["kind"],
            "results": response["results"],
        }

    def unsubscribe(self, session_id: str, audit_id: str) -> bool:
        """Drop a standing audit; returns whether it was subscribed."""
        return self._call(
            "unsubscribe", session_id=session_id, audit_id=audit_id
        )["unsubscribed"]

    def standing(self, session_id: str, audit_id: str) -> dict:
        """Read a standing audit's maintained top-k without editing.

        Returns ``{"audit_id", "kind", "results", "stats"}``; an
        unknown id raises with the ``unknown_subscription`` code.
        """
        response = self._call(
            "standing", session_id=session_id, audit_id=audit_id
        )
        return {
            k: v for k, v in response.items() if k not in ("ok", "v")
        }

    def close_session(self, session_id: str) -> bool:
        """Close a session; returns whether it was live."""
        return self._call("close", session_id=session_id)["closed"]

    def stats(self) -> dict:
        """Server-side session-store counters."""
        response = self._call("stats")
        return {k: v for k, v in response.items() if k not in ("ok", "v")}

    def hello(self) -> dict:
        """The worker's registration card.

        ``{"protocol_version", "model_fingerprint", "capacity",
        "features", "ops"}`` — what the pool checks before handing a
        worker any scenes.
        """
        response = self._call("hello")
        return {k: v for k, v in response.items() if k not in ("ok", "v")}

    def health(self) -> dict:
        """Liveness + serving stats (``status``, ``uptime_s``,
        ``requests_handled``, session-store counters)."""
        response = self._call("health")
        return {k: v for k, v in response.items() if k not in ("ok", "v")}

    def metrics(self, text: bool = False) -> dict:
        """The worker's metrics snapshot (protocol v2+).

        Returns ``{"metrics": <registry snapshot>}``, plus ``"text"``
        (the Prometheus exposition) when ``text=True``. A v1
        connection gets a typed ``unsupported_version`` rejection.
        """
        response = self._call("metrics", text=True if text else None)
        return {k: v for k, v in response.items() if k not in ("ok", "v")}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the transport (a no-op for in-process transports)."""
        closer = getattr(self._send, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "AuditClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
