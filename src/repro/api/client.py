"""AuditClient: the in-repo Python client for the serving protocol.

Speaks protocol v1 (:mod:`repro.api.protocol`) over any transport that
maps a request dict to a response dict:

- :meth:`AuditClient.local` — in-process, directly onto a
  :class:`~repro.serving.service.StreamingService` (no serialization
  beyond the protocol's own dicts; ideal for tests and embedding);
- :meth:`AuditClient.over_streams` — line-delimited JSON over a
  reader/writer pair, the framing ``python -m repro.cli serve`` speaks
  on stdio (and the same framing the TCP transport uses);
- :meth:`AuditClient.connect` — the same framing over a TCP socket to
  a ``python -m repro.cli serve --listen HOST:PORT`` worker, with a
  per-request timeout (the transport the ``remote`` backend rides).

Failures come back as :class:`~repro.api.protocol.ProtocolError` with
the server's structured code — a typo'd rank kind raises the same
``unknown_rank_kind`` whether it happened in-process or across a pipe.
Transport failures are typed too: EOF mid-response raises
:class:`~repro.api.protocol.StreamClosedError`, a partial or garbage
response line :class:`~repro.api.protocol.MalformedResponseError`, and
a missed deadline :class:`~repro.api.protocol.RequestTimeoutError`.
"""

from __future__ import annotations

import json
import socket as _socket

from repro.api import protocol
from repro.api.result import AuditResult
from repro.api.spec import AuditSpec

__all__ = ["AuditClient", "parse_address"]


def parse_address(address) -> tuple[str, int]:
    """``"host:port"`` (or a ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"worker address must be 'host:port', got {address!r}"
        )
    return host, int(port)


class _StreamTransport:
    """One JSON line out, one JSON line back, with typed failures.

    When built over a socket (``sock``), ``timeout`` is applied per
    request as an *idle* deadline: each underlying socket operation
    (the write, each read while waiting for the response line) must
    make progress within ``timeout`` seconds. A silent server trips it;
    a server that keeps dripping bytes keeps the request alive.
    """

    def __init__(self, writer, reader, sock=None, timeout: float | None = None):
        self._writer = writer
        self._reader = reader
        self._sock = sock
        self.timeout = timeout

    def __call__(self, request: dict) -> dict:
        if self._sock is not None:
            self._sock.settimeout(self.timeout)
        try:
            self._writer.write(json.dumps(request) + "\n")
            self._writer.flush()
            line = self._reader.readline()
        except (TimeoutError, _socket.timeout):
            raise protocol.RequestTimeoutError(
                f"no response within {self.timeout}s "
                f"(op {request.get('op')!r})"
            ) from None
        except (BrokenPipeError, ConnectionError, OSError, ValueError) as exc:
            # ValueError covers writes on a stream closed under us.
            raise protocol.StreamClosedError(
                f"stream broke mid-request: {exc}"
            ) from None
        if not line:
            raise protocol.StreamClosedError(
                "server closed the stream before responding"
            )
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise protocol.MalformedResponseError(
                f"response line is not JSON: {exc}"
            ) from None
        if not isinstance(response, dict):
            raise protocol.MalformedResponseError(
                f"response is not a protocol envelope: "
                f"{type(response).__name__}"
            )
        return response

    def close(self) -> None:
        for resource in (self._writer, self._reader, self._sock):
            if resource is not None:
                try:
                    resource.close()
                except OSError:
                    pass


class AuditClient:
    """Typed client over a ``dict -> dict`` protocol transport."""

    def __init__(self, transport):
        self._send = transport

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def local(cls, fixy=None, service=None, **service_options) -> "AuditClient":
        """A client wired straight into an in-process service.

        Pass an existing ``service``, or a fitted ``fixy`` to build
        one (``service_options`` forward to
        :class:`~repro.serving.service.StreamingService`).
        """
        if service is None:
            if fixy is None:
                raise ValueError("AuditClient.local needs a fixy or a service")
            from repro.serving.service import StreamingService

            service = StreamingService(fixy, **service_options)
        return cls(service.handle)

    @classmethod
    def over_streams(cls, writer, reader) -> "AuditClient":
        """A client speaking line-delimited JSON over ``writer``/``reader``."""
        return cls(_StreamTransport(writer, reader))

    @classmethod
    def connect(
        cls,
        address,
        timeout: float | None = None,
        connect_timeout: float | None = 5.0,
    ) -> "AuditClient":
        """A client over a fresh TCP connection to ``"host:port"``.

        ``connect_timeout`` bounds the TCP handshake; ``timeout`` is
        the per-request idle deadline (``None`` = wait forever),
        raising :class:`~repro.api.protocol.RequestTimeoutError` when
        missed.
        Connection refusal/timeouts raise
        :class:`~repro.api.protocol.StreamClosedError` so callers see
        one typed failure for "worker not there".
        """
        host, port = parse_address(address)
        try:
            sock = _socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise protocol.StreamClosedError(
                f"cannot connect to worker {host}:{port}: {exc}"
            ) from None
        return cls(
            _StreamTransport(
                sock.makefile("w", encoding="utf-8", newline="\n"),
                sock.makefile("r", encoding="utf-8", newline="\n"),
                sock=sock,
                timeout=timeout,
            )
        )

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def _call(self, op: str, **fields) -> dict:
        fields = {k: v for k, v in fields.items() if v is not None}
        response = self._send(protocol.make_request(op, **fields))
        if not isinstance(response, dict):
            raise protocol.ProtocolError(
                protocol.INTERNAL_ERROR,
                f"malformed response: {type(response).__name__}",
            )
        if response.get("ok"):
            version = response.get("v")
            if version != protocol.PROTOCOL_VERSION:
                raise protocol.ProtocolError(
                    protocol.UNSUPPORTED_VERSION,
                    f"server answered in protocol version {version!r}; this "
                    f"client speaks {protocol.PROTOCOL_VERSION}",
                )
            return response
        error = response.get("error")
        if isinstance(error, dict):
            raise protocol.ProtocolError(
                error.get("code", protocol.INTERNAL_ERROR),
                error.get("message", "unknown error"),
                details=error.get("details"),
            )
        # A v0 (string) error from a legacy server.
        raise protocol.ProtocolError(protocol.INTERNAL_ERROR, str(error))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def open_session(self, scene, session_id: str | None = None) -> str:
        """Open a streaming session for ``scene``; returns its id."""
        payload = scene.to_dict() if hasattr(scene, "to_dict") else scene
        return self._call("open", scene=payload, session_id=session_id)[
            "session_id"
        ]

    def edit(self, session_id: str, edit) -> dict:
        """Apply a :class:`~repro.serving.edits.SceneEdit` (or its dict).

        Returns ``{"changed": [track ids], "version": n}``.
        """
        payload = edit.to_dict() if hasattr(edit, "to_dict") else edit
        response = self._call("edit", session_id=session_id, edit=payload)
        return {"changed": response["changed"], "version": response["version"]}

    def rank(
        self,
        session_id: str,
        kind: str = "tracks",
        top_k: int | None = None,
    ) -> list[dict]:
        """Rank a live session's components; returns scored-item dicts."""
        return self._call("rank", session_id=session_id, kind=kind, top_k=top_k)[
            "results"
        ]

    def audit(
        self,
        spec: AuditSpec | dict,
        scenes=None,
        session_id: str | None = None,
    ) -> AuditResult:
        """Execute an :class:`AuditSpec` server-side.

        Either over live server state (``session_id``) or over scenes
        shipped with the request (``scenes``: live Scene objects or
        their dicts). Returns the typed :class:`AuditResult`.
        """
        payload = spec.to_dict() if isinstance(spec, AuditSpec) else spec
        scene_payloads = None
        if scenes is not None:
            if hasattr(scenes, "scene_id"):
                scenes = [scenes]
            scene_payloads = [
                s.to_dict() if hasattr(s, "to_dict") else s for s in scenes
            ]
        response = self._call(
            "audit", spec=payload, scenes=scene_payloads, session_id=session_id
        )
        return AuditResult.from_dict(response["result"])

    def close_session(self, session_id: str) -> bool:
        """Close a session; returns whether it was live."""
        return self._call("close", session_id=session_id)["closed"]

    def stats(self) -> dict:
        """Server-side session-store counters."""
        response = self._call("stats")
        return {k: v for k, v in response.items() if k not in ("ok", "v")}

    def hello(self) -> dict:
        """The worker's registration card.

        ``{"protocol_version", "model_fingerprint", "capacity",
        "features", "ops"}`` — what the pool checks before handing a
        worker any scenes.
        """
        response = self._call("hello")
        return {k: v for k, v in response.items() if k not in ("ok", "v")}

    def health(self) -> dict:
        """Liveness + serving stats (``status``, ``uptime_s``,
        ``requests_handled``, session-store counters)."""
        response = self._call("health")
        return {k: v for k, v in response.items() if k not in ("ok", "v")}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the transport (a no-op for in-process transports)."""
        closer = getattr(self._send, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "AuditClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
