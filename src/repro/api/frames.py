"""The protocol v2 binary wire: length-prefixed frames + packed scenes.

Protocol v1 ships every request as one JSON line; at small scene sizes
the coordinator-side ``Scene.to_dict()`` + ``json.dumps`` per audit
dominates the distributed hot path (see ``BENCH_scaling.json``
``serving.remote``). This module is the v2 answer, in three layers:

**Frames.** A frame is a small JSON *header* plus zero or more raw
binary *blobs*, all length-prefixed::

    MAGIC(4) | u32 header_len | u16 n_blobs | n_blobs x u64 blob_len
             | header bytes (UTF-8 JSON) | blob bytes ...

The header is the same request/response dict the line-JSON wire
carries; blobs carry bulk payloads (packed scenes) that never pass
through a JSON encoder. :data:`MAGIC` opens with a non-ASCII byte, so
a framed connection is self-identifying: the first byte of a JSON line
can never be ``0xAB``, which is how the TCP server
(:mod:`repro.serving.tcp`) answers line-JSON and framed clients on the
same port with no upgrade round-trip. Hard caps
(:data:`MAX_HEADER_BYTES`, :data:`MAX_BLOB_BYTES`, :data:`MAX_BLOBS`)
bound what a peer can make us buffer; violations raise
:class:`~repro.api.protocol.FrameTooLargeError` *before* the body is
read.

**Packed scenes.** :func:`pack_scene` encodes one scene as a compact
JSON *skeleton* (ids, classes, sources, metadata — everything but the
numbers) followed by one contiguous little-endian float64 array holding
every observation's box parameters and confidence, column layout
:data:`OBS_COLUMNS`. One encode touches NumPy once instead of building
a dict per observation; :func:`unpack_scene` restores a
:class:`~repro.core.model.Scene` whose floats are bit-identical to the
original (binary transport is exact, like JSON's repr round-trip), so
rankings computed from an unpacked scene are byte-identical to local
ones.

**Content addressing.** :func:`scene_fingerprint` names a packed scene
by the blake2b of its bytes. A coordinator ships ``scene_hashes`` and
only the bodies the worker's :class:`SceneCache` (bounded LRU of
*decoded* scenes, keyed by fingerprint) does not already hold — the
second audit of the same scene set ships ids, not bodies.
"""

from __future__ import annotations

import hashlib
import json
import math
import struct
import threading
from collections import OrderedDict

import numpy as np

from repro.api import protocol

__all__ = [
    "MAGIC",
    "MAX_BLOBS",
    "MAX_BLOB_BYTES",
    "MAX_HEADER_BYTES",
    "OBS_COLUMNS",
    "SceneCache",
    "encode_frame",
    "pack_scene",
    "read_frame",
    "read_frame_async",
    "scene_fingerprint",
    "unpack_scene",
    "write_frame",
]

#: Frame prelude. The first byte is deliberately outside ASCII so no
#: JSON line (or HTTP verb, for that matter) can ever start a frame.
MAGIC = b"\xabRF2"

#: Hard caps on what one frame may make a peer buffer.
MAX_HEADER_BYTES = 16 * 1024 * 1024
MAX_BLOB_BYTES = 256 * 1024 * 1024
MAX_BLOBS = 1024

_PRELUDE = struct.Struct("<4sIH")  # magic, header_len, n_blobs
_BLOB_LEN = struct.Struct("<Q")
_SKELETON_LEN = struct.Struct("<I")

#: Column layout of a packed scene's float64 observation array.
OBS_COLUMNS = ("x", "y", "z", "length", "width", "height", "yaw", "confidence")


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------
def _check_sizes(header_len: int, blob_lens: list[int]) -> None:
    if header_len > MAX_HEADER_BYTES:
        raise protocol.FrameTooLargeError(
            f"frame header is {header_len} bytes "
            f"(cap {MAX_HEADER_BYTES})"
        )
    if len(blob_lens) > MAX_BLOBS:
        raise protocol.FrameTooLargeError(
            f"frame carries {len(blob_lens)} blobs (cap {MAX_BLOBS})"
        )
    for length in blob_lens:
        if length > MAX_BLOB_BYTES:
            raise protocol.FrameTooLargeError(
                f"frame blob is {length} bytes (cap {MAX_BLOB_BYTES})"
            )


def encode_frame(header: dict, blobs: tuple[bytes, ...] = ()) -> bytes:
    """One frame as bytes (header JSON-encoded, blobs appended raw)."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    blobs = [bytes(b) for b in blobs]
    _check_sizes(len(header_bytes), [len(b) for b in blobs])
    parts = [_PRELUDE.pack(MAGIC, len(header_bytes), len(blobs))]
    parts.extend(_BLOB_LEN.pack(len(b)) for b in blobs)
    parts.append(header_bytes)
    parts.extend(blobs)
    return b"".join(parts)


def write_frame(writer, header: dict, blobs: tuple[bytes, ...] = ()) -> int:
    """Encode and write one frame to a binary writer; returns its size."""
    data = encode_frame(header, blobs)
    writer.write(data)
    writer.flush()
    return len(data)


def _read_exact(reader, n: int, context: str) -> bytes:
    """Read exactly ``n`` bytes or raise a typed truncation error."""
    chunks = []
    remaining = n
    while remaining:
        chunk = reader.read(remaining)
        if not chunk:
            raise protocol.StreamClosedError(
                f"stream closed mid-frame ({context}: "
                f"{n - remaining} of {n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _parse_prelude(prelude: bytes) -> tuple[int, int]:
    """Validate a prelude's magic and blob count; ``(header_len, n_blobs)``."""
    magic, header_len, n_blobs = _PRELUDE.unpack(prelude)
    if magic != MAGIC:
        raise protocol.FrameDecodeError(
            f"bad frame magic {magic!r} (expected {MAGIC!r})"
        )
    if n_blobs > MAX_BLOBS:
        raise protocol.FrameTooLargeError(
            f"frame declares {n_blobs} blobs (cap {MAX_BLOBS})"
        )
    return header_len, n_blobs


def _decode_header(header_bytes: bytes) -> dict:
    """The frame header as a dict, or a typed decode error."""
    try:
        header = json.loads(header_bytes)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise protocol.FrameDecodeError(
            f"frame header is not JSON: {exc}"
        ) from None
    if not isinstance(header, dict):
        raise protocol.FrameDecodeError(
            f"frame header is not an object: {type(header).__name__}"
        )
    return header


def read_frame(reader, allow_eof: bool = False):
    """Read one frame from a binary reader.

    Returns ``(header, blobs)``; ``None`` on a clean EOF at a frame
    boundary when ``allow_eof`` (the server's end-of-conversation).
    Raises :class:`~repro.api.protocol.StreamClosedError` on a
    truncated frame, :class:`~repro.api.protocol.FrameDecodeError` on
    bad magic or a non-object header, and
    :class:`~repro.api.protocol.FrameTooLargeError` when a declared
    size exceeds the caps (the body is not read — the caller must
    close the stream, which is no longer in sync).
    """
    first = reader.read(1)
    if not first:
        if allow_eof:
            return None
        raise protocol.StreamClosedError(
            "stream closed before a frame arrived"
        )
    prelude = first + _read_exact(reader, _PRELUDE.size - 1, "frame prelude")
    header_len, n_blobs = _parse_prelude(prelude)
    blob_lens = [
        _BLOB_LEN.unpack(_read_exact(reader, _BLOB_LEN.size, "blob length"))[0]
        for _ in range(n_blobs)
    ]
    _check_sizes(header_len, blob_lens)
    header = _decode_header(_read_exact(reader, header_len, "frame header"))
    blobs = [
        _read_exact(reader, length, f"blob {i}")
        for i, length in enumerate(blob_lens)
    ]
    return header, blobs


async def _read_exact_async(reader, n: int, context: str) -> bytes:
    """``readexactly`` with the same typed truncation error as the
    blocking reader — an asyncio peer dying mid-frame surfaces as the
    :class:`~repro.api.protocol.StreamClosedError` callers already
    handle, not a bare ``IncompleteReadError``."""
    import asyncio

    try:
        return await reader.readexactly(n)
    except asyncio.IncompleteReadError as exc:
        raise protocol.StreamClosedError(
            f"stream closed mid-frame ({context}: "
            f"{len(exc.partial)} of {n} bytes)"
        ) from None
    except (ConnectionError, OSError) as exc:
        raise protocol.StreamClosedError(
            f"stream broke mid-frame ({context}: {exc})"
        ) from None


async def read_frame_async(reader, allow_eof: bool = False, prefix: bytes = b""):
    """:func:`read_frame` over an :class:`asyncio.StreamReader`.

    Identical semantics and typed failures to the blocking reader —
    the same prelude/size validation runs on both paths. ``prefix`` is
    bytes the caller already consumed (the async gateway reads one
    byte per connection to sniff the wire format); they are treated as
    the frame's opening bytes.
    """
    if not prefix:
        first = await reader.read(1)
        if not first:
            if allow_eof:
                return None
            raise protocol.StreamClosedError(
                "stream closed before a frame arrived"
            )
        prefix = first
    prelude = prefix + await _read_exact_async(
        reader, _PRELUDE.size - len(prefix), "frame prelude"
    )
    header_len, n_blobs = _parse_prelude(prelude)
    blob_lens = []
    for _ in range(n_blobs):
        raw = await _read_exact_async(reader, _BLOB_LEN.size, "blob length")
        blob_lens.append(_BLOB_LEN.unpack(raw)[0])
    _check_sizes(header_len, blob_lens)
    header = _decode_header(
        await _read_exact_async(reader, header_len, "frame header")
    )
    blobs = []
    for i, length in enumerate(blob_lens):
        blobs.append(await _read_exact_async(reader, length, f"blob {i}"))
    return header, blobs


# ---------------------------------------------------------------------------
# Packed scenes
# ---------------------------------------------------------------------------
def pack_scene(scene) -> bytes:
    """One scene as skeleton JSON + a columnar float64 observation array.

    Accepts a live :class:`~repro.core.model.Scene` or its
    ``to_dict()`` form. The observation rows follow track/bundle/
    observation order, one row of :data:`OBS_COLUMNS` per observation
    (``confidence`` rides as NaN when absent — a real confidence is
    constrained to ``[0, 1]`` so NaN is unambiguous).
    """
    if hasattr(scene, "to_dict"):
        payload = scene.to_dict()
    else:
        # Dict input: copy before the destructive column extraction.
        payload = json.loads(json.dumps(scene))
    rows = []
    for track in payload["tracks"]:
        for bundle in track["bundles"]:
            for obs in bundle["observations"]:
                box = obs.pop("box")
                confidence = obs.pop("confidence", None)
                rows.append(
                    (
                        box["x"],
                        box["y"],
                        box["z"],
                        box["length"],
                        box["width"],
                        box["height"],
                        box.get("yaw", 0.0),
                        math.nan if confidence is None else float(confidence),
                    )
                )
    numbers = np.asarray(rows, dtype="<f8").reshape(len(rows), len(OBS_COLUMNS))
    skeleton = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return (
        _SKELETON_LEN.pack(len(skeleton)) + skeleton + numbers.tobytes(order="C")
    )


def unpack_scene(data: bytes):
    """Decode :func:`pack_scene` bytes back into a live ``Scene``.

    Raises :class:`~repro.api.protocol.FrameDecodeError` when the
    bytes are not a packed scene (short buffer, bad skeleton, a
    number array that does not match the skeleton's observation
    count).
    """
    from repro.core.model import Scene

    try:
        (skeleton_len,) = _SKELETON_LEN.unpack_from(data, 0)
        body_start = _SKELETON_LEN.size + skeleton_len
        payload = json.loads(data[_SKELETON_LEN.size : body_start])
        numbers = np.frombuffer(data, dtype="<f8", offset=body_start)
        numbers = numbers.reshape(-1, len(OBS_COLUMNS))
        row = 0
        for track in payload["tracks"]:
            for bundle in track["bundles"]:
                for obs in bundle["observations"]:
                    values = numbers[row]
                    row += 1
                    obs["box"] = {
                        "x": float(values[0]),
                        "y": float(values[1]),
                        "z": float(values[2]),
                        "length": float(values[3]),
                        "width": float(values[4]),
                        "height": float(values[5]),
                        "yaw": float(values[6]),
                    }
                    confidence = float(values[7])
                    obs["confidence"] = (
                        None if math.isnan(confidence) else confidence
                    )
        if row != len(numbers):
            raise ValueError(
                f"packed scene has {len(numbers)} observation rows but "
                f"the skeleton names {row}"
            )
    except protocol.ProtocolError:
        raise
    except Exception as exc:
        raise protocol.FrameDecodeError(
            f"blob is not a packed scene: {type(exc).__name__}: {exc}"
        ) from None
    return Scene.from_dict(payload)


def scene_fingerprint(packed: bytes) -> str:
    """Content address of a packed scene: blake2b of its bytes."""
    return hashlib.blake2b(packed, digest_size=20).hexdigest()


# ---------------------------------------------------------------------------
# Worker-side scene cache
# ---------------------------------------------------------------------------
class SceneCache:
    """Bounded LRU of *decoded* scenes keyed by content fingerprint.

    The worker half of content-addressed scene transport: blobs are
    ingested once (hash + decode), later audits naming the same hash
    reuse the decoded ``Scene`` object — which also keeps the engine's
    compiled-scene LRU warm, since that cache is keyed by object
    identity. Thread-safe: one service instance serves many
    connections.
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = max(1, int(maxsize))
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        #: Lookups served from cache (``get`` found it, or an ``ingest``
        #: short-circuited on an already-decoded entry).
        self.hits = 0
        #: Lookups the cache could not serve (``get`` returned None).
        self.misses = 0
        #: Bodies actually decoded (each is one ``unpack_scene``).
        self.decodes = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def ingest(self, blob: bytes) -> tuple[str, object]:
        """Hash + decode + store one packed-scene blob.

        Returns ``(fingerprint, scene)`` — the caller holds the
        decoded scene for the current request even if a
        smaller-than-request cache evicts it immediately.
        """
        fingerprint = scene_fingerprint(blob)
        with self._lock:
            scene = self._entries.get(fingerprint)
            if scene is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1  # body was resent, but no decode needed
                return fingerprint, scene
        scene = unpack_scene(blob)  # decode outside the lock
        with self._lock:
            self.decodes += 1
            self._entries[fingerprint] = scene
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return fingerprint, scene

    def get(self, fingerprint: str):
        """The decoded scene for ``fingerprint``, or ``None`` (a miss
        the caller must refill via ``need``)."""
        with self._lock:
            scene = self._entries.get(fingerprint)
            if scene is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
            else:
                self.misses += 1
            return scene

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "decodes": self.decodes,
                "evictions": self.evictions,
            }
