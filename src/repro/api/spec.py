"""AuditSpec: the declarative description of one audit.

The paper's value proposition is that a user *declares* what to audit —
the feature set, the learned model, the component kind to rank — and
the system finds the label errors. :class:`AuditSpec` is that
declaration as data: a frozen, validated, JSON-round-trippable value
object that compiles onto any execution backend
(:mod:`repro.api.backends`), crosses the wire in the versioned serving
protocol (:mod:`repro.api.protocol`), and hashes to a stable identity
recorded in every result's provenance.

Pieces:

- :class:`FilterSpec` — the declarative component filter. The engine's
  callable filters (``lambda track: ...``) cannot be serialized or
  shipped to worker processes; FilterSpec expresses the common
  predicates (source membership, enclosing-track sources, size, class)
  as data and compiles to a picklable callable per rank kind.
- :class:`SceneSource` — where scenes come from: a synthetic dataset
  profile (+ split and indices) or explicit scene-JSON paths. Optional;
  programmatic callers usually pass live scenes to ``Audit.run``.
- :class:`AuditSpec` — kind/filters/top-k + feature-set name + model
  source + scene source + default backend. ``spec_hash()`` is the
  canonical identity (blake2b over sorted-key JSON).

Validation is eager and total: ``validate()`` (called by
:class:`repro.api.Audit` at bind time and by ``from_dict``) walks every
field, so a typo'd kind, backend, or feature set fails before any scene
compiles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Mapping

from repro.core.scoring import normalize_rank_kind

__all__ = [
    "SPEC_VERSION",
    "FEATURE_SETS",
    "AuditSpec",
    "FilterSpec",
    "SceneSource",
    "SpecValidationError",
]

#: Version of the AuditSpec schema itself (bumped on incompatible change).
SPEC_VERSION = 1

#: Named feature sets a spec may select (name -> factory).
FEATURE_SETS = {
    "default": "default_features",
    "model_error": "model_error_features",
}


class SpecValidationError(ValueError):
    """An AuditSpec (or a piece of one) that does not validate."""


def build_feature_set(name: str):
    """Instantiate a named feature set (library import deferred)."""
    if name not in FEATURE_SETS:
        raise SpecValidationError(
            f"unknown feature set {name!r}; expected one of "
            f"{sorted(FEATURE_SETS)}"
        )
    from repro.core import library

    return getattr(library, FEATURE_SETS[name])()


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FilterSpec:
    """Declarative component filter, compiled per rank kind.

    Attributes:
        has_model / has_human: Require the component itself to contain
            (or not contain) model/human observations. For tracks the
            component is the track, for bundles the bundle, for
            observations the single observation's source.
        track_has_model / track_has_human: The same tests against the
            *enclosing track* — meaningful for ``bundles`` (e.g. §8.3's
            "model-only bundles inside human-labeled tracks"); for
            ``tracks`` they are synonyms of ``has_*``; rejected for
            ``observations`` (the observation filter never sees the
            track).
        min_observations: Minimum component size (track observation
            count / bundle size); rejected for ``observations``.
        classes: Restrict to these object classes (track majority
            class / bundle representative class / observation class).
    """

    has_model: bool | None = None
    has_human: bool | None = None
    track_has_model: bool | None = None
    track_has_human: bool | None = None
    min_observations: int | None = None
    classes: tuple[str, ...] | None = None

    def __post_init__(self):
        if self.classes is not None:
            object.__setattr__(self, "classes", tuple(self.classes))

    @property
    def is_empty(self) -> bool:
        return all(getattr(self, f.name) is None for f in fields(self))

    def validate(self, kind: str) -> None:
        kind = normalize_rank_kind(kind)
        for name in ("has_model", "has_human", "track_has_model", "track_has_human"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, bool):
                raise SpecValidationError(
                    f"filter field {name} must be a bool or null, got {value!r}"
                )
        if self.min_observations is not None:
            if not isinstance(self.min_observations, int) or self.min_observations < 1:
                raise SpecValidationError(
                    "filter field min_observations must be a positive "
                    f"integer, got {self.min_observations!r}"
                )
            if kind == "observations":
                raise SpecValidationError(
                    "min_observations does not apply to kind 'observations' "
                    "(a single observation has no size)"
                )
        if kind == "observations" and (
            self.track_has_model is not None or self.track_has_human is not None
        ):
            raise SpecValidationError(
                "track_has_model/track_has_human do not apply to kind "
                "'observations' (the observation filter never sees the track)"
            )
        if self.classes is not None:
            if not self.classes or not all(
                isinstance(c, str) for c in self.classes
            ):
                raise SpecValidationError(
                    f"filter field classes must be a non-empty list of "
                    f"class names, got {self.classes!r}"
                )

    def compile(self, kind: str):
        """A picklable filter callable for ``kind`` (None when empty).

        The callable matches the kind's filter signature —
        ``(track)``, ``(bundle, track)``, or ``(observation)`` — and,
        being a module-level class instance, crosses the
        :class:`~repro.serving.sharded.ShardedRanker` process boundary
        where a lambda cannot.
        """
        self.validate(kind)
        if self.is_empty:
            return None
        return CompiledFilter(self, normalize_rank_kind(kind))

    def to_dict(self) -> dict:
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is not None:
                out[f.name] = list(value) if f.name == "classes" else value
        return out

    @staticmethod
    def from_dict(data: Mapping) -> "FilterSpec":
        known = {f.name for f in fields(FilterSpec)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecValidationError(f"unknown filter fields: {unknown}")
        kwargs = dict(data)
        if kwargs.get("classes") is not None:
            kwargs["classes"] = tuple(kwargs["classes"])
        return FilterSpec(**kwargs)


def _source_match(has_model, has_human, is_model: bool, is_human: bool) -> bool:
    if has_model is not None and is_model != has_model:
        return False
    if has_human is not None and is_human != has_human:
        return False
    return True


class CompiledFilter:
    """A :class:`FilterSpec` bound to one rank kind, as a callable.

    Defined at module level (not a closure) so instances pickle across
    the sharded backend's process boundary.
    """

    def __init__(self, spec: FilterSpec, kind: str):
        self.spec = spec
        self.kind = kind

    def __repr__(self) -> str:
        return f"CompiledFilter({self.spec!r}, kind={self.kind!r})"

    def __call__(self, *args) -> bool:
        spec = self.spec
        if self.kind == "tracks":
            (track,) = args
            if not _source_match(
                spec.has_model, spec.has_human, track.has_model, track.has_human
            ):
                return False
            if not _source_match(
                spec.track_has_model,
                spec.track_has_human,
                track.has_model,
                track.has_human,
            ):
                return False
            if (
                spec.min_observations is not None
                and track.n_observations < spec.min_observations
            ):
                return False
            if spec.classes is not None and track.majority_class() not in spec.classes:
                return False
            return True
        if self.kind == "bundles":
            bundle, track = args
            if not _source_match(
                spec.has_model, spec.has_human, bundle.has_model, bundle.has_human
            ):
                return False
            if not _source_match(
                spec.track_has_model,
                spec.track_has_human,
                track.has_model,
                track.has_human,
            ):
                return False
            if (
                spec.min_observations is not None
                and len(bundle) < spec.min_observations
            ):
                return False
            if (
                spec.classes is not None
                and bundle.representative().object_class not in spec.classes
            ):
                return False
            return True
        # observations
        (obs,) = args
        if not _source_match(
            spec.has_model, spec.has_human, obs.is_model, obs.is_human
        ):
            return False
        if spec.classes is not None and obs.object_class not in spec.classes:
            return False
        return True


# ---------------------------------------------------------------------------
# Scene sources
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SceneSource:
    """Where an audit's scenes come from, as data.

    Exactly one of ``profile`` (a synthetic dataset profile name),
    ``paths`` (scene-JSON files written by ``Scene.save`` /
    ``repro.cli generate``), or ``warehouse`` (a
    :class:`~repro.warehouse.SceneWarehouse` database path) must be
    set. With ``profile``, ``split`` selects training or validation
    scenes and ``n_train``/``n_val`` size the build (rejected
    elsewhere, where ``split`` is irrelevant and ignored). With
    ``warehouse``, ``predicate`` (a
    :class:`~repro.warehouse.ScenePredicate` or its dict form) prunes
    the corpus on the metadata indexes and ``batch`` bounds how many
    decoded scenes an out-of-core audit keeps resident at once.
    ``indices`` picks specific scenes out of whatever ordered list the
    source resolves to — profile split, path list, or the warehouse's
    canonical fingerprint order alike.
    """

    profile: str | None = None
    split: str = "val"
    n_train: int | None = None
    n_val: int | None = None
    indices: tuple[int, ...] | None = None
    paths: tuple[str, ...] | None = None
    warehouse: str | None = None
    predicate: object = None
    batch: int | None = None

    def __post_init__(self):
        if self.indices is not None:
            object.__setattr__(self, "indices", tuple(self.indices))
        if self.paths is not None:
            object.__setattr__(self, "paths", tuple(str(p) for p in self.paths))
        if self.warehouse is not None:
            object.__setattr__(self, "warehouse", str(self.warehouse))
        if self.predicate is not None:
            from repro.warehouse.index import ScenePredicate

            if not isinstance(self.predicate, ScenePredicate):
                object.__setattr__(
                    self, "predicate", ScenePredicate.from_dict(self.predicate)
                )

    @property
    def is_out_of_core(self) -> bool:
        """True when this source can resolve lazily from a warehouse —
        backends should prefer :meth:`resolve_iter` over materializing."""
        return self.warehouse is not None

    @property
    def effective_batch(self) -> int:
        """The resident-batch budget for out-of-core resolution."""
        if self.batch is not None:
            return self.batch
        from repro.warehouse.store import DEFAULT_BATCH

        return DEFAULT_BATCH

    def validate(self) -> None:
        set_sources = [
            name
            for name in ("profile", "paths", "warehouse")
            if getattr(self, name) is not None
        ]
        if len(set_sources) != 1:
            raise SpecValidationError(
                "scene source needs exactly one of profile=, paths=, or "
                "warehouse="
            )
        if self.profile is not None:
            from repro.datasets import PROFILES

            if self.profile not in PROFILES:
                raise SpecValidationError(
                    f"unknown dataset profile {self.profile!r}; expected one "
                    f"of {sorted(PROFILES)}"
                )
        if self.split not in ("train", "val"):
            raise SpecValidationError(
                f"split must be 'train' or 'val', got {self.split!r}"
            )
        for name in ("n_train", "n_val"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise SpecValidationError(
                    f"{name} must be a positive integer, got {value!r}"
                )
            if value is not None and self.profile is None:
                raise SpecValidationError(
                    f"{name} sizes a profile build and does not apply to a "
                    f"{set_sources[0]}= scene source"
                )
        if self.indices is not None and not all(
            isinstance(i, int) and i >= 0 for i in self.indices
        ):
            raise SpecValidationError(
                f"indices must be non-negative integers, got {self.indices!r}"
            )
        for name in ("predicate", "batch"):
            if getattr(self, name) is not None and self.warehouse is None:
                raise SpecValidationError(
                    f"{name}= prunes a warehouse corpus and does not apply "
                    f"to a {set_sources[0]}= scene source"
                )
        if self.batch is not None and (
            not isinstance(self.batch, int) or self.batch < 1
        ):
            raise SpecValidationError(
                f"batch must be a positive integer, got {self.batch!r}"
            )

    def resolve(self):
        """Materialize the audit scenes (list of live ``Scene``)."""
        return list(self.resolve_iter())

    def resolve_iter(self):
        """Yield the audit scenes lazily, in the source's order.

        ``paths=`` sources load one file at a time and ``warehouse=``
        sources fetch blobs in ``effective_batch``-bounded chunks, so a
        streaming consumer never holds the whole corpus; ``profile``
        sources still build the dataset up front (synthesis is not
        incremental).
        """
        self.validate()
        if self.paths is not None:
            from repro.core.model import Scene

            paths = self._select(list(self.paths), "path list")
            for path in paths:
                yield Scene.load(path)
        elif self.warehouse is not None:
            with self.open_warehouse() as warehouse:
                fingerprints = self.warehouse_fingerprints(warehouse)
                for batch in warehouse.fetch_batches(
                    fingerprints, self.effective_batch
                ):
                    for _, scene in batch:
                        yield scene
        else:
            dataset = self._dataset()
            if self.split == "train":
                scenes = list(dataset.train_scenes)
            else:
                scenes = [ls.scene for ls in dataset.val_scenes]
            yield from self._select(scenes, f"split {self.split!r}")

    def open_warehouse(self):
        """The source's :class:`~repro.warehouse.SceneWarehouse`
        (existing databases only — a typo'd path fails loudly)."""
        from repro.warehouse import SceneWarehouse

        return SceneWarehouse(self.warehouse, create=False)

    def warehouse_fingerprints(self, warehouse) -> list[str]:
        """The pruned fingerprint list, in canonical (fingerprint)
        order, with ``indices`` applied."""
        fingerprints = warehouse.query(self.predicate)
        return self._select(fingerprints, "warehouse selection")

    def _select(self, items: list, described: str) -> list:
        if self.indices is None:
            return items
        for i in self.indices:
            if i >= len(items):
                raise SpecValidationError(
                    f"scene index {i} out of range ({described} has "
                    f"{len(items)} scenes)"
                )
        return [items[i] for i in self.indices]

    def resolve_training_scenes(self):
        """The profile's training split (the default model source)."""
        self.validate()
        if self.profile is None:
            raise SpecValidationError(
                f"a {'paths' if self.paths is not None else 'warehouse'}= "
                "scene source carries no training split; give the spec a "
                "model_path or pass a fitted engine / training scenes"
            )
        return list(self._dataset().train_scenes)

    def _dataset(self):
        from repro.datasets import PROFILES, build_dataset

        return build_dataset(
            PROFILES[self.profile],
            n_train_scenes=self.n_train,
            n_val_scenes=self.n_val,
        )

    def to_dict(self) -> dict:
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "split":
                # Only profile sources consult split; emitting it for
                # paths/warehouse sources made equivalent sources hash
                # to different spec_hash() values.
                if self.profile is not None:
                    out["split"] = self.split
            elif f.name == "predicate":
                if value is not None:
                    out["predicate"] = value.to_dict()
            elif value is not None:
                out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @staticmethod
    def from_dict(data: Mapping) -> "SceneSource":
        known = {f.name for f in fields(SceneSource)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecValidationError(f"unknown scene source fields: {unknown}")
        kwargs = dict(data)
        for name in ("indices", "paths"):
            if kwargs.get(name) is not None:
                kwargs[name] = tuple(kwargs[name])
        return SceneSource(**kwargs)


# ---------------------------------------------------------------------------
# The spec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AuditSpec:
    """One audit, declared as data.

    Attributes:
        kind: Component kind to rank (``"tracks"``/``"bundles"``/
            ``"observations"``; singulars accepted and canonicalized).
        top_k: Keep only the best ``top_k`` items (``None`` = all).
        filters: Declarative component filter (:class:`FilterSpec`).
        features: Named feature set (``"default"``/``"model_error"``).
        model_path: Path to a saved :class:`~repro.core.LearnedModel`
            JSON; ``None`` means fit on training scenes supplied at
            bind time (or the scene source's training split).
        scenes: Declarative scene source; ``None`` means live scenes
            are passed to :meth:`repro.api.Audit.run`.
        backend: Default execution backend name (overridable per run).
        backend_options: Keyword options for the backend constructor
            (e.g. ``{"n_workers": 4}`` for ``sharded``).
        version: Spec schema version (must equal :data:`SPEC_VERSION`).
    """

    kind: str = "tracks"
    top_k: int | None = None
    filters: FilterSpec | None = None
    features: str = "default"
    model_path: str | None = None
    scenes: SceneSource | None = None
    backend: str = "inline"
    backend_options: dict = field(default_factory=dict)
    version: int = SPEC_VERSION

    def __post_init__(self):
        object.__setattr__(self, "kind", normalize_rank_kind(self.kind))
        object.__setattr__(self, "backend_options", dict(self.backend_options))

    def validate(self) -> "AuditSpec":
        """Validate every field; returns self so calls chain."""
        if self.version != SPEC_VERSION:
            raise SpecValidationError(
                f"unsupported spec version {self.version!r}; this build "
                f"speaks version {SPEC_VERSION}"
            )
        normalize_rank_kind(self.kind)  # raises UnknownRankKindError
        if self.top_k is not None and (
            not isinstance(self.top_k, int) or self.top_k < 1
        ):
            raise SpecValidationError(
                f"top_k must be a positive integer or null, got {self.top_k!r}"
            )
        if self.features not in FEATURE_SETS:
            raise SpecValidationError(
                f"unknown feature set {self.features!r}; expected one of "
                f"{sorted(FEATURE_SETS)}"
            )
        if self.filters is not None:
            self.filters.validate(self.kind)
        if self.scenes is not None:
            self.scenes.validate()
        from repro.api.backends import require_backend

        require_backend(self.backend)
        if not isinstance(self.backend_options, dict):
            raise SpecValidationError(
                f"backend_options must be a mapping, got "
                f"{type(self.backend_options).__name__}"
            )
        return self

    def with_backend(self, backend: str, **backend_options) -> "AuditSpec":
        """A copy of this spec targeting a different backend."""
        return replace(
            self, backend=backend, backend_options=dict(backend_options)
        )

    def standing_spec(self) -> "AuditSpec":
        """This spec reduced to its standing-query fields.

        A standing audit (:class:`repro.serving.standing.StandingAudit`)
        ranks with the owning session's engine, so only ``kind``,
        ``top_k``, ``filters``, and ``features`` are meaningful —
        execution fields (model source, scene source, backend) are
        normalized away. Two specs that differ only in execution detail
        therefore hash to the same default subscription id.
        """
        return replace(
            self,
            model_path=None,
            scenes=None,
            backend="inline",
            backend_options={},
        )

    def compile_filter(self):
        """The spec's filter as a picklable callable (or ``None``)."""
        if self.filters is None:
            return None
        return self.filters.compile(self.kind)

    # ------------------------------------------------------------------
    # Serialization + identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {"version": self.version, "kind": self.kind}
        if self.top_k is not None:
            out["top_k"] = self.top_k
        if self.filters is not None and not self.filters.is_empty:
            out["filters"] = self.filters.to_dict()
        out["features"] = self.features
        if self.model_path is not None:
            out["model_path"] = self.model_path
        if self.scenes is not None:
            out["scenes"] = self.scenes.to_dict()
        out["backend"] = self.backend
        if self.backend_options:
            out["backend_options"] = dict(self.backend_options)
        return out

    @staticmethod
    def from_dict(data: Mapping) -> "AuditSpec":
        known = {f.name for f in fields(AuditSpec)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecValidationError(f"unknown spec fields: {unknown}")
        kwargs = dict(data)
        if kwargs.get("filters") is not None:
            kwargs["filters"] = FilterSpec.from_dict(kwargs["filters"])
        if kwargs.get("scenes") is not None:
            kwargs["scenes"] = SceneSource.from_dict(kwargs["scenes"])
        try:
            spec = AuditSpec(**kwargs)
        except TypeError as exc:
            raise SpecValidationError(f"bad spec payload: {exc}") from None
        return spec.validate()

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "AuditSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(f"spec is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise SpecValidationError("spec JSON must be an object")
        return AuditSpec.from_dict(data)

    def spec_hash(self) -> str:
        """Stable identity: blake2b over the canonical (sorted-key) JSON."""
        text = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()
