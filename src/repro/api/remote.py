"""The ``remote`` execution backend: one audit, N machines, one answer.

This closes the loop the API was designed around: ``AuditSpec`` is pure
data, the wire protocol carries it verbatim, and the backend registry
makes execution strategy a name — so distributing an audit across
machines is declared like any other backend choice::

    spec = AuditSpec(kind="tracks", top_k=25).with_backend(
        "remote", workers=["10.0.0.5:7500", "10.0.0.6:7500"]
    )
    result = Audit(spec, fixy=engine).run(scenes=scenes)
    # byte-identical to backend="inline"; provenance.workers says
    # which worker ranked which partition, and how fast.

Each worker is a ``python -m repro.cli serve --listen HOST:PORT``
process holding the *same* saved model; registration (the ``hello``
op) enforces that by fingerprint before a single scene ships, raising
``model_mismatch`` otherwise. Scenes are partitioned contiguously and
capacity-weighted across healthy workers (:mod:`repro.api.pool`),
each partition executes worker-side as an inline audit, a worker that
dies mid-audit has its partition requeued onto the survivors, and the
partial rankings merge through the same
:func:`~repro.core.scoring.merge_rankings` every other backend uses —
which is why the equivalence property suite can assert byte-identity
between ``remote`` and ``inline``.
"""

from __future__ import annotations

from repro.api import protocol
from repro.api.backends import ExecutionBackend, register_backend
from repro.api.pool import WorkerPool
from repro.core.scoring import ScoredItem

__all__ = ["RemoteBackend"]


@register_backend("remote")
class RemoteBackend(ExecutionBackend):
    """Distributed execution over TCP protocol workers.

    Options (all JSON-serializable, so
    ``AuditSpec.with_backend("remote", workers=[...])`` round-trips
    like any other spec):

    - ``workers``: worker addresses (``"host:port"`` strings) —
      required;
    - ``timeout``: per-request idle deadline in seconds (default
      600 s; ``None`` waits forever). Finite by default on purpose:
      a worker that dies *silently* — network partition, machine
      hang, no EOF ever arriving — must eventually trip the deadline
      so its partition can requeue onto the survivors; with ``None``
      the requeue guarantee only covers deaths that produce an
      EOF/reset;
    - ``connect_timeout``: TCP handshake deadline per connection;
    - ``check_model``: verify every worker's model fingerprint against
      the coordinating engine at registration (default True; turning
      it off surrenders the byte-identity guarantee);
    - ``wire``: ``"auto"`` (default — the protocol v2 binary framed
      wire with content-addressed scene shipping for workers that
      advertise it, classic line-JSON for v1-only workers, mixed pools
      welcome), ``"v1"`` (force line-JSON), or ``"v2"`` (require
      frames; a worker without them fails registration);
    - ``chunk_scenes``: scenes per dispatch request (default 8; 0 =
      one request per partition) — smaller chunks pipeline
      coordinator-side encoding against worker-side ranking;
    - ``pipeline``: framed requests kept in flight per worker;
    - ``capacity_refresh``: seconds between ``health`` re-checks of a
      healthy worker's advertised capacity (default 30; 0 re-checks
      before every audit, ``inf`` freezes registration-time values) —
      so partition weighting tracks live worker load.

    The pool registers lazily on first :meth:`run`, re-registers when
    the engine changes, and re-probes retired workers at the top of
    every dispatch (a restarted worker with the right model rejoins
    automatically). The backend remembers per-worker partition
    timings — plus wire format, bytes shipped, encode seconds, and
    worker scene-cache hits/misses — from the latest run and surfaces
    them through :meth:`provenance_extras` into
    ``AuditResult.provenance.workers``.
    """

    #: Default per-request idle deadline (seconds): generous enough for
    #: any realistic partition rank, finite so silent worker death
    #: always reaches the requeue path.
    DEFAULT_TIMEOUT = 600.0

    def __init__(
        self,
        workers=(),
        timeout: float | None = DEFAULT_TIMEOUT,
        connect_timeout: float | None = 5.0,
        check_model: bool = True,
        wire: str = "auto",
        chunk_scenes: int = 8,
        pipeline: int = 2,
        capacity_refresh: float = 30.0,
    ):
        from repro.api.pool import WIRE_MODES

        workers = list(workers)
        if not workers:
            raise TypeError(
                "the remote backend needs workers=[\"host:port\", ...]"
            )
        if wire not in WIRE_MODES:
            raise TypeError(
                f"wire must be one of {WIRE_MODES}, got {wire!r}"
            )
        self.workers = workers
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.check_model = check_model
        self.wire = wire
        self.chunk_scenes = chunk_scenes
        self.pipeline = pipeline
        self.capacity_refresh = capacity_refresh
        self._pool: WorkerPool | None = None
        self._fixy = None
        self._last_reports: list[dict] = []

    # ------------------------------------------------------------------
    def _expected_fingerprint(self, fixy):
        """The fingerprint registration must see: the engine's model
        hash (``None`` = require unfitted workers), or the skip
        sentinel ``...`` when ``check_model`` is off."""
        if not self.check_model:
            return ...
        learned = fixy.learned
        return learned.fingerprint() if learned is not None else None

    def _bind_pool(self, fixy) -> WorkerPool:
        if self._pool is not None and self._fixy is not fixy:
            # A pool is registered against one model fingerprint; a
            # different engine must re-register from scratch.
            self.close()
        if self._pool is None:
            pool = WorkerPool(
                self.workers,
                timeout=self.timeout,
                connect_timeout=self.connect_timeout,
                wire=self.wire,
                chunk_scenes=self.chunk_scenes,
                pipeline=self.pipeline,
                capacity_refresh=self.capacity_refresh,
            )
            pool.connect(expected_fingerprint=self._expected_fingerprint(fixy))
            self._pool = pool
            self._fixy = fixy
        return self._pool

    def run(self, fixy, spec, scenes, filt) -> list[ScoredItem]:
        pool = self._bind_pool(fixy)
        if not pool.healthy_workers():
            # Workers retired by a previous run: try to re-register
            # before declaring the pool dead.
            pool.connect(expected_fingerprint=self._expected_fingerprint(fixy))
        items, self._last_reports = pool.audit(spec, scenes)
        return items

    def run_stream(self, fixy, spec, source, filt):
        """Out-of-core distributed execution for warehouse sources.

        The coordinator resolves the predicate to a fingerprint list
        (an index scan — no blob is read) and dispatches fingerprint
        chunks through :meth:`WorkerPool.audit_warehouse`: workers
        sharing the warehouse path fetch blobs locally by hash, others
        are fed bodies one chunk at a time from the store. The corpus
        is never materialized coordinator-side, so
        ``peak_resident_scenes`` is 0 here by construction.
        """
        if not source.is_out_of_core:
            return super().run_stream(fixy, spec, source, filt)
        source.validate()
        pool = self._bind_pool(fixy)
        if not pool.healthy_workers():
            pool.connect(expected_fingerprint=self._expected_fingerprint(fixy))
        with source.open_warehouse() as warehouse:
            corpus = len(warehouse)
            fingerprints = source.warehouse_fingerprints(warehouse)
            items, self._last_reports = pool.audit_warehouse(
                spec, warehouse, fingerprints
            )
        return items, {
            "n_scenes": len(fingerprints),
            "out_of_core": True,
            "corpus_scenes": corpus,
            "selected_scenes": len(fingerprints),
            "pruned_scenes": corpus - len(fingerprints),
            "batch": source.effective_batch,
            "peak_resident_scenes": 0,
            "warehouse_workers": sum(
                1 for w in pool.healthy_workers() if w.has_warehouse
            ),
        }

    def provenance_extras(self) -> dict:
        """Worker attribution for the most recent run."""
        if not self._last_reports:
            return {}
        return {"workers": [dict(r) for r in self._last_reports]}

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._fixy = None


# Re-export for callers that treat the protocol error codes as the
# backend's failure vocabulary.
MODEL_MISMATCH = protocol.MODEL_MISMATCH
WORKER_UNAVAILABLE = protocol.WORKER_UNAVAILABLE
