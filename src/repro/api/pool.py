"""WorkerEndpoint / WorkerPool: N protocol workers as one audit surface.

A *worker* is any process speaking the serving protocol over TCP —
canonically ``python -m repro.cli serve --listen HOST:PORT``. The pool
turns a list of worker addresses into a distributed executor:

1. **Register** (:meth:`WorkerPool.connect`): each endpoint answers the
   ``hello`` op with its protocol version, model fingerprint, and
   capacity. A version the pool does not speak or a fingerprint that
   differs from the coordinator's model is fatal
   (``unsupported_version`` / ``model_mismatch``) — a pool never mixes
   models, because byte-identical rankings are the contract.
   Unreachable workers are recorded as unhealthy and skipped.
2. **Partition** (:func:`partition_scenes`): scenes are split into
   contiguous, capacity-weighted chunks in scene order. Contiguity is
   what keeps the final merge byte-identical to the inline backend —
   :func:`~repro.core.scoring.merge_rankings` breaks score ties by
   block submission order, and contiguous chunks concatenated in
   partition order preserve exactly the inline scene order.
3. **Dispatch**: each partition runs as one ``audit`` request on its
   worker over a dedicated connection (so requeued partitions never
   interleave frames on a shared socket). A worker that dies
   mid-audit — EOF, refused connection, timeout — is retired from the
   pool and its partition is **requeued** onto the next healthy
   worker; only when every worker is gone does the pool raise
   ``worker_unavailable``.
4. **Merge**: per-partition rankings (each already merged and
   truncated worker-side) are merged once more in partition order with
   the coordinator's ``top_k`` — the same two-level merge the sharded
   backend uses, and provably equal to the single global merge.

The pool reports per-worker attribution (address, partition, scenes,
seconds, attempts) which the ``remote`` backend surfaces as
``AuditResult.provenance.workers``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from repro.api import protocol
from repro.api.client import AuditClient, parse_address
from repro.core.scoring import ScoredItem, merge_rankings

__all__ = ["WorkerEndpoint", "WorkerPool", "partition_scenes"]


class WorkerEndpoint:
    """One remote worker address plus its registration state.

    The endpoint itself is cheap — connections are opened per request
    (:meth:`client`), so a pool can hold endpoints for workers that
    come and go. State:

    - ``info``: the worker's ``hello`` payload once registered;
    - ``healthy``: flips False when registration fails or a dispatch
      sees a transport failure; unhealthy workers get no partitions.
    """

    def __init__(
        self,
        address,
        timeout: float | None = None,
        connect_timeout: float | None = 5.0,
        probe_timeout: float | None = 10.0,
    ):
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.probe_timeout = probe_timeout
        self.info: dict | None = None
        self.healthy = False
        self.last_error: str | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def __repr__(self) -> str:
        state = "healthy" if self.healthy else "unhealthy"
        return f"WorkerEndpoint({self.address!r}, {state})"

    @property
    def capacity(self) -> int:
        """Advertised capacity (≥1; defaults to 1 until registered)."""
        if self.info is None:
            return 1
        return max(1, int(self.info.get("capacity") or 1))

    def client(self, probe: bool = False) -> AuditClient:
        """A fresh connection to this worker (caller closes it).

        ``probe`` connections use the short ``probe_timeout`` deadline:
        hello/health must answer fast, so a worker whose listener
        accepts but whose process is wedged cannot hang registration —
        only audit dispatches get the (possibly unbounded) ``timeout``.
        """
        return AuditClient.connect(
            (self.host, self.port),
            timeout=self.probe_timeout if probe else self.timeout,
            connect_timeout=self.connect_timeout,
        )

    def register(self, expected_fingerprint: str | None = ...) -> dict:
        """``hello`` the worker and validate what it advertises.

        Raises :class:`~repro.api.protocol.ProtocolError` with
        ``unsupported_version`` for a protocol we do not speak and
        ``model_mismatch`` when ``expected_fingerprint`` (pass ``None``
        to require an unfitted worker; the default ``...`` skips the
        check) differs from the worker's model. Transport failures
        propagate as typed :class:`~repro.api.protocol.TransportError`.
        """
        with self.client(probe=True) as client:
            info = client.hello()
        version = info.get("protocol_version")
        if version != protocol.PROTOCOL_VERSION:
            raise protocol.ProtocolError(
                protocol.UNSUPPORTED_VERSION,
                f"worker {self.address} speaks protocol {version!r}; this "
                f"pool speaks {protocol.PROTOCOL_VERSION}",
                details={"worker": self.address},
            )
        if expected_fingerprint is not ...:
            fingerprint = info.get("model_fingerprint")
            if fingerprint != expected_fingerprint:
                raise protocol.ProtocolError(
                    protocol.MODEL_MISMATCH,
                    f"worker {self.address} serves model "
                    f"{_short(fingerprint)} but the coordinator audits "
                    f"with {_short(expected_fingerprint)}; distributed "
                    "rankings must come from one model",
                    details={
                        "worker": self.address,
                        "worker_fingerprint": fingerprint,
                        "expected_fingerprint": expected_fingerprint,
                    },
                )
        self.info = info
        self.healthy = True
        self.last_error = None
        return info

    def health(self) -> dict:
        """One ``health`` probe (marks the endpoint on failure)."""
        try:
            with self.client(probe=True) as client:
                report = client.health()
        except protocol.TransportError as exc:
            self.mark_failed(str(exc))
            raise
        self.healthy = True
        return report

    def mark_failed(self, reason: str) -> None:
        self.healthy = False
        self.last_error = reason


def _short(fingerprint: str | None) -> str:
    return fingerprint[:12] if fingerprint else "<unfitted>"


def partition_scenes(scenes: list, workers: list) -> list[tuple[int, list]]:
    """Contiguous, capacity-weighted scene chunks in scene order.

    Returns ``[(worker_index, scenes_chunk), ...]`` covering every
    scene exactly once, chunk boundaries proportional to each worker's
    advertised capacity (largest-remainder rounding, deterministic).
    Workers may receive empty chunks only when there are more workers
    than scenes; empty chunks are dropped.
    """
    if not workers:
        raise protocol.ProtocolError(
            protocol.WORKER_UNAVAILABLE, "no healthy workers to partition over"
        )
    weights = [max(1, int(getattr(w, "capacity", 1))) for w in workers]
    total_weight = sum(weights)
    n = len(scenes)
    shares = [n * w / total_weight for w in weights]
    counts = [int(s) for s in shares]
    # Largest remainder (ties broken by worker order) to place the rest.
    remainders = sorted(
        range(len(workers)),
        key=lambda i: (-(shares[i] - counts[i]), i),
    )
    for i in remainders[: n - sum(counts)]:
        counts[i] += 1
    partitions: list[tuple[int, list]] = []
    start = 0
    for index, count in enumerate(counts):
        if count:
            partitions.append((index, scenes[start : start + count]))
            start += count
    return partitions


class WorkerPool:
    """A set of :class:`WorkerEndpoint` executing audits in parallel.

    Args:
        workers: Worker addresses (``"host:port"`` strings, ``(host,
            port)`` pairs, or prebuilt endpoints).
        timeout: Per-request deadline for audit dispatches (``None``
            waits forever — rankings can legitimately take a while).
        connect_timeout: TCP handshake deadline per connection.
        probe_timeout: Deadline for hello/health probes, always
            bounded so a wedged-but-accepting worker is skipped at
            registration instead of hanging the pool.
    """

    def __init__(
        self,
        workers,
        timeout: float | None = None,
        connect_timeout: float | None = 5.0,
        probe_timeout: float | None = 10.0,
    ):
        self.endpoints = [
            w
            if isinstance(w, WorkerEndpoint)
            else WorkerEndpoint(
                w,
                timeout=timeout,
                connect_timeout=connect_timeout,
                probe_timeout=probe_timeout,
            )
            for w in workers
        ]
        if not self.endpoints:
            raise ValueError("WorkerPool needs at least one worker address")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Registration + health
    # ------------------------------------------------------------------
    def connect(self, expected_fingerprint: str | None = ...) -> list[dict]:
        """Register every reachable worker; returns their hello payloads.

        Unreachable workers are marked unhealthy and skipped — the pool
        degrades, it does not fail — but a *reachable* worker with the
        wrong protocol version or model fingerprint raises immediately
        (that is a deployment error, not an outage). Raises
        ``worker_unavailable`` when no worker registered at all.
        """
        infos = []
        for endpoint in self.endpoints:
            try:
                infos.append(endpoint.register(expected_fingerprint))
            except protocol.TransportError as exc:
                endpoint.mark_failed(str(exc))
        if not infos:
            raise protocol.ProtocolError(
                protocol.WORKER_UNAVAILABLE,
                "no workers reachable: "
                + "; ".join(
                    f"{e.address}: {e.last_error}" for e in self.endpoints
                ),
            )
        return infos

    def healthy_workers(self) -> list[WorkerEndpoint]:
        with self._lock:
            return [e for e in self.endpoints if e.healthy]

    def health(self) -> dict[str, dict | None]:
        """Probe every endpoint; ``None`` for workers that failed."""
        out: dict[str, dict | None] = {}
        for endpoint in self.endpoints:
            try:
                out[endpoint.address] = endpoint.health()
            except protocol.TransportError:
                out[endpoint.address] = None
        return out

    # ------------------------------------------------------------------
    # Distributed audit
    # ------------------------------------------------------------------
    def audit(self, spec, scenes) -> tuple[list[ScoredItem], list[dict]]:
        """Run ``spec`` over ``scenes`` across the healthy workers.

        Returns ``(merged items, worker reports)``. The spec is shipped
        with ``backend="inline"`` (each worker executes its partition
        serially — the reference strategy) and without the coordinator's
        scene source (the scenes travel with the request). Failure of a
        worker mid-audit requeues its partition; see the module
        docstring for why the result stays byte-identical.
        """
        workers = self.healthy_workers()
        partitions = partition_scenes(list(scenes), workers)
        if not partitions:  # no scenes: nothing to dispatch
            return [], []
        # What the worker executes: same declaration, inline strategy,
        # scenes shipped explicitly rather than re-resolved remotely.
        ship_spec = replace(
            spec, backend="inline", backend_options={}, scenes=None
        )
        reports: list[dict | None] = [None] * len(partitions)
        blocks: list[list[ScoredItem] | None] = [None] * len(partitions)

        def run_partition(slot: int) -> None:
            worker_index, chunk = partitions[slot]
            worker = workers[worker_index]
            attempts = 0
            tried: set[str] = set()
            while True:
                attempts += 1
                tried.add(worker.address)
                t0 = time.perf_counter()
                try:
                    with worker.client() as client:
                        result = client.audit(ship_spec, scenes=chunk)
                except protocol.TransportError as exc:
                    with self._lock:
                        worker.mark_failed(str(exc))
                    worker = self._replacement(tried)
                    if worker is None:
                        raise protocol.ProtocolError(
                            protocol.WORKER_UNAVAILABLE,
                            f"partition {slot} ({len(chunk)} scenes) failed "
                            f"on every worker; last error: {exc}",
                        ) from exc
                    continue
                blocks[slot] = result.items
                reports[slot] = {
                    "worker": worker.address,
                    "partition": slot,
                    "n_scenes": len(chunk),
                    "rank_s": time.perf_counter() - t0,
                    "attempts": attempts,
                }
                return

        with ThreadPoolExecutor(max_workers=len(partitions)) as executor:
            futures = [
                executor.submit(run_partition, slot)
                for slot in range(len(partitions))
            ]
            for future in futures:
                future.result()  # re-raise the first partition failure

        merged = merge_rankings(
            [block for block in blocks if block is not None], spec.top_k
        )
        return merged, [report for report in reports if report is not None]

    def _replacement(self, tried: set[str]) -> WorkerEndpoint | None:
        """A healthy worker not yet tried for this partition (requeue
        target). Never a tried one — each tried worker was marked
        unhealthy when it failed, and re-dispatching a partition to the
        worker that just dropped it would loop, not recover."""
        for endpoint in self.healthy_workers():
            if endpoint.address not in tried:
                return endpoint
        return None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Forget registration state (connections are per-request)."""
        for endpoint in self.endpoints:
            endpoint.healthy = False
            endpoint.info = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
