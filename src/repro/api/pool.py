"""WorkerEndpoint / WorkerPool: N protocol workers as one audit surface.

A *worker* is any process speaking the serving protocol over TCP —
canonically ``python -m repro.cli serve --listen HOST:PORT``. The pool
turns a list of worker addresses into a distributed executor:

1. **Register** (:meth:`WorkerPool.connect`): each endpoint answers the
   ``hello`` op (sent at the baseline v1 dialect every deployed worker
   speaks) with its protocol version, model fingerprint, capacity, and
   wire formats. The pool then talks to each worker at the *negotiated*
   version — ``min(worker, ours)`` — so one pool drives v1-only and v2
   workers side by side. A version with no common dialect or a
   fingerprint that differs from the coordinator's model is fatal
   (``unsupported_version`` / ``model_mismatch``) — a pool never mixes
   models, because byte-identical rankings are the contract.
   Unreachable workers are recorded as unhealthy and skipped.
2. **Re-probe** (:meth:`WorkerPool.reprobe`, run at the top of every
   :meth:`audit`): retired endpoints are re-``hello``-ed and re-admitted
   when they answer with a matching model fingerprint — a restarted
   worker rejoins a long-lived pool without a rebuild. One that comes
   back with the *wrong* model stays retired.
3. **Partition** (:func:`partition_scenes`): scenes are split into
   contiguous, capacity-weighted chunks in scene order. Contiguity is
   what keeps the final merge byte-identical to the inline backend —
   :func:`~repro.core.scoring.merge_rankings` breaks score ties by
   block submission order, and contiguous chunks concatenated in
   partition order preserve exactly the inline scene order.
4. **Dispatch**: each partition streams to its worker as a sequence of
   scene *chunks* over one dedicated connection (so requeued partitions
   never interleave frames on a shared socket). Against a v2 worker the
   chunks ride the binary framed wire, content-addressed: the request
   names ``scene_hashes`` and carries packed bodies only for hashes the
   coordinator has not yet shipped to that worker; the worker answers
   ``need`` for anything its cache evicted, and only those bodies are
   resent — a warm audit of the same scenes ships ids, not bodies.
   Chunks are pipelined (up to ``pipeline`` requests in flight), so
   coordinator-side encoding of chunk *i+1* overlaps worker-side
   ranking of chunk *i*. Against a v1 worker the same chunks travel as
   classic line-JSON ``audit`` requests. Either way the encoded payload
   per scene — dict, packed bytes, content hash — is computed once and
   cached (:class:`_ScenePayloads`), so a requeued partition (and the
   next audit of the same scenes) reuses bytes instead of re-encoding.
   A worker that dies mid-partition — EOF, refused connection,
   timeout — is retired and its *unfinished* chunks are requeued onto
   the next healthy worker; only when every worker is gone does the
   pool raise ``worker_unavailable``.
5. **Merge**: per-chunk rankings (each already merged and truncated
   worker-side) are merged once more in global chunk order with the
   coordinator's ``top_k`` — the same multi-level merge the sharded
   backend uses, and provably equal to the single global merge because
   chunks are contiguous sub-ranges in scene order.

The pool reports per-worker attribution (address, partition, scenes,
seconds, attempts, wire format, bytes on the wire, encode time, and
worker scene-cache hits/misses) which the ``remote`` backend surfaces
as ``AuditResult.provenance.workers``.

The payload cache assumes scenes are not mutated in place between
audits through the same pool (scene *objects* are the cache key); edit
workflows go through :class:`~repro.serving.session.SceneSession`,
which never mutates the source scene. Call
:meth:`WorkerPool.clear_scene_cache` after mutating a scene in place.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from repro.api import frames, protocol
from repro.api.client import AuditClient, parse_address
from repro.api.result import AuditResult
from repro.core.scoring import ScoredItem, merge_rankings
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import Stopwatch

__all__ = ["WorkerEndpoint", "WorkerPool", "partition_scenes"]

# Coordinator-side dispatch metrics (names are API — docs/API.md,
# "Observability"). The per-partition report dicts in
# ``provenance.workers`` stay as per-audit attribution; these series
# are the *cumulative* live view an operator scrapes.
_DISPATCH_SECONDS = obs_metrics.histogram(
    "repro_pool_dispatch_seconds",
    "Seconds per successful partition dispatch, by wire format",
    labelnames=("wire",),
)
_ENCODE_SECONDS = obs_metrics.counter(
    "repro_pool_encode_seconds_total",
    "Cumulative seconds spent encoding scene payloads for dispatch",
)
_BYTES_SENT = obs_metrics.counter(
    "repro_pool_bytes_sent_total",
    "Bytes written to workers, by wire format",
    labelnames=("wire",),
)
_BYTES_RECEIVED = obs_metrics.counter(
    "repro_pool_bytes_received_total",
    "Bytes read back from workers, by wire format",
    labelnames=("wire",),
)
_CHUNKS = obs_metrics.counter(
    "repro_pool_chunks_total",
    "Scene chunks dispatched, by wire format",
    labelnames=("wire",),
)
_CACHE_HITS = obs_metrics.counter(
    "repro_pool_scene_cache_hits_total",
    "Worker scene-cache hits reported on v2 audit responses",
)
_CACHE_MISSES = obs_metrics.counter(
    "repro_pool_scene_cache_misses_total",
    "Worker scene-cache misses reported on v2 audit responses",
)
_REQUEUES = obs_metrics.counter(
    "repro_pool_requeues_total",
    "Partitions requeued onto a replacement after a worker death",
)
_REFILLS = obs_metrics.counter(
    "repro_pool_refills_total",
    "Chunk body refills after a worker answered `need`",
)

#: Wire preferences a pool accepts: negotiate per worker ("auto"),
#: force classic line-JSON ("v1"), or require the framed wire ("v2").
WIRE_MODES = ("auto", "v1", "v2")


class _ScenePayloads:
    """Encoded-payload cache: one dict / packed-bytes / hash per scene.

    Keyed by scene object identity (guarded by a weakref so a recycled
    ``id()`` can never alias a dead scene), computed lazily, bounded
    LRU. This is what makes a requeued partition — and the next audit
    of the same scene list — reuse bytes instead of calling
    ``Scene.to_dict()`` + encode again.
    """

    def __init__(self, maxsize: int = 4096):
        self.maxsize = max(1, int(maxsize))
        self._entries: OrderedDict[int, dict] = OrderedDict()
        self._lock = threading.Lock()

    def _entry(self, scene) -> dict:
        key = id(scene)
        entry = self._entries.get(key)
        if entry is not None and entry["ref"]() is scene:
            self._entries.move_to_end(key)
            return entry
        entry = {
            "ref": weakref.ref(scene),
            "dict": None,
            "packed": None,
            "hash": None,
        }
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def dict_for(self, scene) -> dict:
        with self._lock:
            entry = self._entry(scene)
            payload = entry["dict"]
        if payload is None:
            payload = scene.to_dict()  # encode outside the lock
            with self._lock:
                entry["dict"] = payload
        return payload

    def packed_for(self, scene) -> tuple[bytes, str]:
        """``(packed bytes, content hash)`` for one scene."""
        with self._lock:
            entry = self._entry(scene)
            packed, fingerprint = entry["packed"], entry["hash"]
        if packed is None:
            packed = frames.pack_scene(scene)
            fingerprint = frames.scene_fingerprint(packed)
            with self._lock:
                entry["packed"], entry["hash"] = packed, fingerprint
        return packed, fingerprint

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class WorkerEndpoint:
    """One remote worker address plus its registration state.

    The endpoint itself is cheap — connections are opened per request
    (:meth:`client`), so a pool can hold endpoints for workers that
    come and go. State:

    - ``info``: the worker's ``hello`` payload once registered;
    - ``healthy``: flips False when registration fails or a dispatch
      sees a transport failure; unhealthy workers get no partitions
      (until :meth:`WorkerPool.reprobe` re-admits them);
    - ``protocol_version`` / ``wire_formats``: the negotiated dialect
      and the wire the worker can speak (v2 workers advertise
      ``"frames"``);
    - a bounded mirror of which scene hashes this worker should
      already hold (:meth:`knows` / :meth:`remember`), sized to the
      worker's advertised scene cache — the coordinator ships bodies
      proactively for unknown hashes and relies on the worker's
      ``need`` reply to heal any divergence.
    """

    def __init__(
        self,
        address,
        timeout: float | None = None,
        connect_timeout: float | None = 5.0,
        probe_timeout: float | None = 10.0,
    ):
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.probe_timeout = probe_timeout
        self.info: dict | None = None
        self.healthy = False
        self.last_error: str | None = None
        self.protocol_version = protocol.BASELINE_VERSION
        self.wire_formats: tuple[str, ...] = ("json",)
        self._known_hashes: OrderedDict[str, None] = OrderedDict()
        self._known_limit = 256
        # Monotonic deadline before which reprobe() leaves this
        # endpoint alone — set after a *failed* probe so one blackholed
        # worker cannot add its connect timeout to every audit.
        self._next_probe_at = 0.0
        # When the advertised capacity was last confirmed against the
        # live worker (registration or a health probe) — what the
        # pool's periodic capacity refresh keys off.
        self._capacity_checked_at = 0.0
        # One persistent dispatch connection, reused across audits so
        # the warm path pays no TCP handshake. Guarded by a try-lock:
        # a second concurrent dispatch to the same worker (a requeued
        # partition) gets an ad-hoc connection instead of blocking.
        self._cached_client: AuditClient | None = None
        self._cached_wire: str | None = None
        self._client_lock = threading.Lock()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def __repr__(self) -> str:
        state = "healthy" if self.healthy else "unhealthy"
        return f"WorkerEndpoint({self.address!r}, {state})"

    @property
    def capacity(self) -> int:
        """Advertised capacity (≥1; defaults to 1 until registered)."""
        if self.info is None:
            return 1
        return max(1, int(self.info.get("capacity") or 1))

    @property
    def supports_frames(self) -> bool:
        """Whether dispatch may use the v2 framed wire on this worker."""
        return self.protocol_version >= 2 and "frames" in self.wire_formats

    @property
    def has_warehouse(self) -> bool:
        """Whether the worker resolves scene hashes from a shared
        warehouse (its ``hello`` advertises ``warehouse: true``).
        Warehouse dispatches then ship hashes with no bodies at all —
        the worker fetches blobs locally; the ``need``-refill protocol
        remains the fallback when its warehouse misses."""
        return bool(self.info and self.info.get("warehouse"))

    # -- coordinator-side mirror of the worker's scene cache ----------
    def knows(self, fingerprint: str) -> bool:
        return fingerprint in self._known_hashes

    def remember(self, fingerprint: str) -> None:
        self._known_hashes[fingerprint] = None
        self._known_hashes.move_to_end(fingerprint)
        while len(self._known_hashes) > self._known_limit:
            self._known_hashes.popitem(last=False)

    def client(self, probe: bool = False, wire: str = "json") -> AuditClient:
        """A fresh connection to this worker (caller closes it).

        ``probe`` connections use the short ``probe_timeout`` deadline
        and the baseline protocol version (hello/health must answer
        fast and must work against workers whose version is still
        unknown); audit dispatches get the (possibly unbounded)
        ``timeout`` and the endpoint's negotiated version. Pass
        ``wire="frames"`` for the v2 binary wire (only when
        :attr:`supports_frames`).
        """
        if probe:
            return AuditClient.connect(
                (self.host, self.port),
                timeout=self.probe_timeout,
                connect_timeout=self.connect_timeout,
                version=protocol.BASELINE_VERSION,
            )
        return AuditClient.connect(
            (self.host, self.port),
            timeout=self.timeout,
            connect_timeout=self.connect_timeout,
            wire=wire,
            version=self.protocol_version,
        )

    def lease(self, wire: str) -> tuple[AuditClient, bool, bool]:
        """A dispatch connection: the persistent one when free, else a
        fresh ad-hoc one. Returns ``(client, leased, reused)`` —
        ``reused`` means the client predates this lease, so a
        transport failure on it may just be a stale socket (worker
        restart, NAT timeout) rather than a dead worker, and the
        dispatcher retries once on a fresh connection before retiring
        the endpoint. Always pair with :meth:`release`."""
        if self._client_lock.acquire(blocking=False):
            client = self._cached_client
            reused = client is not None and self._cached_wire == wire
            if not reused:
                if client is not None:
                    client.close()
                    self._cached_client = None
                try:
                    client = self.client(wire=wire)
                except BaseException:
                    self._client_lock.release()
                    raise
                self._cached_client = client
                self._cached_wire = wire
            return client, True, reused
        return self.client(wire=wire), False, False

    def release(self, client: AuditClient, leased: bool, ok: bool) -> None:
        """Return a leased/ad-hoc connection (drop it on failure)."""
        if leased:
            if not ok:
                client.close()
                self._cached_client = None
            self._client_lock.release()
        else:
            client.close()  # ad-hoc connections never persist

    def drop_cached_client(self) -> None:
        """Close the persistent connection (if not currently leased)."""
        if self._client_lock.acquire(blocking=False):
            try:
                if self._cached_client is not None:
                    self._cached_client.close()
                    self._cached_client = None
            finally:
                self._client_lock.release()

    def register(self, expected_fingerprint: str | None = ...) -> dict:
        """``hello`` the worker and validate what it advertises.

        Raises :class:`~repro.api.protocol.ProtocolError` with
        ``unsupported_version`` for a protocol we share no dialect
        with and ``model_mismatch`` when ``expected_fingerprint``
        (pass ``None`` to require an unfitted worker; the default
        ``...`` skips the check) differs from the worker's model.
        Transport failures propagate as typed
        :class:`~repro.api.protocol.TransportError`.
        """
        with self.client(probe=True) as client:
            info = client.hello()
        # The worker's ceiling: ``max_protocol_version`` (additive, v2+
        # workers), falling back to ``protocol_version`` (all a PR-4
        # worker reports — and which v2 workers mirror at the request's
        # version so PR-4 *coordinators* keep accepting them).
        version = info.get("max_protocol_version", info.get("protocol_version"))
        try:
            negotiated = min(int(version), protocol.PROTOCOL_VERSION)
        except (TypeError, ValueError):
            negotiated = None
        if negotiated not in protocol.SUPPORTED_VERSIONS:
            raise protocol.ProtocolError(
                protocol.UNSUPPORTED_VERSION,
                f"worker {self.address} speaks protocol {version!r}; this "
                f"pool speaks {protocol.PROTOCOL_VERSION}",
                details={"worker": self.address},
            )
        if expected_fingerprint is not ...:
            fingerprint = info.get("model_fingerprint")
            if fingerprint != expected_fingerprint:
                raise protocol.ProtocolError(
                    protocol.MODEL_MISMATCH,
                    f"worker {self.address} serves model "
                    f"{_short(fingerprint)} but the coordinator audits "
                    f"with {_short(expected_fingerprint)}; distributed "
                    "rankings must come from one model",
                    details={
                        "worker": self.address,
                        "worker_fingerprint": fingerprint,
                        "expected_fingerprint": expected_fingerprint,
                    },
                )
        self.info = info
        self.protocol_version = negotiated
        self.wire_formats = tuple(info.get("wire_formats") or ("json",))
        self._known_limit = max(1, int(info.get("scene_cache") or 0) or 256)
        # A (re)registered worker may be a fresh process: assume its
        # scene cache is empty and let `need` replies heal the rest.
        self._known_hashes.clear()
        self.healthy = True
        self.last_error = None
        self._capacity_checked_at = time.monotonic()
        return info

    def health(self) -> dict:
        """One ``health`` probe (marks the endpoint on failure).

        A successful probe also folds the worker's *live* advertised
        capacity into the registration info, so
        :func:`partition_scenes` weighting tracks current load instead
        of the snapshot frozen at registration — the elasticity half of
        the pool's self-healing (reprobe is the liveness half).
        """
        try:
            with self.client(probe=True) as client:
                report = client.health()
        except protocol.TransportError as exc:
            self.mark_failed(str(exc))
            raise
        self.healthy = True
        if self.info is not None and "capacity" in report:
            self.info["capacity"] = report["capacity"]
        self._capacity_checked_at = time.monotonic()
        return report

    def mark_failed(self, reason: str) -> None:
        self.healthy = False
        self.last_error = reason
        # The worker may come back as a fresh process with an empty
        # scene cache — drop the mirror rather than trust it.
        self._known_hashes.clear()
        self.drop_cached_client()


def _short(fingerprint: str | None) -> str:
    return fingerprint[:12] if fingerprint else "<unfitted>"


def partition_scenes(scenes: list, workers: list) -> list[tuple[int, list]]:
    """Contiguous, capacity-weighted scene chunks in scene order.

    Returns ``[(worker_index, scenes_chunk), ...]`` covering every
    scene exactly once, chunk boundaries proportional to each worker's
    advertised capacity (largest-remainder rounding, deterministic).
    Workers may receive empty chunks only when there are more workers
    than scenes; empty chunks are dropped.
    """
    if not workers:
        raise protocol.ProtocolError(
            protocol.WORKER_UNAVAILABLE, "no healthy workers to partition over"
        )
    weights = [max(1, int(getattr(w, "capacity", 1))) for w in workers]
    total_weight = sum(weights)
    n = len(scenes)
    shares = [n * w / total_weight for w in weights]
    counts = [int(s) for s in shares]
    # Largest remainder (ties broken by worker order) to place the rest.
    remainders = sorted(
        range(len(workers)),
        key=lambda i: (-(shares[i] - counts[i]), i),
    )
    for i in remainders[: n - sum(counts)]:
        counts[i] += 1
    partitions: list[tuple[int, list]] = []
    start = 0
    for index, count in enumerate(counts):
        if count:
            partitions.append((index, scenes[start : start + count]))
            start += count
    return partitions


class WorkerPool:
    """A set of :class:`WorkerEndpoint` executing audits in parallel.

    Args:
        workers: Worker addresses (``"host:port"`` strings, ``(host,
            port)`` pairs, or prebuilt endpoints).
        timeout: Per-request deadline for audit dispatches (``None``
            waits forever — rankings can legitimately take a while).
        connect_timeout: TCP handshake deadline per connection.
        probe_timeout: Deadline for hello/health probes, always
            bounded so a wedged-but-accepting worker is skipped at
            registration instead of hanging the pool.
        wire: ``"auto"`` (v2 frames for workers that advertise them,
            line-JSON for the rest — the mixed-pool default), ``"v1"``
            (force line-JSON everywhere), or ``"v2"`` (require the
            framed wire; a worker without it fails registration).
        chunk_scenes: Scenes per dispatch request (0 = one request per
            partition). Smaller chunks pipeline encode against worker
            compute and requeue less work when a worker dies.
        pipeline: Framed requests kept in flight per worker connection.
        reprobe_interval: Seconds a retired endpoint is left alone
            after a *failed* re-probe, so an endpoint that stays dead
            costs one connect timeout per interval, not per audit.
        capacity_refresh: Seconds between ``health`` probes of a
            healthy worker's advertised capacity (0 = re-check before
            every audit; ``float("inf")`` = freeze registration-time
            capacities). Keeps :func:`partition_scenes` weighting
            tracking live load as workers scale up or down.
    """

    def __init__(
        self,
        workers,
        timeout: float | None = None,
        connect_timeout: float | None = 5.0,
        probe_timeout: float | None = 10.0,
        wire: str = "auto",
        chunk_scenes: int = 8,
        pipeline: int = 2,
        reprobe_interval: float = 10.0,
        capacity_refresh: float = 30.0,
    ):
        if wire not in WIRE_MODES:
            raise TypeError(
                f"wire must be one of {WIRE_MODES}, got {wire!r}"
            )
        self.endpoints = [
            w
            if isinstance(w, WorkerEndpoint)
            else WorkerEndpoint(
                w,
                timeout=timeout,
                connect_timeout=connect_timeout,
                probe_timeout=probe_timeout,
            )
            for w in workers
        ]
        if not self.endpoints:
            raise ValueError("WorkerPool needs at least one worker address")
        self.wire = wire
        self.chunk_scenes = max(0, int(chunk_scenes))
        self.pipeline = max(1, int(pipeline))
        self.reprobe_interval = max(0.0, float(reprobe_interval))
        self.capacity_refresh = max(0.0, float(capacity_refresh))
        self._payloads = _ScenePayloads()
        self._expected_fingerprint = ...
        self._lock = threading.Lock()
        # Persistent dispatch threads: spawning a pool per audit costs
        # more than a whole warm ids-only audit does.
        self._executor: ThreadPoolExecutor | None = None
        self._executor_width = 0

    # ------------------------------------------------------------------
    # Registration + health
    # ------------------------------------------------------------------
    def connect(self, expected_fingerprint: str | None = ...) -> list[dict]:
        """Register every reachable worker; returns their hello payloads.

        Unreachable workers are marked unhealthy and skipped — the pool
        degrades, it does not fail — but a *reachable* worker with the
        wrong protocol version, missing v2 support under ``wire="v2"``,
        or the wrong model fingerprint raises immediately (that is a
        deployment error, not an outage). Raises ``worker_unavailable``
        when no worker registered at all.
        """
        self._expected_fingerprint = expected_fingerprint
        infos = []
        for endpoint in self.endpoints:
            try:
                infos.append(endpoint.register(expected_fingerprint))
            except protocol.TransportError as exc:
                endpoint.mark_failed(str(exc))
                endpoint._next_probe_at = (
                    time.monotonic() + self.reprobe_interval
                )
                continue
            self._require_wire(endpoint)
        if not infos:
            raise protocol.ProtocolError(
                protocol.WORKER_UNAVAILABLE,
                "no workers reachable: "
                + "; ".join(
                    f"{e.address}: {e.last_error}" for e in self.endpoints
                ),
            )
        return infos

    def _require_wire(self, endpoint: WorkerEndpoint) -> None:
        if self.wire == "v2" and not endpoint.supports_frames:
            raise protocol.ProtocolError(
                protocol.UNSUPPORTED_VERSION,
                f"worker {endpoint.address} does not support the v2 "
                "framed wire required by wire='v2' (it advertises "
                f"{list(endpoint.wire_formats)})",
                details={"worker": endpoint.address},
            )

    def reprobe(self) -> list[str]:
        """Re-``hello`` retired endpoints; re-admit the matching ones.

        The self-healing half of worker-pool elasticity: called at the
        top of every :meth:`audit`, so a worker that died and was
        restarted rejoins the pool without a rebuild — *if* it answers
        with a model fingerprint matching the one this pool registered
        against (and the required wire). Ones that stay unreachable or
        come back wrong stay retired, with ``last_error`` updated.
        A probe that *fails* parks the endpoint for
        ``reprobe_interval`` seconds, so an endpoint that stays dead
        costs one connect timeout per interval, not one per audit.
        Returns the re-admitted addresses.
        """
        readmitted = []
        now = time.monotonic()
        for endpoint in self.endpoints:
            if endpoint.healthy or endpoint.last_error is None:
                # Healthy, or never probed (connect() has not run).
                continue
            if now < endpoint._next_probe_at:
                continue  # recently failed a probe: leave it parked
            try:
                endpoint.register(self._expected_fingerprint)
                self._require_wire(endpoint)
            except protocol.TransportError as exc:
                endpoint.mark_failed(str(exc))
                endpoint._next_probe_at = now + self.reprobe_interval
            except protocol.ProtocolError as exc:
                # Came back with the wrong model/protocol: stays out.
                endpoint.mark_failed(str(exc))
                endpoint._next_probe_at = now + self.reprobe_interval
            else:
                endpoint._next_probe_at = 0.0
                readmitted.append(endpoint.address)
        return readmitted

    def refresh_capacity(self) -> list[str]:
        """Re-check healthy workers' advertised capacity when stale.

        The elasticity half of the pool's self-healing: every
        :meth:`audit` calls this (after :meth:`reprobe`), and any
        healthy worker whose capacity was last confirmed more than
        ``capacity_refresh`` seconds ago gets one ``health`` probe,
        whose live capacity :meth:`WorkerEndpoint.health` folds into
        the partition weighting. A probe that fails retires the
        endpoint the same way any probe failure does (and
        :meth:`reprobe` later re-admits it). Returns the addresses
        whose capacity actually changed.
        """
        changed = []
        if self.capacity_refresh == float("inf"):
            return changed
        now = time.monotonic()
        for endpoint in self.endpoints:
            if not endpoint.healthy or endpoint.info is None:
                continue
            if now - endpoint._capacity_checked_at < self.capacity_refresh:
                continue
            before = endpoint.capacity
            try:
                endpoint.health()
            except protocol.TransportError:
                continue  # retired by the probe; reprobe() may heal it
            if endpoint.capacity != before:
                changed.append(endpoint.address)
        return changed

    def healthy_workers(self) -> list[WorkerEndpoint]:
        with self._lock:
            return [e for e in self.endpoints if e.healthy]

    def health(self) -> dict[str, dict | None]:
        """Probe every endpoint; ``None`` for workers that failed."""
        out: dict[str, dict | None] = {}
        for endpoint in self.endpoints:
            try:
                out[endpoint.address] = endpoint.health()
            except protocol.TransportError:
                out[endpoint.address] = None
        return out

    def clear_scene_cache(self) -> None:
        """Drop cached per-scene payloads (after in-place scene edits)."""
        self._payloads.clear()
        with self._lock:
            for endpoint in self.endpoints:
                endpoint._known_hashes.clear()

    # ------------------------------------------------------------------
    # Distributed audit
    # ------------------------------------------------------------------
    def audit(self, spec, scenes) -> tuple[list[ScoredItem], list[dict]]:
        """Run ``spec`` over ``scenes`` across the healthy workers.

        Returns ``(merged items, worker reports)``. The spec is shipped
        with ``backend="inline"`` (each worker executes its chunk
        serially — the reference strategy) and without the
        coordinator's scene source (the scenes travel with the
        request, as bodies or content hashes). Failure of a worker
        mid-audit requeues its unfinished chunks; see the module
        docstring for why the result stays byte-identical.

        When the calling thread has an ambient trace
        (:func:`repro.obs.trace.current_trace`), every dispatch
        attempt records a ``pool.dispatch`` span parented under the
        caller's current span, requests carry the trace id, and each
        worker's piggybacked spans are stitched under its dispatch
        span — one end-to-end trace per audit. The (trace, parent) is
        captured *here* because dispatch runs on executor threads,
        where contextvars don't follow.
        """
        return self._run_chunked(spec, list(scenes))

    def audit_warehouse(
        self, spec, warehouse, fingerprints
    ) -> tuple[list[ScoredItem], list[dict]]:
        """Run ``spec`` over warehouse ``fingerprints`` out-of-core.

        Same contract as :meth:`audit` but the coordinator never
        materializes the corpus: partitions carry fingerprint chunks,
        and blob bodies are fetched from ``warehouse`` one chunk at a
        time only for workers that cannot resolve the hash themselves —
        workers sharing the warehouse path (``hello`` advertises it)
        receive hashes alone and fetch locally, making the coordinator
        a pure control plane. The ``need``-refill protocol is the
        fallback either way, so the merged result is byte-identical to
        :meth:`audit` over the same scenes in the same order.
        """
        return self._run_chunked(spec, list(fingerprints), warehouse=warehouse)

    def _run_chunked(
        self, spec, items: list, warehouse=None
    ) -> tuple[list[ScoredItem], list[dict]]:
        """Shared partition → dispatch → requeue → merge machinery.

        ``items`` are live scenes (``warehouse=None``) or fingerprint
        strings (warehouse dispatch); everything below chunk encoding
        is identical, including the failure/requeue path.
        """
        trace = obs_trace.current_trace()
        trace_parent = obs_trace.current_span_id()
        self.reprobe()
        self.refresh_capacity()
        workers = self.healthy_workers()
        partitions = partition_scenes(items, workers)
        if not partitions:  # no scenes: nothing to dispatch
            return [], []
        # What the worker executes: same declaration, inline strategy,
        # scenes shipped explicitly rather than re-resolved remotely.
        ship_spec = replace(
            spec, backend="inline", backend_options={}, scenes=None
        )
        spec_payload = ship_spec.to_dict()  # encoded once, reused per chunk

        # Split partitions into dispatch chunks; `blocks` is indexed by
        # global chunk order = scene order (the merge contract).
        jobs: list[tuple[WorkerEndpoint, list[tuple[int, list]]]] = []
        n_chunks = 0
        for worker_index, part in partitions:
            size = self.chunk_scenes or len(part)
            chunk_jobs = [
                (n_chunks + j, part[i : i + size])
                for j, i in enumerate(range(0, len(part), size))
            ]
            jobs.append((workers[worker_index], chunk_jobs))
            n_chunks += len(chunk_jobs)
        blocks: list[list[ScoredItem] | None] = [None] * n_chunks
        # One report per (partition, worker that completed chunks) —
        # after a mid-partition death the dead worker keeps credit for
        # the chunks it finished, the replacement for the rest.
        reports: list[list[dict]] = [[] for _ in jobs]

        def run_partition(slot: int) -> None:
            worker, chunk_jobs = jobs[slot]
            attempts = 0
            tried: set[str] = set()
            fresh_retried: set[str] = set()
            remaining = chunk_jobs
            while True:
                attempts += 1
                watch = Stopwatch()
                try:
                    # One span per dispatch *attempt*: a requeued
                    # partition shows up as two pool.dispatch spans
                    # with distinct worker/attempt attrs (the failed
                    # one carrying an "error" attr).
                    with obs_trace.span(
                        "pool.dispatch",
                        trace=trace,
                        parent=trace_parent,
                        attrs={
                            "worker": worker.address,
                            "partition": slot,
                            "attempt": attempts,
                        },
                    ) as dispatch_span:
                        stats = self._dispatch(
                            worker,
                            spec_payload,
                            remaining,
                            blocks,
                            trace=trace,
                            parent_span=dispatch_span.span_id,
                            warehouse=warehouse,
                        )
                        dispatch_span.attrs["wire"] = stats["wire"]
                except protocol.TransportError as exc:
                    elapsed = watch.s
                    if (
                        getattr(exc, "reused_connection", False)
                        and worker.address not in fresh_retried
                    ):
                        # The failure was on a connection cached from an
                        # earlier audit — a worker restart or idle-socket
                        # death looks identical to a live failure. Retry
                        # this worker once on a fresh connection before
                        # retiring it (the stale client was already
                        # dropped by release()).
                        fresh_retried.add(worker.address)
                        remaining = [
                            job for job in remaining if blocks[job[0]] is None
                        ]
                        continue
                    tried.add(worker.address)
                    with self._lock:
                        worker.mark_failed(str(exc))
                    # Chunks that completed before the death keep their
                    # blocks (credited to the worker that ranked them);
                    # only unfinished ones requeue.
                    finished = [
                        job for job in remaining if blocks[job[0]] is not None
                    ]
                    if finished:
                        reports[slot].append(
                            {
                                "worker": worker.address,
                                "partition": slot,
                                "n_scenes": sum(len(c) for _, c in finished),
                                "rank_s": elapsed,
                                "attempts": attempts,
                                "failed_after": str(exc),
                            }
                        )
                    remaining = [
                        job for job in remaining if blocks[job[0]] is None
                    ]
                    worker = self._replacement(tried)
                    if worker is None:
                        n_left = sum(len(c) for _, c in remaining)
                        raise protocol.ProtocolError(
                            protocol.WORKER_UNAVAILABLE,
                            f"partition {slot} ({n_left} scenes) failed "
                            f"on every worker; last error: {exc}",
                        ) from exc
                    _REQUEUES.inc()
                    continue
                _DISPATCH_SECONDS.observe(watch.s, wire=stats["wire"])
                reports[slot].append(
                    {
                        "worker": worker.address,
                        "partition": slot,
                        "n_scenes": sum(len(c) for _, c in remaining),
                        "rank_s": watch.s,
                        "attempts": attempts,
                        **stats,
                    }
                )
                return

        executor = self._dispatch_executor(len(jobs))
        futures = [
            executor.submit(run_partition, slot) for slot in range(len(jobs))
        ]
        for future in futures:
            future.result()  # re-raise the first partition failure

        merged = merge_rankings(
            [block for block in blocks if block is not None], spec.top_k
        )
        return merged, [report for slot in reports for report in slot]

    def _dispatch_executor(self, width: int) -> ThreadPoolExecutor:
        """The reusable partition-dispatch thread pool (grown on demand)."""
        with self._lock:
            if self._executor is None or self._executor_width < width:
                old = self._executor
                self._executor_width = max(width, len(self.endpoints))
                self._executor = ThreadPoolExecutor(
                    max_workers=self._executor_width,
                    thread_name_prefix="pool-dispatch",
                )
                if old is not None:
                    old.shutdown(wait=False)
            return self._executor

    # ------------------------------------------------------------------
    # Per-worker dispatch (one attempt over one dedicated connection)
    # ------------------------------------------------------------------
    def _dispatch(
        self, worker, spec_payload, chunk_jobs, blocks,
        trace=None, parent_span=None, warehouse=None,
    ) -> dict:
        if worker.supports_frames and self.wire != "v1":
            return self._dispatch_framed(
                worker, spec_payload, chunk_jobs, blocks,
                trace=trace, parent_span=parent_span, warehouse=warehouse,
            )
        return self._dispatch_json(
            worker, spec_payload, chunk_jobs, blocks,
            trace=trace, parent_span=parent_span, warehouse=warehouse,
        )

    @staticmethod
    def _stitch_spans(trace, parent_span, response) -> None:
        """Merge a worker's piggybacked spans under the dispatch span."""
        spans = response.get("spans")
        if trace is not None and spans:
            trace.extend_dicts(spans, reparent_roots_to=parent_span)

    def _dispatch_json(
        self, worker, spec_payload, chunk_jobs, blocks,
        trace=None, parent_span=None, warehouse=None,
    ) -> dict:
        """v1 line-JSON: one ``audit`` request per chunk, serially.

        With ``warehouse``, chunk items are fingerprints: each chunk's
        scenes are fetched, shipped, and dropped before the next — the
        v1 fallback stays within the out-of-core residency budget.
        """
        stats = {
            "wire": "v1",
            "n_chunks": len(chunk_jobs),
            "encode_s": 0.0,
            "scene_cache_hits": 0,
            "scene_cache_misses": 0,
        }
        client, leased, reused = worker.lease(wire="json")
        # Trace fields are additive and v2-only: a v1-negotiated worker
        # would ignore them anyway, so don't widen its requests.
        trace_id = (
            trace.trace_id
            if trace is not None and client.version >= 2
            else None
        )
        bytes_before = client.bytes_sent
        received_before = client.bytes_received
        ok = False
        try:
            for block_slot, chunk in chunk_jobs:
                encode = Stopwatch()
                if warehouse is not None:
                    payloads = [warehouse.get(fp).to_dict() for fp in chunk]
                else:
                    payloads = [self._payloads.dict_for(s) for s in chunk]
                stats["encode_s"] += encode.s
                response = client.request(
                    "audit",
                    spec=spec_payload,
                    scenes=payloads,
                    trace_id=trace_id,
                    parent_span=parent_span if trace_id else None,
                )
                self._stitch_spans(trace, parent_span, response)
                result = AuditResult.from_dict(response["result"])
                blocks[block_slot] = result.items
            stats["bytes_sent"] = client.bytes_sent - bytes_before
            ok = True
        except protocol.TransportError as exc:
            exc.reused_connection = reused
            raise
        finally:
            worker.release(client, leased, ok)
        _ENCODE_SECONDS.inc(stats["encode_s"])
        _CHUNKS.inc(stats["n_chunks"], wire="v1")
        _BYTES_SENT.inc(stats["bytes_sent"], wire="v1")
        _BYTES_RECEIVED.inc(
            client.bytes_received - received_before, wire="v1"
        )
        return stats

    #: Times one chunk may be answered with ``need`` before the pool
    #: declares the worker's cache broken (refusing what it was just
    #: sent is a protocol violation, not an outage).
    MAX_REFILLS = 3

    def _dispatch_framed(
        self, worker, spec_payload, chunk_jobs, blocks,
        trace=None, parent_span=None, warehouse=None,
    ) -> dict:
        """v2 frames: content-addressed chunks, pipelined on one socket.

        With ``warehouse``, chunk items are fingerprints and no scene
        is ever decoded coordinator-side: workers sharing the warehouse
        get hashes alone (zero bodies on the wire); others get blobs
        read straight out of the store for hashes the mirror says they
        lack. In-flight chunks hold only their hash list — refills
        re-read the store — so coordinator residency stays O(1 chunk)
        regardless of pipeline depth.
        """
        stats = {
            "wire": "v2",
            "n_chunks": len(chunk_jobs),
            "encode_s": 0.0,
            "scene_cache_hits": 0,
            "scene_cache_misses": 0,
        }
        client, leased, reused = worker.lease(wire="frames")
        trace_id = trace.trace_id if trace is not None else None
        trace_fields = (
            {"trace_id": trace_id, "parent_span": parent_span}
            if trace_id
            else {}
        )
        bytes_before = client.bytes_sent
        received_before = client.bytes_received
        ok = False
        try:
            queue = deque(chunk_jobs)
            in_flight: deque = deque()  # (block_slot, hashes, by_hash, refills)
            while queue or in_flight:
                # Keep the send window full: encode + ship ahead while
                # the worker ranks earlier chunks.
                while queue and len(in_flight) < self.pipeline:
                    block_slot, chunk = queue.popleft()
                    encode = Stopwatch()
                    if warehouse is not None:
                        hashes, by_hash = list(chunk), None
                        if worker.has_warehouse:
                            unknown = []  # worker fetches locally by hash
                        else:
                            with self._lock:
                                unknown = [
                                    h for h in hashes if not worker.knows(h)
                                ]
                                for fingerprint in unknown:
                                    worker.remember(fingerprint)
                        blobs = tuple(
                            warehouse.get_blob(h) for h in unknown
                        )
                    else:
                        hashes, by_hash = [], {}
                        for scene in chunk:
                            packed, fingerprint = self._payloads.packed_for(
                                scene
                            )
                            hashes.append(fingerprint)
                            by_hash[fingerprint] = packed
                        with self._lock:
                            unknown = [
                                h for h in by_hash if not worker.knows(h)
                            ]
                            for fingerprint in unknown:
                                worker.remember(fingerprint)
                        blobs = tuple(by_hash[h] for h in unknown)
                    stats["encode_s"] += encode.s
                    client.send_request(
                        "audit",
                        blobs=blobs,
                        spec=spec_payload,
                        scene_hashes=hashes,
                        **trace_fields,
                    )
                    in_flight.append((block_slot, hashes, by_hash, 0))
                block_slot, hashes, by_hash, refills = in_flight.popleft()
                response = client.recv_response()
                self._stitch_spans(trace, parent_span, response)
                need = response.get("need")
                if need:
                    # The worker evicted (or never had) some bodies.
                    # Resend the *whole chunk's* bodies, not just the
                    # missing ones: blobs shipped with a request are
                    # resolvable request-locally even when the worker's
                    # LRU is smaller than the chunk, so one refill
                    # always completes — refilling only `need` can
                    # ping-pong forever (each refill's ingests evicting
                    # the chunk's other scenes).
                    if refills >= self.MAX_REFILLS or not set(need) <= set(
                        hashes
                    ):
                        raise protocol.ProtocolError(
                            protocol.UNKNOWN_SCENE_HASH,
                            f"worker {worker.address} cannot resolve scene "
                            f"hashes it was sent: {sorted(need)[:3]}...",
                            details={"worker": worker.address},
                        )
                    refill_bodies = (
                        tuple(warehouse.get_blob(h) for h in hashes)
                        if by_hash is None
                        else tuple(by_hash.values())
                    )
                    client.send_request(
                        "audit",
                        blobs=refill_bodies,
                        spec=spec_payload,
                        scene_hashes=hashes,
                        **trace_fields,
                    )
                    del refill_bodies
                    with self._lock:
                        for fingerprint in hashes:
                            worker.remember(fingerprint)
                    _REFILLS.inc()
                    in_flight.append((block_slot, hashes, by_hash, refills + 1))
                    continue
                result = AuditResult.from_dict(response["result"])
                blocks[block_slot] = result.items
                cache = response.get("scene_cache") or {}
                stats["scene_cache_hits"] += int(cache.get("hits") or 0)
                stats["scene_cache_misses"] += int(cache.get("misses") or 0)
            stats["bytes_sent"] = client.bytes_sent - bytes_before
            ok = True
        except protocol.TransportError as exc:
            exc.reused_connection = reused
            raise
        finally:
            worker.release(client, leased, ok)
        _ENCODE_SECONDS.inc(stats["encode_s"])
        _CHUNKS.inc(stats["n_chunks"], wire="v2")
        _BYTES_SENT.inc(stats["bytes_sent"], wire="v2")
        _BYTES_RECEIVED.inc(
            client.bytes_received - received_before, wire="v2"
        )
        _CACHE_HITS.inc(stats["scene_cache_hits"])
        _CACHE_MISSES.inc(stats["scene_cache_misses"])
        return stats

    def _replacement(self, tried: set[str]) -> WorkerEndpoint | None:
        """A healthy worker not yet tried for this partition (requeue
        target). Never a tried one — each tried worker was marked
        unhealthy when it failed, and re-dispatching a partition to the
        worker that just dropped it would loop, not recover."""
        for endpoint in self.healthy_workers():
            if endpoint.address not in tried:
                return endpoint
        return None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop connections, dispatch threads, and registration state."""
        for endpoint in self.endpoints:
            endpoint.drop_cached_client()
            endpoint.healthy = False
            endpoint.info = None
            endpoint.last_error = None
        self._payloads.clear()
        with self._lock:
            executor, self._executor = self._executor, None
            self._executor_width = 0
        if executor is not None:
            executor.shutdown(wait=False)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
