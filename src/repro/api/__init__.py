"""The unified audit API: declare once, execute anywhere.

This package is the system's front door. The batch engine
(:class:`repro.core.Fixy`), the streaming serving layer
(:mod:`repro.serving`), and the process shards are *implementations*;
what a user holds is:

- :class:`AuditSpec` (:mod:`repro.api.spec`) — the declarative audit:
  scenes + feature set + model source + rank kind/filters/top-k, a
  frozen JSON-round-trippable value with a stable ``spec_hash()``;
- :class:`Audit` (:mod:`repro.api.audit`) — validates the spec once,
  binds it to a fitted engine, and executes it on any registered
  backend;
- the backend registry (:mod:`repro.api.backends`) — ``inline``,
  ``threaded``, ``sharded``, ``session``, and ``remote``
  (:mod:`repro.api.remote` over a :class:`WorkerPool` of TCP
  workers), all returning byte-identical rankings for the same spec
  (property-tested), so strategy is a deployment choice, not an API
  choice;
- :class:`AuditResult` (:mod:`repro.api.result`) — the one typed
  result: scored items + provenance (backend, spec hash, model
  fingerprint, timings, per-worker attribution);
- the versioned wire protocol (:mod:`repro.api.protocol`) and its
  in-repo client (:class:`AuditClient`, :mod:`repro.api.client`) —
  the same schema the streaming service serves, over stdio or TCP
  (``repro.cli serve --listen``), with worker registration
  (``hello``) and liveness (``health``) ops for the distributed
  layer (:class:`WorkerEndpoint` / :class:`WorkerPool`,
  :mod:`repro.api.pool`).
"""

from repro.api import frames, protocol
from repro.api.audit import API_VERSION, Audit, AuditError, run_audit
from repro.api.backends import (
    ExecutionBackend,
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
)
from repro.api.client import AuditClient
from repro.api.pool import WorkerEndpoint, WorkerPool
from repro.api.remote import RemoteBackend
from repro.api.result import AuditProvenance, AuditResult
from repro.api.spec import (
    SPEC_VERSION,
    AuditSpec,
    FilterSpec,
    SceneSource,
    SpecValidationError,
)

__all__ = [
    "API_VERSION",
    "SPEC_VERSION",
    "Audit",
    "AuditClient",
    "AuditError",
    "AuditProvenance",
    "AuditResult",
    "AuditSpec",
    "ExecutionBackend",
    "FilterSpec",
    "RemoteBackend",
    "SceneSource",
    "SpecValidationError",
    "UnknownBackendError",
    "WorkerEndpoint",
    "WorkerPool",
    "available_backends",
    "frames",
    "get_backend",
    "protocol",
    "register_backend",
    "run_audit",
]
