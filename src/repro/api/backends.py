"""Pluggable execution backends: one AuditSpec, many strategies.

A backend is *how* a validated spec runs, nothing more: every backend
receives the same fitted engine, the same scenes, and the same compiled
filter, and must return the same ranking — byte-identical, which the
``tests/api`` property suite asserts across all five (the ``remote``
backend lives in :mod:`repro.api.remote` and registers itself here):

========== ==========================================================
name       strategy
========== ==========================================================
inline     serial per-scene compile + rank in the calling thread
threaded   the engine's ``concurrent.futures`` thread pool
           (``n_jobs`` option; NumPy releases the GIL in the batch
           kernels)
sharded    :class:`~repro.serving.sharded.ShardedRanker` process pool
           (``n_workers``/``cache_size``/``start_method`` options;
           filters must be picklable — FilterSpec compiles to one)
session    one incremental :class:`~repro.serving.session.SceneSession`
           per scene, served through a standing-audit subscription
           (``standing`` option, default true; false = the spliced
           full-rescore path)
remote     :class:`~repro.api.pool.WorkerPool` over N TCP workers
           (``repro.cli serve --listen``; ``workers``/``timeout``/
           ``connect_timeout``/``check_model`` options; partitions
           requeue off dead workers)
========== ==========================================================

Backends register by name via :func:`register_backend`; unknown names
raise :class:`UnknownBackendError` listing the valid ones, mirroring
:class:`~repro.core.scoring.UnknownRankKindError`.
"""

from __future__ import annotations

from repro.core.scoring import ScoredItem, merge_rankings

__all__ = [
    "ExecutionBackend",
    "InlineBackend",
    "SessionBackend",
    "ShardedBackend",
    "ThreadedBackend",
    "UnknownBackendError",
    "available_backends",
    "get_backend",
    "register_backend",
    "require_backend",
]

#: name -> backend class. Mutated only through register_backend.
_BACKENDS: dict[str, type] = {}


class UnknownBackendError(ValueError):
    """A backend name not present in the registry."""

    def __init__(self, name, valid=None):
        self.name = name
        self.valid = tuple(valid if valid is not None else available_backends())
        super().__init__(
            f"unknown backend {name!r}; expected {', '.join(self.valid)}"
        )

    def __reduce__(self):
        return (type(self), (self.name, self.valid))


def register_backend(name: str):
    """Class decorator: register an :class:`ExecutionBackend` under ``name``."""

    def decorate(cls):
        cls.name = name
        _BACKENDS[name] = cls
        return cls

    return decorate


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def require_backend(name: str) -> type:
    """The backend class for ``name``; raises :class:`UnknownBackendError`."""
    try:
        return _BACKENDS[name]
    except (KeyError, TypeError):
        raise UnknownBackendError(name) from None


def get_backend(name: str, **options) -> "ExecutionBackend":
    """Construct a backend instance by name.

    Options the backend does not accept raise
    :class:`~repro.api.spec.SpecValidationError` (the options came
    from a spec or a run call — either way the declaration is wrong),
    not a bare TypeError.
    """
    try:
        return require_backend(name)(**options)
    except TypeError as exc:
        from repro.api.spec import SpecValidationError

        raise SpecValidationError(
            f"backend {name!r} rejected options {sorted(options)}: {exc}"
        ) from None


class ExecutionBackend:
    """One execution strategy for a validated spec.

    Subclasses implement :meth:`run`; options arrive as constructor
    kwargs (from ``AuditSpec.backend_options`` plus per-run overrides).
    Backends may hold resources (process pools); callers must
    :meth:`close` them — :class:`repro.api.Audit` does, via
    try/finally, and backends are context managers for direct use.
    """

    name = "?"

    def run(self, fixy, spec, scenes, filt) -> list[ScoredItem]:
        raise NotImplementedError

    def run_stream(self, fixy, spec, source, filt):
        """Run against a :class:`~repro.api.spec.SceneSource` directly.

        Returns ``(items, stream_stats)``. The default materializes the
        source and delegates to :meth:`run` — correct for every
        backend, out-of-core for none. Backends that can consume a
        lazy source (inline, remote) override this to fetch scenes in
        bounded batches; the stats dict lands in
        ``AuditProvenance.stream``.
        """
        scenes = source.resolve()
        items = self.run(fixy, spec, scenes, filt)
        return items, {"n_scenes": len(scenes), "out_of_core": False}

    def provenance_extras(self) -> dict:
        """Backend-specific provenance from the most recent :meth:`run`.

        Recognized keys are folded into the result's
        :class:`~repro.api.result.AuditProvenance` — today
        ``"workers"`` (per-worker partition attribution, the remote
        backend). Local backends have nothing to add.
        """
        return {}

    def close(self) -> None:
        """Release any held resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@register_backend("inline")
class InlineBackend(ExecutionBackend):
    """Serial reference execution in the calling thread."""

    def run(self, fixy, spec, scenes, filt) -> list[ScoredItem]:
        blocks = [fixy.scorer(scene).rank(spec.kind, filt) for scene in scenes]
        return merge_rankings(blocks, spec.top_k)

    def run_stream(self, fixy, spec, source, filt):
        """Out-of-core execution for warehouse sources.

        Scenes stream through in ``source.effective_batch``-bounded
        chunks: each batch is fetched, scored (through the warehouse's
        compiled-columns sidecar when the model fingerprint matches —
        skipping ``compile_scene``), merged into the running ranking,
        evicted from the engine's compile cache, and dropped. The
        progressive merge is exact: ``merge_rankings`` is a stable
        descending sort over concatenated blocks, so re-merging the
        already-merged prefix as block 0 with each batch's blocks
        yields byte-identical results to one global merge (the same
        truncation-exactness argument as :class:`SessionBackend`).

        Peak residency is measured, not assumed: every fetched scene is
        weakly referenced and the live count sampled at each batch
        boundary lands in ``stream_stats["peak_resident_scenes"]`` —
        what ``benchmarks/bench_warehouse.py`` asserts stays ≤ batch.
        """
        if not source.is_out_of_core:
            return super().run_stream(fixy, spec, source, filt)
        import weakref

        from repro.warehouse.store import warehouse_scorer

        source.validate()
        merged: list[ScoredItem] = []
        refs: list = []
        n_scenes = compile_cold = compile_warm = 0
        batches = peak_resident = 0
        with source.open_warehouse() as warehouse:
            corpus = len(warehouse)
            fingerprints = source.warehouse_fingerprints(warehouse)
            for batch in warehouse.fetch_batches(
                fingerprints, source.effective_batch
            ):
                batches += 1
                refs = [r for r in refs if r() is not None]
                refs.extend(weakref.ref(scene) for _, scene in batch)
                blocks = []
                for fingerprint, scene in batch:
                    scorer, from_sidecar = warehouse_scorer(
                        warehouse, fixy, fingerprint, scene
                    )
                    if from_sidecar:
                        compile_warm += 1
                    else:
                        compile_cold += 1
                    blocks.append(scorer.rank(spec.kind, filt))
                    fixy._evict_scene(scene)
                n_scenes += len(batch)
                merged = merge_rankings([merged, *blocks], spec.top_k)
                del blocks, scorer, scene
                peak_resident = max(
                    peak_resident, sum(1 for r in refs if r() is not None)
                )
        return merged, {
            "n_scenes": n_scenes,
            "out_of_core": True,
            "corpus_scenes": corpus,
            "selected_scenes": len(fingerprints),
            "pruned_scenes": corpus - len(fingerprints),
            "batch": source.effective_batch,
            "batches": batches,
            "peak_resident_scenes": peak_resident,
            "compile_cold": compile_cold,
            "compile_warm": compile_warm,
        }


@register_backend("threaded")
class ThreadedBackend(ExecutionBackend):
    """The engine's multi-scene thread pool (``n_jobs`` option).

    ``n_jobs=0`` (default) lets the engine pick a small automatic
    pool; any positive value pins the worker count.
    """

    def __init__(self, n_jobs: int | None = 0):
        self.n_jobs = n_jobs

    def run(self, fixy, spec, scenes, filt) -> list[ScoredItem]:
        return fixy.rank(
            scenes, spec.kind, filt, top_k=spec.top_k, n_jobs=self.n_jobs
        )


@register_backend("sharded")
class ShardedBackend(ExecutionBackend):
    """Process-pool execution via :class:`~repro.serving.sharded.ShardedRanker`.

    The pool is created lazily on first :meth:`run` (so constructing
    the backend is cheap) and bound to that engine; :meth:`close`
    shuts it down. Filters must be picklable — the declarative
    :class:`~repro.api.spec.FilterSpec` compiles to one.
    """

    def __init__(
        self,
        n_workers: int = 2,
        cache_size: int = 8,
        start_method: str | None = None,
    ):
        self.n_workers = n_workers
        self.cache_size = cache_size
        self.start_method = start_method
        self._ranker = None
        self._fixy = None

    def run(self, fixy, spec, scenes, filt) -> list[ScoredItem]:
        from repro.serving.sharded import ShardedRanker

        if self._ranker is not None and self._fixy is not fixy:
            # A ranker snapshots one engine's model at construction;
            # a different engine needs a fresh pool.
            self.close()
        if self._ranker is None:
            self._ranker = ShardedRanker(
                fixy,
                n_workers=self.n_workers,
                cache_size=self.cache_size,
                start_method=self.start_method,
            )
            self._fixy = fixy
        return self._ranker.rank(scenes, spec.kind, filt, top_k=spec.top_k)

    def close(self) -> None:
        if self._ranker is not None:
            self._ranker.close()
            self._ranker = None
            self._fixy = None


@register_backend("session")
class SessionBackend(ExecutionBackend):
    """One streaming :class:`~repro.serving.session.SceneSession` per scene.

    Exercises the exact serving-layer state a long-lived service ranks
    from — the backend to pick when results must match what the
    streaming service will say. Requires a vectorized engine.

    By default (``standing=True``) each scene is served through a
    :class:`~repro.serving.standing.StandingAudit` subscription — the
    incrementally maintained per-track top-k structure the streaming
    service updates on every edit — so a batch run exercises the same
    maintenance code the standing ``subscribe``/``edit`` ops use.
    ``standing=False`` falls back to the spliced full-rescore path
    (``session.rank``); both are byte-identical, and the per-block
    top-k truncation the standing path applies is exact: any item in
    the global top-k is necessarily within its own block's top-k, and
    :func:`~repro.core.scoring.merge_rankings`'s stable sort preserves
    the survivors' block order.
    """

    def __init__(self, standing: bool = True):
        self.standing = bool(standing)

    def run(self, fixy, spec, scenes, filt) -> list[ScoredItem]:
        blocks = []
        for scene in scenes:
            session = fixy.session(scene)
            if self.standing:
                audit = session.subscribe(spec, filt=filt)
                blocks.append(audit.results())
                session.unsubscribe(audit.audit_id)
            else:
                blocks.append(session.rank(spec.kind, filt))
        return merge_rankings(blocks, spec.top_k)
