"""The versioned client/service wire protocol.

One schema, shared verbatim by :class:`~repro.serving.service.StreamingService`
(the server side, ``python -m repro.cli serve``) and
:class:`~repro.api.client.AuditClient` (the in-repo client): plain JSON
dicts, one request → one response.

Envelope (protocol version 1):

.. code-block:: json

    {"v": 1, "op": "rank", "session_id": "s", "kind": "tracks"}
    {"v": 1, "ok": true,  "kind": "tracks", "results": [...]}
    {"v": 1, "ok": false, "error": {"code": "unknown_rank_kind",
                                    "message": "unknown rank kind 'galaxy'; ...",
                                    "details": {"valid_kinds": [...]}}}

Rules:

- every request and response carries ``"v"``, the protocol version;
- ``"ok"`` is always present on responses; failures carry a structured
  ``error`` object with a machine-readable ``code`` from
  :data:`ERROR_CODES` (never a bare string);
- unknown versions are rejected with ``unsupported_version`` — the
  server never guesses what a future client meant;
- version-less requests are the pre-versioning (v0) dialect. By
  default the server still accepts them through a deprecation shim —
  responding in kind, with string errors and no ``"v"`` — and emits a
  :class:`DeprecationWarning`; strict servers
  (``StreamingService(accept_legacy=False)``, ``cli serve --strict``)
  reject them with ``unsupported_version``.

Introduced at protocol version 1 (additions are strictly additive): the
``hello``/``health`` ops register and monitor workers for distributed
execution (:mod:`repro.api.pool`), and the
``model_mismatch``/``worker_unavailable``/``request_timeout`` codes
report distributed failures. Client-side transport failures raise
typed :class:`TransportError` subclasses (:class:`StreamClosedError`,
:class:`MalformedResponseError`, :class:`RequestTimeoutError`) carrying
those same codes.

Protocol version 2 adds the **binary framed wire** and
**content-addressed scene transport** (:mod:`repro.api.frames`):

- a peer may speak the same request/response dicts over length-prefixed
  binary frames (a JSON header plus zero or more raw blobs) instead of
  line-JSON; the wire format is per-connection, self-identifying (a
  framed connection opens with :data:`repro.api.frames.MAGIC`, which can
  never begin a JSON line), and advertised in ``hello`` as
  ``wire_formats``;
- an ``audit`` request may carry ``scene_hashes`` (content hashes of
  packed scenes) instead of ``scenes``; bodies travel as frame blobs,
  the server keeps a bounded LRU of decoded scenes keyed by hash, and a
  request naming hashes the server does not hold is answered with
  ``{"ok": true, "need": [missing...]}`` so the client resends only the
  missing bodies;
- new codes: ``frame_too_large`` / ``frame_malformed`` (the framed
  transport's failure vocabulary, raised client-side as
  :class:`FrameTooLargeError` / :class:`FrameDecodeError`) and
  ``unknown_scene_hash`` (a hash that can be neither resolved nor
  refilled).

Additive v2 extension — **standing audits**: the ``subscribe`` /
``unsubscribe`` / ``standing`` ops register an
:class:`~repro.api.spec.AuditSpec` as a standing query on a live
session (:class:`repro.serving.standing.StandingAudit`), after which an
``edit`` response carries the incrementally maintained top-k of every
subscription under ``"standing"`` (suppress with ``"standing": false``
in the edit request). A subscription id the session does not hold is
answered with the ``unknown_subscription`` code. Being additive, all of
this rides the existing version: older peers simply never send the new
ops, and ``hello``'s ``ops`` list advertises them.

Additive extension — **load shedding**: a serving front with an
admission layer (:mod:`repro.serving.gateway`) may answer a request it
chose not to execute with the ``overloaded`` code instead of stalling;
the request is retryable by construction, ``details`` carries the
queueing state, and v0/v1 peers receive it in their own dialect like
any other structured error. Raised client-side as
:class:`OverloadedError`.

The v2 *JSON dialect* is otherwise identical to v1, and servers answer
every request in the version it was asked in — a v1-only peer keeps
working against a v2 build, which is how mixed-version worker pools
stay live through a rolling upgrade.

Typed failures cross the boundary as codes:
:class:`~repro.core.scoring.UnknownRankKindError` →
``unknown_rank_kind``, :class:`~repro.api.backends.UnknownBackendError`
→ ``unknown_backend``, :class:`~repro.api.spec.SpecValidationError` →
``invalid_spec``, a missing session → ``unknown_session``; the mapping
lives in :func:`classify_exception` so client and server agree forever.
"""

from __future__ import annotations

import warnings

from repro.core.scoring import UnknownRankKindError

__all__ = [
    "BASELINE_VERSION",
    "ERROR_CODES",
    "LEGACY_VERSION",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "FrameDecodeError",
    "FrameTooLargeError",
    "MalformedResponseError",
    "OverloadedError",
    "ProtocolError",
    "RequestTimeoutError",
    "StreamClosedError",
    "TransportError",
    "classify_exception",
    "error_response",
    "make_request",
    "negotiate_version",
    "ok_response",
]

#: Current protocol version spoken by this build (v2: binary frames +
#: content-addressed scene transport; the JSON dialect is unchanged).
PROTOCOL_VERSION = 2

#: The version-less, pre-versioning dialect (string errors, no "v").
LEGACY_VERSION = 0

#: The oldest versioned dialect every deployed peer speaks — what a
#: coordinator uses to ``hello`` a worker whose version it does not
#: know yet.
BASELINE_VERSION = 1

#: Versions this server answers in their own dialect (ascending).
SUPPORTED_VERSIONS = (1, 2)

# Machine-readable error codes (the protocol's stable error vocabulary).
UNSUPPORTED_VERSION = "unsupported_version"
UNKNOWN_OP = "unknown_op"
BAD_JSON = "bad_json"
BAD_REQUEST = "bad_request"
UNKNOWN_SESSION = "unknown_session"
UNKNOWN_RANK_KIND = "unknown_rank_kind"
UNKNOWN_BACKEND = "unknown_backend"
INVALID_SPEC = "invalid_spec"
INTERNAL_ERROR = "internal_error"
MODEL_MISMATCH = "model_mismatch"
WORKER_UNAVAILABLE = "worker_unavailable"
REQUEST_TIMEOUT = "request_timeout"
FRAME_TOO_LARGE = "frame_too_large"
FRAME_MALFORMED = "frame_malformed"
UNKNOWN_SCENE_HASH = "unknown_scene_hash"
UNKNOWN_SUBSCRIPTION = "unknown_subscription"
OVERLOADED = "overloaded"

ERROR_CODES = (
    UNSUPPORTED_VERSION,
    UNKNOWN_OP,
    BAD_JSON,
    BAD_REQUEST,
    UNKNOWN_SESSION,
    UNKNOWN_RANK_KIND,
    UNKNOWN_BACKEND,
    INVALID_SPEC,
    INTERNAL_ERROR,
    MODEL_MISMATCH,
    WORKER_UNAVAILABLE,
    REQUEST_TIMEOUT,
    FRAME_TOO_LARGE,
    FRAME_MALFORMED,
    UNKNOWN_SCENE_HASH,
    UNKNOWN_SUBSCRIPTION,
    OVERLOADED,
)


class ProtocolError(Exception):
    """A structured protocol failure (code + message + details).

    Raised server-side to short-circuit into an error response, and
    client-side when a response carries ``ok: false``.
    """

    def __init__(self, code: str, message: str, details: dict | None = None):
        self.code = code
        self.message = message
        self.details = dict(details or {})
        super().__init__(f"[{code}] {message}")

    def __reduce__(self):
        return (type(self), (self.code, self.message, self.details))


class TransportError(ProtocolError):
    """A client-side transport failure (the request never completed).

    Unlike a structured error *response* — which means the server is
    alive and said no — a transport error means the conversation itself
    broke: the stream closed, the bytes were not a protocol response,
    or the deadline passed. Each failure mode is its own subclass with
    a fixed code, so callers (the worker pool's requeue logic above
    all) can switch on the type instead of parsing messages.
    """

    code_class: str = INTERNAL_ERROR

    def __init__(self, message: str, details: dict | None = None):
        super().__init__(self.code_class, message, details)

    def __reduce__(self):
        return (type(self), (self.message, self.details))


class StreamClosedError(TransportError):
    """EOF or a broken pipe mid-conversation: the worker is gone."""

    code_class = WORKER_UNAVAILABLE


class MalformedResponseError(TransportError):
    """The server's bytes were not a protocol response (partial or
    garbage line, or a non-object JSON value)."""

    code_class = BAD_JSON


class RequestTimeoutError(TransportError):
    """The per-request deadline passed with no response line."""

    code_class = REQUEST_TIMEOUT


class FrameTooLargeError(TransportError):
    """A v2 frame declared a header/blob beyond the hard size caps —
    reading on would buffer unbounded bytes, so the frame is refused
    before its body is read (the stream is left unsynced: close it)."""

    code_class = FRAME_TOO_LARGE


class FrameDecodeError(TransportError):
    """The bytes were not a well-formed v2 frame (bad magic, a header
    that is not a JSON object, an unpackable scene blob)."""

    code_class = FRAME_MALFORMED


class OverloadedError(ProtocolError):
    """The server shed this request under load (code ``overloaded``).

    Raised client-side when a response carries the ``overloaded``
    code — the async gateway's admission layer answers instead of
    stalling once its queue bound or the per-client budget is
    exceeded (:mod:`repro.serving.gateway`). The request was *not*
    executed; it is always safe to retry after backing off
    (``details`` carries ``reason`` plus the queue depth/limits the
    client can base its backoff on).
    """

    def __init__(self, message: str, details: dict | None = None):
        super().__init__(OVERLOADED, message, details)

    def __reduce__(self):
        return (type(self), (self.message, self.details))


# ---------------------------------------------------------------------------
# Envelope constructors
# ---------------------------------------------------------------------------
def make_request(op: str, *, version: int = PROTOCOL_VERSION, **fields) -> dict:
    """A v-stamped request dict."""
    return {"v": version, "op": op, **fields}


def ok_response(fields: dict, *, version: int = PROTOCOL_VERSION) -> dict:
    """A successful response envelope."""
    return {"v": version, "ok": True, **fields}


def error_response(
    code: str,
    message: str,
    *,
    version: int = PROTOCOL_VERSION,
    details: dict | None = None,
) -> dict:
    """A failed response envelope with a structured error object."""
    error: dict = {"code": code, "message": message}
    if details:
        error["details"] = dict(details)
    return {"v": version, "ok": False, "error": error}


# ---------------------------------------------------------------------------
# Version negotiation
# ---------------------------------------------------------------------------
def negotiate_version(
    request: dict,
    accept_legacy: bool = True,
    supported: tuple[int, ...] | None = None,
) -> int:
    """The dialect to answer ``request`` in.

    Returns a member of ``supported`` (default
    :data:`SUPPORTED_VERSIONS`; a server built to emulate an older
    peer passes a shorter tuple), or :data:`LEGACY_VERSION` for
    version-less requests when ``accept_legacy`` (with a
    :class:`DeprecationWarning`). Anything else raises
    :class:`ProtocolError` with ``unsupported_version``.
    """
    if supported is None:
        supported = SUPPORTED_VERSIONS
    if "v" not in request:
        if accept_legacy:
            warnings.warn(
                "version-less (v0) protocol request; add \"v\": "
                f"{max(supported)} — the legacy dialect will be removed",
                DeprecationWarning,
                stacklevel=3,
            )
            return LEGACY_VERSION
        raise ProtocolError(
            UNSUPPORTED_VERSION,
            'request has no protocol version field "v" and this server '
            "does not accept legacy requests",
            details={"supported": list(supported)},
        )
    version = request["v"]
    if version in supported:
        return version
    raise ProtocolError(
        UNSUPPORTED_VERSION,
        f"unsupported protocol version {version!r}",
        details={"supported": list(supported)},
    )


# ---------------------------------------------------------------------------
# Exception → error code mapping
# ---------------------------------------------------------------------------
def classify_exception(exc: Exception) -> ProtocolError:
    """Fold any server-side exception into a structured ProtocolError."""
    if isinstance(exc, ProtocolError):
        return exc
    if isinstance(exc, UnknownRankKindError):
        return ProtocolError(
            UNKNOWN_RANK_KIND, str(exc), details={"valid_kinds": list(exc.valid)}
        )
    # Late imports: protocol must stay importable from the serving layer
    # without dragging the whole api package in.
    from repro.api.backends import UnknownBackendError
    from repro.api.spec import SpecValidationError

    if isinstance(exc, UnknownBackendError):
        return ProtocolError(
            UNKNOWN_BACKEND, str(exc), details={"valid_backends": list(exc.valid)}
        )
    if isinstance(exc, SpecValidationError):
        return ProtocolError(INVALID_SPEC, str(exc))
    if isinstance(exc, KeyError):
        message = exc.args[0] if exc.args else str(exc)
        if isinstance(message, str) and "no live session" in message:
            return ProtocolError(UNKNOWN_SESSION, message)
        if isinstance(message, str) and "no standing audit" in message:
            return ProtocolError(UNKNOWN_SUBSCRIPTION, message)
        return ProtocolError(
            BAD_REQUEST, f"missing request field: {message}"
        )
    if isinstance(exc, (TypeError, ValueError)):
        return ProtocolError(BAD_REQUEST, f"{type(exc).__name__}: {exc}")
    return ProtocolError(INTERNAL_ERROR, f"{type(exc).__name__}: {exc}")
