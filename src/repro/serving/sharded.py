"""Process-sharded ranking: fan rank_* across a ProcessPoolExecutor.

The engine's thread-pool fast path (``Fixy(n_jobs=...)``) only scales
while NumPy holds the GIL released; the Python-side portions of compile
and scoring serialize. This module shards whole scenes across worker
*processes* instead:

- the fitted model travels once per worker, as the JSON-safe
  :meth:`~repro.core.engine.Fixy.to_payload` dict (fitted distributions
  via ``LearnedModel.to_dict`` — including persisted density grids, so
  workers skip the warmup build entirely);
- each scene travels as its ``Scene.to_dict`` payload and is
  reconstructed worker-side;
- every worker keeps its own **compiled-scene LRU cache** keyed by a
  content fingerprint the parent computes. This is the per-process
  replacement for the engine's in-process ``id()``-keyed cache, which
  cannot work across a serialization boundary (each delivery
  reconstructs fresh objects).

Determinism: workers run exactly the columnar compile + array scoring
the in-process path runs, on bit-identical inputs (``to_dict``/
``from_dict`` round floats through Python floats, never text), so the
merged ranking is **byte-identical** to the thread-pool path — asserted
in ``tests/serving/test_sharded.py`` and recorded by the perf harness.
To keep grid-accelerated densities deterministic too, construction
eagerly warms the parent's grids before snapshotting the payload
(otherwise each worker's lazy cutover could flip at a different point
in the traffic). Byte-identity therefore holds between the pool and
any in-process ranking run *after* the ranker was constructed; an
in-process ranking taken before it may have used the pre-cutover exact
densities (equal only to the grid's validated tolerance).

Filters passed to ``rank_*`` must be picklable (module-level functions,
functools.partial, or None) — lambdas cannot cross the process
boundary.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor

from repro.core.model import Scene
from repro.core.scoring import ScoredItem, merge_rankings, normalize_rank_kind

__all__ = ["ShardedRanker"]


# Worker-process state, set once by _init_worker.
_WORKER: dict = {}


def _init_worker(payload: dict, cache_size: int) -> None:
    from repro.core.engine import Fixy

    # The per-worker LRU below replaces the engine's id()-keyed cache;
    # disable the latter so compiled scenes are not held twice.
    fixy = Fixy.from_payload(payload, compile_cache_size=0)
    _WORKER["fixy"] = fixy
    _WORKER["cache"] = OrderedDict()
    _WORKER["cache_size"] = max(1, int(cache_size))
    _WORKER["hits"] = 0
    _WORKER["misses"] = 0


def _worker_scorer(scene_dict: dict, key: str):
    from repro.core.compile import compile_scene
    from repro.core.scoring import Scorer

    cache: OrderedDict = _WORKER["cache"]
    scorer = cache.get(key)
    if scorer is not None:
        cache.move_to_end(key)
        _WORKER["hits"] += 1
        return scorer
    _WORKER["misses"] += 1
    fixy = _WORKER["fixy"]
    scene = Scene.from_dict(scene_dict)
    scorer = Scorer(
        compile_scene(
            scene,
            fixy.features,
            learned=fixy.learned,
            aofs=fixy.aofs,
            vectorized=fixy.vectorized,
        )
    )
    cache[key] = scorer
    while len(cache) > _WORKER["cache_size"]:
        cache.popitem(last=False)
    return scorer


def _worker_rank(task: tuple) -> tuple[int, bool, list[ScoredItem]]:
    """Rank one scene; returns (pid, cache_hit, per-scene ranking)."""
    scene_dict, key, kind, filt = task
    hits_before = _WORKER["hits"]
    scorer = _worker_scorer(scene_dict, key)
    return os.getpid(), _WORKER["hits"] > hits_before, scorer.rank(kind, filt)


def _worker_cache_stats(_: object) -> dict:
    return {
        "pid": os.getpid(),
        "hits": _WORKER["hits"],
        "misses": _WORKER["misses"],
        "cached_scenes": len(_WORKER["cache"]),
    }


def scene_fingerprint(scene: Scene) -> str:
    """Content hash of a scene's serialized form (worker cache key)."""
    return _payload_fingerprint(scene.to_dict())


def _payload_fingerprint(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


class ShardedRanker:
    """Rank scenes across worker processes with per-worker caches.

    Args:
        fixy: A fitted :class:`~repro.core.engine.Fixy`; its features,
            AOFs, and learned model are snapshotted into the worker
            payload at construction (refit the engine → build a new
            ranker).
        n_workers: Worker process count.
        cache_size: Compiled scenes each worker retains.
        start_method: ``multiprocessing`` start method; default prefers
            ``fork`` (cheap on Linux), falling back to the platform
            default. All worker entry points are module-level, so
            ``spawn`` works too.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        fixy,
        n_workers: int = 2,
        cache_size: int = 8,
        start_method: str | None = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        fixy._require_fitted()
        # Deterministic densities across parent and workers: finish any
        # lazy grid builds now so the payload carries the final state.
        fixy.warmup_fast_eval()
        payload = fixy.to_payload()
        self.n_workers = n_workers
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._pool = ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=multiprocessing.get_context(start_method),
            initializer=_init_worker,
            initargs=(payload, cache_size),
        )
        #: pid -> cache hits/misses observed through completed tasks
        self.worker_hits: dict[int, int] = {}
        self.worker_misses: dict[int, int] = {}

    # ------------------------------------------------------------------
    def rank(
        self, scenes, kind: str = "tracks", filt=None, top_k: int | None = None
    ) -> list[ScoredItem]:
        """Rank components of ``kind`` across scenes via the process pool.

        The kind-as-data entry point (mirrors
        :meth:`repro.core.engine.Fixy.rank`); a typo'd kind raises
        :class:`~repro.core.scoring.UnknownRankKindError` before any
        scene is shipped to a worker.
        """
        return self._rank(scenes, normalize_rank_kind(kind), filt, top_k)

    def rank_tracks(self, scenes, track_filter=None, top_k: int | None = None):
        """Rank tracks across scenes via the process pool."""
        return self._rank(scenes, "tracks", track_filter, top_k)

    def rank_bundles(self, scenes, bundle_filter=None, top_k: int | None = None):
        """Rank bundles across scenes via the process pool."""
        return self._rank(scenes, "bundles", bundle_filter, top_k)

    def rank_observations(self, scenes, obs_filter=None, top_k: int | None = None):
        """Rank observations across scenes via the process pool."""
        return self._rank(scenes, "observations", obs_filter, top_k)

    def _rank(self, scenes, kind: str, filt, top_k: int | None) -> list[ScoredItem]:
        if isinstance(scenes, Scene):
            scenes = [scenes]
        payloads = [scene.to_dict() for scene in scenes]
        tasks = [
            (payload, _payload_fingerprint(payload), kind, filt)
            for payload in payloads
        ]
        blocks: list[list[ScoredItem]] = []
        # map() preserves submission order, so merge_rankings sees
        # per-scene blocks in exactly the order the thread-pool path
        # produces — identical scores ⇒ identical list.
        for pid, hit, scene_ranked in self._pool.map(_worker_rank, tasks):
            if hit:
                self.worker_hits[pid] = self.worker_hits.get(pid, 0) + 1
            else:
                self.worker_misses[pid] = self.worker_misses.get(pid, 0) + 1
            blocks.append(scene_ranked)
        return merge_rankings(blocks, top_k)

    # ------------------------------------------------------------------
    def cache_stats(self) -> dict:
        """Aggregated per-worker cache statistics (as seen by the parent)."""
        return {
            "n_workers": self.n_workers,
            "hits": sum(self.worker_hits.values()),
            "misses": sum(self.worker_misses.values()),
            "per_worker_hits": dict(self.worker_hits),
            "per_worker_misses": dict(self.worker_misses),
        }

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedRanker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
